"""Ablation (Section 3.4) — selective caching.

ZDNS caches only NS delegations and glue.  The ablation compares, on a
reverse-zone workload with real cache pressure:

* ``selective`` — the paper's design;
* ``all``       — Unbound-style: also cache leaf answers, whose churn
                  evicts the delegations that actually get reused;
* ``none``      — no cache: every lookup walks from the roots.
"""

from conftest import BENCH_SEED, dense_ptr_targets, emit, scaled

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner

THREADS = 8000
SAMPLE = 30_000
#: Sized to hold the workload's delegations, but not delegations plus a
#: unique leaf answer per lookup.
CACHE_SIZE = 8000


def _run(policy: str, offset: int):
    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
    config = ScanConfig(
        module="PTRIP",
        mode="iterative",
        threads=THREADS,
        source_prefix=28,
        cache_size=CACHE_SIZE,
        cache_policy=policy,
        cache_eviction="random",
        seed=BENCH_SEED,
    )
    names = dense_ptr_targets(scaled(SAMPLE), offset)
    report = ScanRunner(internet, config).run(names)
    stats = report.stats
    return {
        "policy": policy,
        "successes_per_second": round(stats.steady_successes_per_second, 1),
        "queries_per_lookup": round(stats.queries_sent / max(1, stats.total), 2),
        "cache_hit_rate": report.cache_stats["hit_rate"],
        "evictions": report.cache_stats["evictions"],
    }


def test_ablation_cache_policy(run_once):
    def experiment():
        rows = []
        for i, policy in enumerate(["selective", "all", "none"]):
            rows.append(_run(policy, i * scaled(SAMPLE)))
        return rows

    rows = run_once(experiment)

    lines = [
        f"  {row['policy']:<10}: {row['successes_per_second']:>9.0f} succ/s  "
        f"{row['queries_per_lookup']:.2f} queries/lookup  "
        f"hit rate {100 * row['cache_hit_rate']:5.1f}%  "
        f"{row['evictions']} evictions"
        for row in rows
    ]
    emit("ablation_caching", lines, {"rows": rows})

    by_policy = {row["policy"]: row for row in rows}
    # leaf-answer caching never helps a unique-name workload: at best it
    # matches selective, at scale it evicts reused delegations (the
    # effect is much larger at the paper's 250x workload; at this scale
    # it is a small penalty)
    assert (
        by_policy["selective"]["queries_per_lookup"]
        <= by_policy["all"]["queries_per_lookup"] + 0.02
    )
    # no caching is by far the worst configuration: full root walks
    assert (
        by_policy["none"]["queries_per_lookup"]
        > 1.5 * by_policy["selective"]["queries_per_lookup"]
    )
    assert (
        by_policy["selective"]["successes_per_second"]
        > 1.4 * by_policy["none"]["successes_per_second"]
    )