"""Ablation (Section 3.4) — garbage-collection frequency.

The paper's counter-intuitive finding: *increasing* GC frequency
(quadrupling it) increases throughput, because short collections slot
between request processing, while rare long stop-the-world pauses push
in-flight queries past their timeouts and trigger wasted retries.

Both arms pay the same total GC overhead (~20% of wall time); only the
pause granularity differs.  The scan uses an aggressive per-query
timeout (0.8s), as a tuned high-throughput deployment would."""

from conftest import BENCH_SEED, emit, scaled

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner
from repro.workloads import DomainCorpus

THREADS = 12_000
SAMPLE = 60_000
TIMEOUT = 0.8


def _run(gc_period: float, gc_pause: float, offset: int):
    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
    config = ScanConfig(
        module="A",
        mode="iterative",
        threads=THREADS,
        source_prefix=28,
        iteration_timeout=TIMEOUT,
        gc_period=gc_period,
        gc_pause=gc_pause,
        seed=BENCH_SEED,
    )
    names = DomainCorpus().fqdns(scaled(SAMPLE), start=offset)
    report = ScanRunner(internet, config).run(names)
    stats = report.stats
    return {
        "gc_period": gc_period,
        "gc_pause": gc_pause,
        # makespan-based rate: stalls make completions bursty, which
        # would game a percentile-window measure
        "successes_per_second": round(stats.successes_per_second, 1),
        "success_rate": round(stats.success_rate, 4),
        "retries_used": stats.retries_used,
    }


def test_ablation_gc_frequency(run_once):
    def experiment():
        # long stop-the-world pauses that exceed the query deadline
        rare = _run(gc_period=2.0, gc_pause=1.0, offset=0)
        # 5x the frequency, same total overhead, pauses fit in the slack
        frequent = _run(gc_period=0.4, gc_pause=0.2, offset=scaled(SAMPLE))
        return rare, frequent

    rare, frequent = run_once(experiment)

    lines = [
        f"  rare long GC (1.0s/2.0s)      : {rare['successes_per_second']:>9.0f} succ/s  "
        f"{rare['retries_used']} retries  {100 * rare['success_rate']:5.1f}% ok",
        f"  frequent short GC (0.2s/0.4s) : {frequent['successes_per_second']:>9.0f} succ/s  "
        f"{frequent['retries_used']} retries  {100 * frequent['success_rate']:5.1f}% ok",
    ]
    emit("ablation_gc", lines, {"rare": rare, "frequent": frequent})

    # same overhead, but frequent short pauses win (paper Section 3.4):
    # long stalls push in-flight queries past their deadlines — the
    # dominant, unambiguous signal is the wasted-retry count — and the
    # recovered retries cost throughput
    assert frequent["successes_per_second"] > rare["successes_per_second"]
    assert rare["retries_used"] > 1.5 * frequent["retries_used"]
