"""Ablation (Section 3.4) — UDP socket reuse.

ZDNS keeps one long-lived raw UDP socket per routine; the ablation
pays a per-query socket setup/teardown CPU cost instead, which eats
into the 24-core budget and drops the saturation throughput."""

from conftest import BENCH_SEED, emit, scaled

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner
from repro.workloads import DomainCorpus

# run at CPU saturation: socket setup cost shifts the plateau
THREADS = 25_000
SAMPLE = 60_000


def _run(reuse: bool, offset: int):
    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
    config = ScanConfig(
        module="A",
        mode="cloudflare",
        threads=THREADS,
        source_prefix=28,
        reuse_sockets=reuse,
        seed=BENCH_SEED,
    )
    names = DomainCorpus().fqdns(scaled(SAMPLE), start=offset)
    report = ScanRunner(internet, config).run(names)
    return {
        "reuse_sockets": reuse,
        "successes_per_second": round(report.stats.steady_successes_per_second, 1),
        "cpu_utilisation": round(report.cpu_utilisation, 3),
    }


def test_ablation_socket_reuse(run_once):
    def experiment():
        return [_run(True, 0), _run(False, scaled(SAMPLE))]

    with_reuse, without_reuse = run_once(experiment)

    lines = [
        f"  long-lived sockets : {with_reuse['successes_per_second']:>9.0f} succ/s  "
        f"cpu {100 * with_reuse['cpu_utilisation']:5.1f}%",
        f"  socket per query   : {without_reuse['successes_per_second']:>9.0f} succ/s  "
        f"cpu {100 * without_reuse['cpu_utilisation']:5.1f}%",
    ]
    emit("ablation_sockets", lines, {"with": with_reuse, "without": without_reuse})

    # reuse wins, and the no-reuse run burns measurably more CPU
    assert with_reuse["successes_per_second"] > 1.2 * without_reuse["successes_per_second"]
    assert without_reuse["cpu_utilisation"] > with_reuse["cpu_utilisation"]
