"""Section 5 — nameserver (in)consistency case study.

Paper findings to reproduce on the scaled corpus:

* 0.55% of resolvable domains have >=1 nameserver needing >=2 retries;
* 0.01% have a nameserver that needs all 10 retries, with
  namebrightdns and the .vn/.ng ccTLDs overrepresented;
* >99.99% of domains return consistent A-record sets across their
  nameservers."""

from conftest import BENCH_SEED, emit, scaled

from repro.analysis import run_ns_consistency_study
from repro.ecosystem import EcosystemParams, build_internet
from repro.workloads import CorpusConfig, DomainCorpus

SAMPLE = 15_000


def test_case5_nameserver_consistency(run_once):
    def experiment():
        internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
        corpus = DomainCorpus(CorpusConfig(seed=BENCH_SEED))
        names = list(corpus.base_domains(scaled(SAMPLE)))
        return run_ns_consistency_study(internet, names, retries=9, threads=4000, seed=BENCH_SEED)

    findings = run_once(experiment)
    data = findings.to_json()

    lines = [
        f"  domains resolvable:       {data['domains_resolvable']}",
        f"  >=2 retries on some NS:   {data['pct_needing_2plus_retries']}%  (paper: 0.55%)",
        f"  all 10 retries needed:    {data['pct_needing_max_retries']}%  (paper: 0.01%)",
        f"  consistent answer sets:   {data['pct_consistent_answers']}%  (paper: >99.99%)",
        f"  worst providers:          {data['worst_case_providers']}",
        f"  severe-case providers:    {data['severe_providers']}",
        f"  worst TLDs:               {data['worst_case_tlds']}",
    ]
    emit("case5_nameservers", lines, data)

    assert 0.1 < data["pct_needing_2plus_retries"] < 2.0
    assert data["pct_needing_max_retries"] < 0.3
    assert data["pct_consistent_answers"] > 99.5
    assert data["worst_case_providers"], "no flaky providers observed"
    # namebright dominates the severe (all-retries-exhausted) cases,
    # as in the paper (31% of the 10-retry population)
    severe = data["severe_providers"]
    if severe:
        assert "namebrightdns.example" in severe
