"""Section 6 — CAA ecosystem case study.

Paper findings to reproduce on the scaled base-domain corpus:

* 1.69% of NOERROR domains hold CAA; ccTLDs are ~20% likelier than
  gTLDs and contribute ~48% of all CAA records;
* .pl alone holds ~25% of ccTLD CAA records; the top 10 ccTLDs ~70%;
* tags: issue 96.8%, issuewild 55.27%, iodef 6.87%, rare invalid tags;
* Let's Encrypt appears in 92.4% of issue tags; Comodo and Digicert in
  over half of CAA domains."""

from conftest import BENCH_SEED, emit, scaled

from repro.analysis import run_caa_study
from repro.ecosystem import EcosystemParams, build_internet
from repro.workloads import CorpusConfig, DomainCorpus

SAMPLE = 40_000


def test_case6_caa(run_once):
    def experiment():
        internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
        corpus = DomainCorpus(CorpusConfig(seed=BENCH_SEED))
        bases = list(corpus.base_domains(scaled(SAMPLE)))
        return run_caa_study(internet, bases, threads=4000, seed=BENCH_SEED)

    findings = run_once(experiment)
    data = findings.to_json()

    lines = [
        f"  NOERROR domains:          {data['domains_noerror']}",
        f"  CAA rate:                 {data['caa_rate_pct']}%  (paper: 1.69%)",
        f"  ccTLD share of CAA:       {data['cctld_share_of_caa_pct']}%  (paper: 48%)",
        f"  .pl share of ccTLD CAA:   {data['pl_share_of_cc_caa_pct']}%  (paper: 25%)",
        f"  top-10 ccTLD share:       {data['top10_cc_share_pct']}%  (paper: 70%)",
        f"  via CNAME chain:          {data['via_cname']}",
        f"  issue/issuewild/iodef:    {data['pct_issue']}% / {data['pct_issuewild']}% / "
        f"{data['pct_iodef']}%  (paper: 96.8 / 55.27 / 6.87)",
        f"  Let's Encrypt in issue:   {data['pct_issue_letsencrypt']}%  (paper: 92.4%)",
        f"  Comodo / Digicert:        {data['pct_domains_comodo']}% / "
        f"{data['pct_domains_digicert']}%  (paper: >50% each)",
    ]
    emit("case6_caa", lines, data)

    assert 1.0 < data["caa_rate_pct"] < 2.6
    assert 35 < data["cctld_share_of_caa_pct"] < 70
    assert 12 < data["pl_share_of_cc_caa_pct"] < 42
    assert data["top10_cc_share_pct"] > 55
    assert data["pct_issue"] > 90
    assert 40 < data["pct_issuewild"] < 70
    assert data["pct_iodef"] < 15
    assert data["pct_issue_letsencrypt"] > 85
    assert data["pct_domains_comodo"] > 40
    assert data["pct_domains_digicert"] > 40
    assert data["via_cname"] >= 1
