"""Wire-codec microbenchmarks over a realistic message corpus.

``bench_wallclock_hotpath.bench_codec`` hammers three fixed packets —
perfect for a regression trendline, but it cannot distinguish the memo
fast path from the flat scanner, and it says nothing about rdata
hydration or bulk zone parsing.  This file measures the codec the way a
scan actually uses it:

* **warm decode** — repeated packets (delegation referrals, retried
  answers) hit the decode memo;
* **cold decode** — every packet distinct, caches cleared: the flat
  scanner with lazy rdata, the price of a first-contact packet;
* **cold decode + hydrate** — the worst case: distinct packets *and*
  every rdata object materialised (what ``--trace``-style consumers pay);
* **batch decode** — ``decode_many`` over a burst of buffers;
* **warm encode** — the template memo path (txid patch);
* **bulk zone parse** — ``parse_zone_lines`` over generated master-file
  lines, the ecosystem-synthesis workload.

Helpers are import-safe (no pytest required) so
``scripts/bench_compare.py --codec-smoke`` can reuse them; the pytest
entry is marked ``bench``/``tier2``.
"""

from __future__ import annotations

import time

import pytest

from conftest import BENCH_SEED, dense_ptr_targets, emit

PROFILES = {
    "check": {"corpus": 384, "passes": 20, "zone_hosts": 1200},
    "full": {"corpus": 768, "passes": 40, "zone_hosts": 3000},
}


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_wall(fn, repeats: int = 3) -> float:
    """Min wall across repeats — the least CPU-steal-disturbed sample."""
    return min(_timed(fn) for _ in range(repeats))


# --------------------------------------------------------------------------
# corpus


def build_corpus(count: int) -> list:
    """``count`` distinct messages shaped like scan traffic.

    Four interleaved shapes: EDNS queries, delegation referrals
    (NS + glue), authoritative answers (CNAME chain + addresses, TXT),
    and negative answers (SOA in authority).  Every message carries a
    distinct qname so a cold pass over the corpus cannot hit the decode
    memo.
    """
    from repro.dnslib import DNSClass, Message, Name, ResourceRecord, RRType, add_edns
    from repro.dnslib.rdata.address import A, AAAA
    from repro.dnslib.rdata.names import CNAME, NS, SOA
    from repro.dnslib.rdata.text import TXT

    def rr(name, rrtype, ttl, rdata):
        return ResourceRecord(Name.from_text(name), rrtype, DNSClass.IN, ttl, rdata)

    corpus = []
    for i in range(count):
        zone = f"zone-{i % 97}.example"
        qname = f"www{i}.d{i % 311}.{zone}"
        shape = i % 4
        if shape == 0:
            query = Message.make_query(qname, RRType.A, txid=(0x4000 + i) & 0xFFFF)
            add_edns(query, payload_size=1232)
            corpus.append(query)
            continue
        query = Message.make_query(qname, RRType.A, txid=(0x8000 + i) & 0xFFFF)
        if shape == 1:
            referral = query.make_response()
            for k in (1, 2):
                ns = f"ns{k}.host{i % 41}.{zone}"
                referral.authorities.append(
                    rr(f"d{i % 311}.{zone}", RRType.NS, 172_800, NS(Name.from_text(ns)))
                )
                referral.additionals.append(rr(ns, RRType.A, 172_800, A(f"10.{i % 200}.7.{k}")))
            corpus.append(referral)
        elif shape == 2:
            answer = query.make_response(authoritative=True)
            answer.answers.append(
                rr(qname, RRType.CNAME, 300, CNAME(Name.from_text(f"cdn{i % 23}.{zone}")))
            )
            answer.answers.append(rr(f"cdn{i % 23}.{zone}", RRType.A, 300, A(f"93.{i % 200}.12.9")))
            answer.answers.append(
                rr(f"cdn{i % 23}.{zone}", RRType.AAAA, 300, AAAA(f"2001:db8::{(i % 9999) + 1:x}"))
            )
            answer.answers.append(
                rr(qname, RRType.TXT, 300, TXT((f"v=spf1 ip4:93.{i % 200}.0.0/16 -all".encode(),)))
            )
            corpus.append(answer)
        else:
            negative = query.make_response(authoritative=True, rcode=3)
            negative.authorities.append(
                rr(
                    zone,
                    RRType.SOA,
                    900,
                    SOA(
                        Name.from_text(f"ns1.host{i % 41}.{zone}"),
                        Name.from_text(f"hostmaster.{zone}"),
                        2022_00_00 + i,
                        7200,
                        900,
                        1_209_600,
                        900,
                    ),
                )
            )
            corpus.append(negative)
    return corpus


def build_zone_lines(hosts: int) -> list[str]:
    """Generated master-file lines shaped like ecosystem zone synthesis:
    many owners, heavily repeated NS/MX/TXT rdata strings."""
    lines = ["$ORIGIN corpus.example.", "$TTL 3600"]
    lines.append(
        "@ IN SOA ns1.corpus.example. hostmaster.corpus.example. 2022010100 7200 900 1209600 900"
    )
    for k in (1, 2):
        lines.append(f"@ IN NS ns{k}.corpus.example.")
    for i in range(hosts):
        lines.append(f"www{i} 300 IN A 10.{i % 250}.{(i // 250) % 250}.7")
        if i % 3 == 0:
            lines.append(f"www{i} 300 IN AAAA 2001:db8::{(i % 9999) + 1:x}")
        if i % 5 == 0:
            lines.append(f"mail{i} 300 IN MX 10 mx{i % 4}.corpus.example.")
        if i % 7 == 0:
            lines.append(f'www{i} 300 IN TXT "v=spf1 mx -all"')
    return lines


# --------------------------------------------------------------------------
# microbenchmarks


def bench_codec_corpus(profile: str = "check") -> dict:
    """Decode/encode/batch/zone-parse throughput over the corpus."""
    from repro.dnslib import Message, clear_codec_caches, decode_many, parse_zone_lines

    sizes = PROFILES[profile]
    corpus = build_corpus(sizes["corpus"])
    wires = [message.to_wire() for message in corpus]
    passes = sizes["passes"]
    count = passes * len(wires)
    from_wire = Message.from_wire

    def decode_warm():
        for _ in range(passes):
            for wire in wires:
                from_wire(wire)

    def decode_cold():
        for _ in range(passes):
            clear_codec_caches()
            for wire in wires:
                from_wire(wire)

    def decode_hydrate():
        for _ in range(passes):
            clear_codec_caches()
            for wire in wires:
                message = from_wire(wire)
                for section in (message.answers, message.authorities, message.additionals):
                    for record in section:
                        record.rdata

    def decode_batch():
        for _ in range(passes):
            decode_many(wires)

    def encode_warm():
        for _ in range(passes):
            for message in corpus:
                message._wire = None
                message.to_wire()

    clear_codec_caches()
    results = {
        "codec_corpus_decode_per_s": round(count / _best_wall(decode_warm)),
        "codec_corpus_decode_cold_per_s": round(count / _best_wall(decode_cold)),
        "codec_corpus_hydrate_per_s": round(count / _best_wall(decode_hydrate)),
        "codec_batch_decode_per_s": round(count / _best_wall(decode_batch)),
        "codec_corpus_encode_per_s": round(count / _best_wall(encode_warm)),
    }

    lines = build_zone_lines(sizes["zone_hosts"])
    zone_passes = max(2, passes // 4)

    def zone_parse():
        for _ in range(zone_passes):
            parse_zone_lines(lines)

    results["codec_zone_parse_lines_per_s"] = round(
        zone_passes * len(lines) / _best_wall(zone_parse)
    )
    results["_codec_corpus_size"] = len(wires)
    return results


def metric_lines(results: dict) -> list[str]:
    labels = {
        "codec_corpus_decode_per_s": "corpus decode (warm)",
        "codec_corpus_decode_cold_per_s": "corpus decode (cold)",
        "codec_corpus_hydrate_per_s": "corpus decode + hydrate",
        "codec_batch_decode_per_s": "decode_many batch",
        "codec_corpus_encode_per_s": "corpus encode (warm)",
        "codec_zone_parse_lines_per_s": "zone parse",
    }
    units = {"codec_zone_parse_lines_per_s": "lines/s"}
    out = []
    for key, label in labels.items():
        if key in results:
            out.append(f"  {label:<26} {results[key]:>10,} {units.get(key, 'msgs/s')}")
    return out


# --------------------------------------------------------------------------
# behaviour fingerprints: fig1/fig2/table2-shaped smoke scans
#
# Each shape runs the full resolver pipeline at a fixed (unscaled) size.
# Under ``wire_mode="always"`` every packet crosses the codec, so the
# virtual-time fingerprint is a behavioural checksum of the rewrite: it
# must match the ``wire_mode="never"`` run of the same shape (the codec
# may not change what a scan resolves) and the stored pre-rewrite
# reference in ``BENCH_hotpath.json``.

SMOKE_SHAPES = ("fig1", "fig2", "table2")


def smoke_fingerprint(shape: str, wire_mode: str) -> dict:
    """One deterministic smoke scan; returns its virtual-time fingerprint."""
    from repro.ecosystem import EcosystemParams, build_internet
    from repro.framework import ScanConfig, ScanRunner
    from repro.workloads import DomainCorpus

    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode=wire_mode)
    if shape == "fig1":
        # figure 1 shape: iterative A scan from a /28
        config = ScanConfig(
            module="A", mode="iterative", threads=400, source_prefix=28,
            cache_size=600_000, seed=BENCH_SEED,
        )
        names = list(DomainCorpus().fqdns(1200, start=0))
    elif shape == "fig2":
        # figure 2 shape: reverse scan under a small random-eviction cache
        config = ScanConfig(
            module="PTRIP", mode="iterative", threads=500, source_prefix=28,
            cache_size=1500, cache_eviction="random", seed=BENCH_SEED,
        )
        names = dense_ptr_targets(2000, 0)
    elif shape == "table2":
        # table 2 shape: forwarding through a public recursive resolver
        config = ScanConfig(
            module="A", mode="external", resolver_ips=[internet.google_ip],
            threads=400, retries=3, seed=BENCH_SEED,
        )
        names = list(DomainCorpus().fqdns(1500, start=20_000))
    else:
        raise ValueError(f"unknown smoke shape {shape!r}")

    report = ScanRunner(internet, config).run(names)
    stats = report.stats
    fingerprint = {
        "total": stats.total,
        "successes": stats.successes,
        "statuses": dict(sorted(stats.by_status.items())),
        "queries_sent": stats.queries_sent,
        "duration_virtual_s": round(stats.duration, 6),
    }
    if shape == "fig2":
        fingerprint["cache_hit_rate"] = report.cache_stats["hit_rate"]
        fingerprint["cache_evictions"] = report.cache_stats["evictions"]
    return fingerprint


def smoke_fingerprints(wire_mode: str = "always") -> dict:
    return {shape: smoke_fingerprint(shape, wire_mode) for shape in SMOKE_SHAPES}


# --------------------------------------------------------------------------
# pytest entry


@pytest.mark.bench
@pytest.mark.tier2
def test_codec_corpus(run_once):
    results = run_once(bench_codec_corpus, "check")
    emit("codec_corpus", metric_lines(results), results)
    for key, value in results.items():
        assert value > 0, key
    # the memo fast path must beat the flat scanner, which must beat
    # scanning plus full hydration
    assert results["codec_corpus_decode_per_s"] >= results["codec_corpus_decode_cold_per_s"]
    assert results["codec_corpus_decode_cold_per_s"] >= results["codec_corpus_hydrate_per_s"]
