"""Section 4.2 (dig) — the exposed-lookup-chain baseline.

Paper: batch-mode ``dig +trace`` averages 0.5 traces/second; forking
individual dig processes peaks near 120 successful lookups/second.
Both orders of magnitude below any ZDNS configuration."""

from conftest import BENCH_SEED, emit, scaled

from repro.baselines import DigBaseline
from repro.ecosystem import EcosystemParams, build_internet
from repro.workloads import DomainCorpus


def test_dig_baseline(run_once):
    def experiment():
        corpus = DomainCorpus()
        internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
        batch = DigBaseline(internet, seed=BENCH_SEED).run_batch_trace(
            list(corpus.fqdns(scaled(30, floor=20)))
        )
        internet2 = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
        forked = DigBaseline(internet2, seed=BENCH_SEED).run_forked(
            list(corpus.fqdns(scaled(2000), start=1000)), internet2.cloudflare_ip
        )
        return batch, forked

    batch, forked = run_once(experiment)

    lines = [
        f"  dig batch +trace : {batch.stats.lookups_per_second:6.2f} traces/s   (paper: 0.5)",
        f"  dig forked       : {forked.stats.steady_successes_per_second:6.1f} succ/s     (paper: 120)",
    ]
    emit(
        "dig_baseline",
        lines,
        {
            "batch_traces_per_second": round(batch.stats.lookups_per_second, 3),
            "forked_successes_per_second": round(forked.stats.steady_successes_per_second, 1),
        },
    )

    assert batch.stats.lookups_per_second < 2.0
    assert 30 < forked.stats.steady_successes_per_second < 600
    assert forked.stats.steady_successes_per_second > 20 * batch.stats.lookups_per_second
