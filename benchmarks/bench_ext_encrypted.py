"""Extension (Section 7 future work) — encrypted DNS transports.

The paper anticipates that DoH/DoT will hurt throughput (no UDP socket
reuse, TLS handshakes, crypto CPU) and proposes reusing TLS connections
across resolutions.  This bench quantifies both: UDP vs DoT without
connection reuse vs DoT with reuse, same workload and thread count."""

from conftest import BENCH_SEED, emit, scaled

from repro.core import ClientCostModel, ExternalMachine, ResolverConfig, SimDriver
from repro.ecosystem import EcosystemParams, build_internet
from repro.framework.stats import ScanStats
from repro.net import CPUModel, SimEncryptedSocket, SimUDPSocket, SourceIPPool
from repro.dnslib import RRType
from repro.workloads import DomainCorpus

THREADS = 8000
SAMPLE = 40_000


def _run(transport: str, offset: int) -> dict:
    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
    sim = internet.sim
    cpu = CPUModel(sim, cores=24)
    driver = SimDriver(internet.network, cpu=cpu, costs=ClientCostModel(), seed=BENCH_SEED)
    pool = SourceIPPool(prefix_length=28)
    config = ResolverConfig(retries=2)
    stats = ScanStats(threads_requested=THREADS, threads_running=THREADS)
    names = iter(list(DomainCorpus().fqdns(scaled(SAMPLE), start=offset)))
    resolver_ip = internet.cloudflare_ip

    def make_socket():
        if transport == "udp":
            return SimUDPSocket(internet.network, pool)
        return SimEncryptedSocket(
            internet.network, pool, cpu=cpu, reuse_connections=(transport == "dot-reuse")
        )

    def worker(socket, start_delay):
        yield start_delay  # ramp-up spread, as in ScanRunner
        while True:
            try:
                raw = next(names)
            except StopIteration:
                socket.close()
                return
            machine = ExternalMachine([resolver_ip], config)
            result = yield from driver.execute(machine.resolve(raw, RRType.A), socket)
            stats.record(str(result.status), sim.now, result.queries_sent, result.retries_used)

    futures = [
        sim.spawn(worker(make_socket(), 0.5 * i / THREADS)) for i in range(THREADS)
    ]
    sim.run()
    for future in futures:
        future.result()
    return {
        "transport": transport,
        "successes_per_second": round(stats.steady_successes_per_second, 1),
        "success_rate": round(stats.success_rate, 4),
        "cpu_utilisation": round(cpu.utilisation(stats.duration), 3),
    }


def test_ext_encrypted_transports(run_once):
    def experiment():
        rows = []
        for i, transport in enumerate(["udp", "dot-noreuse", "dot-reuse"]):
            rows.append(_run(transport, i * scaled(SAMPLE)))
        return rows

    rows = run_once(experiment)

    lines = [
        f"  {row['transport']:<12}: {row['successes_per_second']:>9.0f} succ/s  "
        f"{100 * row['success_rate']:5.1f}% ok  cpu {100 * row['cpu_utilisation']:5.1f}%"
        for row in rows
    ]
    emit("ext_encrypted", lines, {"rows": rows})

    by = {row["transport"]: row for row in rows}
    # encryption without connection reuse is the worst configuration...
    assert by["udp"]["successes_per_second"] > by["dot-noreuse"]["successes_per_second"]
    # ...and connection reuse recovers a large share of the loss
    assert by["dot-reuse"]["successes_per_second"] > by["dot-noreuse"]["successes_per_second"]
