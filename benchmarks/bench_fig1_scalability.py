"""Figure 1 — ZDNS scalability: successes/second vs thread count.

Paper series: A and PTR lookups through Cloudflare, Google, and ZDNS's
own iterative resolver, scanning from /32, /29 and /28 source subnets.
Headlines to reproduce:

* near-linear scaling that plateaus around 45-50K threads at ~90-100K
  successes/s for the public resolvers (CPU-bound at 24 cores);
* the iterative resolver peaking earlier at ~18K successes/s;
* the /32 + Google combination collapsing by roughly 6x (per-client-IP
  rate limiting) and capping at 45K threads (one IP's ephemeral ports).

Default grid is reduced for runtime; set REPRO_FULL=1 for the full one.
"""

from conftest import BENCH_SEED, FULL, emit, scaled

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner
from repro.workloads import DomainCorpus, ptr_names

_FULL_GRID = [1000, 5000, 10_000, 20_000, 50_000, 100_000]

SERIES = [
    # (label, module, mode, source_prefix, ptr?, thread grid)
    # iterative saturates its CPU budget early, so its default grid
    # stops at 20K; a /32 cannot run more than its 45K ports.
    ("cloudflare-A-/28", "A", "cloudflare", 28, False,
     _FULL_GRID if FULL else [1000, 5000, 20_000, 50_000]),
    ("google-A-/32", "A", "google", 32, False,
     _FULL_GRID if FULL else [1000, 5000, 20_000, 45_000]),
    ("iterative-A-/28", "A", "iterative", 28, False,
     _FULL_GRID if FULL else [1000, 5000, 20_000]),
]
if FULL:
    SERIES += [
        ("google-A-/28", "A", "google", 28, False, _FULL_GRID),
        ("google-PTR-/28", "PTR", "google", 28, True, _FULL_GRID),
        ("iterative-PTR-/28", "PTR", "iterative", 28, True, _FULL_GRID),
        ("cloudflare-A-/29", "A", "cloudflare", 29, False, _FULL_GRID),
    ]


def _names(ptr: bool, count: int, offset: int):
    if ptr:
        return list(ptr_names(count, seed=BENCH_SEED, start=offset))
    return list(DomainCorpus().fqdns(count, start=offset))


def _one_point(label, module, mode, prefix, ptr, threads, offset):
    # enough lookups per routine that the steady-state window is real
    count = scaled(max(25_000, 3 * threads))
    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
    config = ScanConfig(
        module=module,
        mode=mode,
        threads=threads,
        source_prefix=prefix,
        cache_size=600_000,
        seed=BENCH_SEED,
    )
    report = ScanRunner(internet, config).run(_names(ptr, count, offset))
    stats = report.stats
    return {
        "threads": threads,
        "threads_running": stats.threads_running,
        "successes_per_second": round(stats.steady_successes_per_second, 1),
        "success_rate": round(stats.success_rate, 4),
        "cpu_utilisation": round(report.cpu_utilisation, 3),
        "lookups": count,
    }


def test_fig1_scalability(run_once):
    def experiment():
        results = {}
        offset = 0
        for label, module, mode, prefix, ptr, grid in SERIES:
            series = []
            for threads in grid:
                point = _one_point(label, module, mode, prefix, ptr, threads, offset)
                offset += point["lookups"]  # fresh names each trial (paper S4.1)
                series.append(point)
            results[label] = series
        return results

    results = run_once(experiment)

    lines = []
    for label, series in results.items():
        lines.append(f"{label}:")
        for point in series:
            lines.append(
                f"  {point['threads']:>7} threads ({point['threads_running']:>6} ran): "
                f"{point['successes_per_second']:>9.0f} succ/s  "
                f"{100 * point['success_rate']:5.1f}% ok  "
                f"cpu {100 * point['cpu_utilisation']:5.1f}%"
            )
    emit("fig1_scalability", lines, results)

    # shape assertions: scaling, plateau ordering, /32 rate-limit collapse
    cloudflare = results["cloudflare-A-/28"]
    assert cloudflare[-1]["successes_per_second"] > 2.5 * cloudflare[0]["successes_per_second"]
    iterative = results["iterative-A-/28"]
    assert cloudflare[-1]["successes_per_second"] > 2 * iterative[-1]["successes_per_second"]
    google32 = results["google-A-/32"]
    assert google32[-1]["successes_per_second"] < 0.5 * cloudflare[-1]["successes_per_second"]
