"""Figure 2 — internal resolver cache performance.

The paper sweeps the selective cache from 50K to 1M entries at 50K
threads and finds successes/second more than *triples* while the cache
hit rate moves by less than 5 points: under random eviction, a small
cache keeps evicting hot upper-layer delegations (TLD / reverse-zone
cuts), forcing full re-walks from the roots.

Scaled here: the same sweep shape at a smaller workload, with cache
sizes scaled to the number of distinct zones the scaled workload
touches (documented in EXPERIMENTS.md).
"""

from conftest import BENCH_SEED, FULL, dense_ptr_targets, emit, scaled

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner

#: Paper sweep: 50K..1M entries against ~10M lookups.  Scaled sweep:
#: sizes scale with the number of distinct reverse zones the scaled
#: workload touches.
CACHE_SIZES = [1500, 5000, 15_000, 60_000] if not FULL else [1500, 3000, 5000, 10_000, 15_000, 30_000, 60_000, 150_000]

THREADS = 8000
LOOKUPS = 40_000

def _one_point(cache_size: int, offset: int) -> dict:
    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
    config = ScanConfig(
        module="PTRIP",
        mode="iterative",
        threads=THREADS,
        source_prefix=28,
        cache_size=cache_size,
        cache_eviction="random",
        seed=BENCH_SEED,
    )
    names = dense_ptr_targets(scaled(LOOKUPS), offset)
    report = ScanRunner(internet, config).run(names)
    stats = report.stats
    return {
        "cache_size": cache_size,
        "successes_per_second": round(stats.steady_successes_per_second, 1),
        "success_rate": round(stats.success_rate, 4),
        "hit_rate": report.cache_stats["hit_rate"],
        "evictions": report.cache_stats["evictions"],
        "queries_per_lookup": round(stats.queries_sent / max(1, stats.total), 2),
    }


def test_fig2_cache_size(run_once):
    def experiment():
        series = []
        offset = 0
        for size in CACHE_SIZES:
            point = _one_point(size, offset)
            offset += scaled(LOOKUPS)
            series.append(point)
        return series

    series = run_once(experiment)

    lines = []
    for point in series:
        lines.append(
            f"  cache {point['cache_size']:>8}: "
            f"{point['successes_per_second']:>9.0f} succ/s  "
            f"hit rate {100 * point['hit_rate']:5.1f}%  "
            f"{point['queries_per_lookup']:.2f} queries/lookup  "
            f"{point['evictions']} evictions"
        )
    emit("fig2_cache", lines, {"series": series})

    smallest, largest = series[0], series[-1]
    # throughput rises substantially with cache size... (the paper sees
    # 3x at 250x our lookup count; the scaled sweep shows the same
    # monotone mechanism at a smaller magnitude)
    assert largest["successes_per_second"] > 1.35 * smallest["successes_per_second"]
    # ...while the hit rate barely moves (paper: <5 points)
    assert abs(largest["hit_rate"] - smallest["hit_rate"]) < 0.08
    # ...while the workload needs fewer upstream queries per lookup
    assert largest["queries_per_lookup"] < smallest["queries_per_lookup"]
