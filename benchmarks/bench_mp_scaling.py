"""Multi-core scaling: wall-clock throughput vs ``--processes`` (the
paper's Figure 1, re-run on the axis ZDNS gets for free and CPython does
not — OS processes instead of goroutines).

The single-process simulator is GIL-bound: adding simulated threads
raises *virtual* throughput but wall-clock throughput stays pinned to
one core.  The multi-process shard executor
(:mod:`repro.framework.parallel`) is the missing layer, so this
benchmark measures the real thing: the same scan at 1, 2, and 4 (and,
under ``REPRO_FULL=1``, 8) worker processes, with the merged-output
byte-identity contract checked at every point along the sweep.

Speedup is reported always but asserted only on hosts with enough
cores: on a 1-core container every process count time-slices the same
core and the honest expected speedup is ~1.0x.
"""

from __future__ import annotations

import io
import os
import time

import pytest

from conftest import BENCH_SEED, FULL, emit, scaled

PROCESS_SWEEP = (1, 2, 4, 8) if FULL else (1, 2, 4)

#: Logical shards for the sweep — must cover the largest process count
#: and stays fixed across it (the determinism contract's other half).
SHARDS = 8

#: The wall-clock speedup 4 processes must deliver on a >=4-core host
#: (ISSUE acceptance criterion).  Sub-linear headroom covers the merge
#: serialisation in the parent and per-worker interpreter start-up.
REQUIRED_SPEEDUP_4P = 2.5


def run_mp(names: list[str], processes: int, threads: int, shards: int = SHARDS):
    """One timed multi-process scan; returns (wall_s, output, report)."""
    from repro.framework import ScanConfig, run_parallel_scan

    config = ScanConfig(
        module="A",
        mode="iterative",
        threads=threads,
        source_prefix=28,
        cache_size=600_000,
        seed=BENCH_SEED,
    )
    out = io.StringIO()
    start = time.perf_counter()
    report = run_parallel_scan(
        names,
        config,
        processes=processes,
        out=out,
        shards=shards,
        add_timestamp=False,
    )
    wall = time.perf_counter() - start
    return wall, out.getvalue(), report


def run_sweep(lookups: int, threads: int) -> dict:
    from repro.workloads import DomainCorpus

    names = list(DomainCorpus().fqdns(lookups, start=0))
    results: dict = {
        "lookups": lookups,
        "shards": SHARDS,
        "host_cores": os.cpu_count() or 1,
        "points": [],
    }
    reference_output = None
    for processes in PROCESS_SWEEP:
        wall, output, report = run_mp(names, processes, threads)
        if reference_output is None:
            reference_output = output
            results["virtual_s"] = round(report.stats.duration, 3)
            results["successes"] = report.stats.successes
        # the determinism contract, checked at every sweep point: the
        # merged bytes do not depend on the process count
        assert output == reference_output, (
            f"merged output at --processes {processes} diverged from "
            f"--processes {PROCESS_SWEEP[0]}"
        )
        assert report.stats.total == lookups
        results["points"].append(
            {
                "processes": report.processes,
                "wall_s": round(wall, 3),
                "lookups_per_s": round(lookups / wall),
            }
        )
    base_wall = results["points"][0]["wall_s"]
    for point in results["points"]:
        point["speedup"] = round(base_wall / point["wall_s"], 2)
    return results


def metric_lines(results: dict) -> list[str]:
    lines = [
        f"  corpus {results['lookups']} names, {results['shards']} logical "
        f"shards, host has {results['host_cores']} core(s)"
    ]
    lines.append(f"  {'procs':>6} {'wall_s':>9} {'lookups/s':>11} {'speedup':>8}")
    for point in results["points"]:
        lines.append(
            f"  {point['processes']:>6} {point['wall_s']:>9.3f} "
            f"{point['lookups_per_s']:>11,} {point['speedup']:>7.2f}x"
        )
    lines.append("  merged output byte-identical across all process counts")
    return lines


@pytest.mark.bench
@pytest.mark.tier2
def test_mp_scaling():
    results = run_sweep(lookups=scaled(4000), threads=1000)
    emit("mp_scaling", metric_lines(results), results)
    # correctness is asserted inside run_sweep (byte-identity at every
    # point); the speedup floor applies only where the silicon exists
    by_procs = {point["processes"]: point for point in results["points"]}
    if results["host_cores"] >= 4 and 4 in by_procs:
        assert by_procs[4]["speedup"] >= REQUIRED_SPEEDUP_4P, (
            f"--processes 4 delivered {by_procs[4]['speedup']}x on a "
            f"{results['host_cores']}-core host (need {REQUIRED_SPEEDUP_4P}x)"
        )
