"""Table 1 — ZDNS performance at scale.

Paper rows: A lookups over 50M domains and PTR over 100% of public
IPv4, through Google, Cloudflare, and the iterative resolver.  We run
each row's configuration on a scaled workload, report the measured
success rate (which should land on the paper's 88-97% bands), and
extrapolate the full-workload wall time from the measured steady rate.
"""

from conftest import BENCH_SEED, emit, scaled

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner
from repro.workloads import PUBLIC_IPV4_COUNT, DomainCorpus, ptr_names

ROWS = [
    # (lookup, mode, paper_success, paper_time, full_count)
    ("A", "google", 0.964, "10.6m", 50_000_000),
    ("A", "cloudflare", 0.970, "10.3m", 50_000_000),
    ("A", "iterative", 0.967, "46.3m", 50_000_000),
    ("PTR", "google", 0.930, "12.1h", PUBLIC_IPV4_COUNT),
    ("PTR", "cloudflare", 0.935, "12.9h", PUBLIC_IPV4_COUNT),
    ("PTR", "iterative", 0.885, "116.7h", PUBLIC_IPV4_COUNT),
]

SAMPLE = 60_000
THREADS = 20_000


def _fmt_duration(seconds: float) -> str:
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _one_row(lookup, mode, full_count, offset):
    count = scaled(SAMPLE)
    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")
    if lookup == "A":
        names = list(DomainCorpus().fqdns(count, start=offset))
        module = "A"
    else:
        names = list(ptr_names(count, seed=BENCH_SEED, start=offset))
        module = "PTR"
    config = ScanConfig(
        module=module,
        mode=mode,
        threads=THREADS,
        source_prefix=28,
        cache_size=600_000,
        retries=3,
        seed=BENCH_SEED,
    )
    stats = ScanRunner(internet, config).run(names).stats
    rate = stats.steady_successes_per_second
    return {
        "lookup": lookup,
        "resolver": mode,
        "sampled": count,
        "success_rate": round(stats.success_rate, 4),
        "successes_per_second": round(rate, 1),
        "extrapolated_time": _fmt_duration(full_count / max(1.0, rate)),
    }


def test_table1_performance(run_once):
    def experiment():
        rows = []
        offset = 0
        for lookup, mode, _ps, _pt, full in ROWS:
            row = _one_row(lookup, mode, full, offset)
            offset += scaled(SAMPLE)
            rows.append(row)
        return rows

    rows = run_once(experiment)

    lines = ["lookup resolver    success%  (paper)   extrapolated time (paper)"]
    for row, (_, _, paper_success, paper_time, _) in zip(rows, ROWS):
        lines.append(
            f"  {row['lookup']:<5} {row['resolver']:<11} "
            f"{100 * row['success_rate']:5.1f}%   ({100 * paper_success:.1f}%)   "
            f"{row['extrapolated_time']:>8}  ({paper_time})"
        )
    emit("table1_performance", lines, {"rows": rows})

    by_key = {(r["lookup"], r["resolver"]): r for r in rows}
    # success-rate bands (±7 points of each paper row)
    for lookup, mode, paper_success, _, _ in ROWS:
        measured = by_key[(lookup, mode)]["success_rate"]
        assert abs(measured - paper_success) < 0.07, (lookup, mode, measured)
    # ordering: iterative is slower end-to-end than the public resolvers
    assert (
        by_key[("A", "iterative")]["successes_per_second"]
        < by_key[("A", "google")]["successes_per_second"]
    )
    assert (
        by_key[("PTR", "iterative")]["successes_per_second"]
        < by_key[("PTR", "cloudflare")]["successes_per_second"]
    )
    # iterative PTR ties or trails every other row, as in the paper
    worst = min(r["success_rate"] for r in rows)
    assert by_key[("PTR", "iterative")]["success_rate"] <= worst + 0.005
