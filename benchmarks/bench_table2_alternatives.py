"""Table 2 — alternatives vs ZDNS.

Rows: MassDNS (A/PTR x Google/Cloudflare), ZDNS against a co-located
Unbound, ZDNS iterative, and ZDNS against the public resolvers.
Headlines to reproduce:

* MassDNS posts the highest raw successes/second but ~35% of its
  lookups end in drops or SERVFAIL;
* ZDNS's iterative resolver beats the co-located Unbound setup by
  roughly 2.6-3.6x at equal hardware;
* ZDNS through public resolvers sustains ~90K+ successes/s at 96-97%
  success (here: whatever the CPU model's plateau gives at this scale).

dig is benchmarked separately (bench_dig) because its numbers are
orders of magnitude smaller.
"""

from conftest import BENCH_SEED, FULL, emit, scaled

from repro.baselines import UNBOUND_IP, install_unbound, run_massdns
from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner
from repro.net import CPUModel
from repro.workloads import DomainCorpus, ptr_names

SAMPLE = 60_000
_OFFSET = [0]


def _names(lookup: str, count: int):
    offset = _OFFSET[0]
    _OFFSET[0] += count
    if lookup == "PTR":
        return list(ptr_names(count, seed=BENCH_SEED, start=offset))
    return list(DomainCorpus().fqdns(count, start=offset))


def _internet():
    return build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode="never")


def _row(tool, lookup, resolver, stats):
    return {
        "tool": tool,
        "lookup": lookup,
        "resolver": resolver,
        "successes_per_second": round(stats.steady_successes_per_second, 1),
        "success_rate": round(stats.success_rate, 4),
    }


def _massdns_row(lookup, resolver_name):
    internet = _internet()
    resolver_ip = internet.google_ip if resolver_name == "google" else internet.cloudflare_ip
    # several full turnovers of the 50K-deep window, so the overload
    # equilibrium (offered load >> resolver capacity) is reached
    names = _names(lookup, scaled(250_000))
    module = "PTRIP" if lookup == "PTR" else "A"
    report = run_massdns(internet, names, resolver_ip, module=module, seed=BENCH_SEED)
    return _row("massdns", lookup, resolver_name, report.stats)


def _zdns_unbound_row(lookup):
    internet = _internet()
    cpu = CPUModel(internet.sim, cores=24)
    install_unbound(internet, cpu)
    # contention caps usable concurrency (paper: 5-10K threads)
    threads = 10_000 if lookup == "PTR" else 5000
    config = ScanConfig(
        module="PTRIP" if lookup == "PTR" else "A",
        mode="external",
        resolver_ips=[UNBOUND_IP],
        threads=threads,
        retries=3,
        seed=BENCH_SEED,
    )
    stats = ScanRunner(internet, config, cpu=cpu).run(_names(lookup, scaled(SAMPLE))).stats
    return _row("zdns", lookup, "unbound", stats)


def _zdns_row(lookup, mode, threads=20_000):
    internet = _internet()
    config = ScanConfig(
        module="PTRIP" if lookup == "PTR" else "A",
        mode=mode,
        threads=threads,
        source_prefix=28,
        cache_size=600_000,
        retries=3,
        seed=BENCH_SEED,
    )
    stats = ScanRunner(internet, config).run(_names(lookup, scaled(SAMPLE))).stats
    return _row("zdns", lookup, mode, stats)


def test_table2_alternatives(run_once):
    def experiment():
        rows = []
        # default: the Cloudflare row — no per-IP rate limit, so the
        # overload failure mode is pure capacity shedding; the Google
        # variant (rate-limit drops + massdns's 50 timeout retries) is
        # much slower to simulate and lives behind REPRO_FULL
        rows.append(_massdns_row("A", "cloudflare"))
        if FULL:
            rows.append(_massdns_row("PTR", "google"))
            rows.append(_massdns_row("A", "google"))
            rows.append(_massdns_row("PTR", "cloudflare"))
        rows.append(_zdns_unbound_row("A"))
        if FULL:
            rows.append(_zdns_unbound_row("PTR"))
        rows.append(_zdns_row("A", "iterative"))
        rows.append(_zdns_row("PTR", "iterative"))
        rows.append(_zdns_row("A", "google"))
        rows.append(_zdns_row("A", "cloudflare"))
        if FULL:
            rows.append(_zdns_row("PTR", "google"))
            rows.append(_zdns_row("PTR", "cloudflare"))
        return rows

    rows = run_once(experiment)

    lines = ["tool     lookup resolver     success/s   %success"]
    for row in rows:
        lines.append(
            f"  {row['tool']:<8} {row['lookup']:<5} {row['resolver']:<11} "
            f"{row['successes_per_second']:>9.0f}   {100 * row['success_rate']:5.1f}%"
        )
    emit("table2_alternatives", lines, {"rows": rows})

    by_key = {(r["tool"], r["lookup"], r["resolver"]): r for r in rows}
    massdns = by_key[("massdns", "A", "cloudflare")]
    zdns_google = by_key[("zdns", "A", "google")]
    zdns_iter = by_key[("zdns", "A", "iterative")]
    zdns_unbound = by_key[("zdns", "A", "unbound")]

    zdns_cloudflare = by_key[("zdns", "A", "cloudflare")]
    # MassDNS: more raw successes/s than ZDNS, much worse success rate
    assert massdns["successes_per_second"] > zdns_cloudflare["successes_per_second"]
    assert massdns["success_rate"] < zdns_cloudflare["success_rate"] - 0.1
    # ZDNS iterative beats the co-located Unbound by the paper's margin
    ratio = zdns_iter["successes_per_second"] / zdns_unbound["successes_per_second"]
    assert ratio > 1.8, ratio
    # ZDNS through a public resolver beats its own iteration (Table 2)
    assert zdns_google["successes_per_second"] > zdns_iter["successes_per_second"]
