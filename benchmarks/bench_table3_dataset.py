"""Table 3 — the certificate-transparency domain corpus.

Censuses a corpus sample and reports the FQDN / base-domain / TLD
breakdown by TLD class, whose *shares* must match the paper's
234M-FQDN corpus (55.3% legacy gTLD, 38.7% ccTLD, 6.0% ngTLD; 2.5
FQDNs per base domain)."""

from conftest import BENCH_SEED, emit, scaled

from repro.workloads import CorpusConfig, DomainCorpus, census

PAPER_SHARES = {"legacy": 0.553, "cc": 0.387, "ng": 0.060}
SAMPLE = 120_000


def test_table3_dataset(run_once):
    corpus = DomainCorpus(CorpusConfig(seed=BENCH_SEED))
    result = run_once(census, corpus, scaled(SAMPLE))

    total = result.total_fqdns
    lines = ["class    fqdns     share (paper)   domains   tlds"]
    for cls, label in (("legacy", "legacy gTLDs"), ("ng", "ngTLDs"), ("cc", "ccTLDs")):
        fqdns, domains, tlds = result.row(cls)
        lines.append(
            f"  {label:<13} {fqdns:>8}  {100 * fqdns / total:5.1f}% "
            f"({100 * PAPER_SHARES[cls]:.1f}%)  {domains:>8}  {tlds:>4}"
        )
    lines.append(
        f"  {'all domains':<13} {total:>8}  100.0%          {result.total_domains:>8}"
    )
    lines.append(f"  fqdns per base domain: {total / result.total_domains:.2f} (paper: 2.51)")
    emit(
        "table3_dataset",
        lines,
        {"fqdns": result.fqdns, "domains": result.domains, "tlds": result.tlds},
    )

    for cls, share in PAPER_SHARES.items():
        measured = result.fqdns[cls] / total
        assert abs(measured - share) < 0.03, (cls, measured)
    ratio = total / result.total_domains
    assert 2.2 <= ratio <= 2.8
