"""Wall-clock hot-path benchmarks: scheduler, wire codec, delegation
cache, and an end-to-end fig1-style smoke scan.

Unlike the fig/table benchmarks (which measure *virtual-time* shapes),
this file measures real wall-clock throughput of the three Python hot
paths the simulator spends its life in, so perf PRs have a trajectory
to be judged against.  ``scripts/bench_compare.py`` runs the same suite
as a one-command regression gate versus the baseline stored in
``BENCH_hotpath.json`` at the repo root.

The helpers are import-safe (no pytest required) so the compare script
can reuse them; the pytest entry points are marked ``bench``/``tier2``.
"""

from __future__ import annotations

import time

import pytest

from conftest import BENCH_SEED, emit

# --------------------------------------------------------------------------
# profiles: the smoke gate ("check") vs a steadier, longer run ("full")

PROFILES = {
    "check": {
        "sched_timers": 60_000,
        "sched_routines": 4_000,
        "sched_races": 20_000,
        "codec_iters": 4_000,
        "cache_lookups": 150_000,
        "e2e_threads": 2_000,
        "e2e_lookups": 6_000,
    },
    "full": {
        "sched_timers": 200_000,
        "sched_routines": 10_000,
        "sched_races": 60_000,
        "codec_iters": 12_000,
        "cache_lookups": 500_000,
        "e2e_threads": 4_000,
        "e2e_lookups": 15_000,
    },
}


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _best_wall(fn, repeats: int = 3) -> float:
    """Min wall time across repeats.

    The micro-benchmarks run for a few hundred ms each — short enough
    that a single burst of CPU steal on a shared host can double one
    sample.  The fastest of three runs is the least-disturbed one.
    """
    return min(_timed(fn)[0] for _ in range(repeats))


# --------------------------------------------------------------------------
# host-speed calibration
#
# On shared/virtualised hosts, CPU steal can inflate wall-clock samples
# by 2x or more for minutes at a time.  Every bench here is
# single-threaded pure Python, so steal slows a fixed spin loop by the
# same factor it slows the benchmarks; sampling the loop throughout the
# suite gives a host-speed figure the compare gate can normalise by.

_SPIN_ITERS = 50_000


def _spin_rate() -> float:
    """Iterations/s of a fixed calibration loop — tracks available CPU.

    The loop must churn objects, not just registers: co-tenant memory
    contention slows allocation-heavy interpreter code long before it
    shows up in pure-arithmetic timing, and the benchmarks here are all
    allocation-heavy.  Each iteration does the interpreter's bread and
    butter — a tuple allocation and a dict store — plus a little
    arithmetic.
    """
    start = time.perf_counter()
    x = 0
    bucket: dict = {}
    for i in range(_SPIN_ITERS):
        x += i ^ (x >> 3)
        bucket[i & 255] = (x, i)
    return _SPIN_ITERS / (time.perf_counter() - start)


class _HostSpeed:
    """Collects spin-loop samples interleaved with the benchmarks."""

    def __init__(self):
        self.samples: list[float] = []

    def sample(self) -> None:
        self.samples.append(_spin_rate())

    def median(self) -> float:
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2


# --------------------------------------------------------------------------
# scheduler


def bench_scheduler(timers: int, routines: int, races: int) -> dict:
    """Raw event-loop throughput: timer churn, routine ping-pong, and
    the timeout_race pattern every simulated query goes through."""
    from repro.net import Simulator

    # 1) pure timer heap churn
    counter = [0]

    def tick():
        counter[0] += 1

    def timer_run():
        sim = Simulator()
        for i in range(timers):
            sim.call_later(((i * 7919) % 1000) / 1000.0, tick)
        sim.run()

    timer_wall = _best_wall(timer_run)

    # 2) routines sleeping in lockstep (spawn/step/resume machinery)
    def sleeper(n):
        for _ in range(n):
            yield 0.01
        return n

    def routine_run():
        sim = Simulator()
        sim.run_all(sleeper(20) for _ in range(routines))

    routine_wall = _best_wall(routine_run)

    # 3) the hot query pattern: a future that wins a race against a
    # timeout timer (with cancellable timers the loser leaves the heap)
    def querier(sim, n):
        for _ in range(n):
            response = sim.sleep_future(0.05)
            value = yield sim.timeout_race(response, 5.0)
            assert value is None  # sleep_future resolves with None
        return n

    race_count = max(1, races // 100)
    race_sims = []

    def race_run():
        sim = Simulator()
        race_sims[:] = [sim]
        sim.run_all(querier(sim, 100) for _ in range(race_count))

    race_wall = _best_wall(race_run)

    counters = getattr(race_sims[0], "counters", None)
    scheduler_counters = counters() if callable(counters) else {}
    return {
        "sched_timer_ops_per_s": round(timers / timer_wall),
        "sched_routine_steps_per_s": round(routines * 20 / routine_wall),
        "sched_race_queries_per_s": round(race_count * 100 / race_wall),
        "_race_counters": scheduler_counters,
    }


# --------------------------------------------------------------------------
# wire codec


def _sample_messages():
    """A referral and an answer shaped like the simulated servers emit."""
    from repro.dnslib import DNSClass, Message, Name, ResourceRecord, RRType, add_edns
    from repro.dnslib.rdata.address import A
    from repro.dnslib.rdata.names import CNAME, NS

    def rr(name, rrtype, ttl, rdata):
        return ResourceRecord(Name.from_text(name), rrtype, DNSClass.IN, ttl, rdata)

    query = Message.make_query("www.domain-12345.com", RRType.A, txid=0x1234)
    add_edns(query, payload_size=1232)

    referral = query.make_response()
    for k in (1, 2):
        referral.authorities.append(
            rr("domain-12345.com", RRType.NS, 172_800, NS(Name.from_text(f"ns{k}.host7.example")))
        )
        referral.additionals.append(
            rr(f"ns{k}.host7.example", RRType.A, 172_800, A(f"10.7.0.{k}"))
        )

    answer = query.make_response(authoritative=True)
    answer.answers.append(
        rr("www.domain-12345.com", RRType.CNAME, 300, CNAME(Name.from_text("domain-12345.com")))
    )
    for k in (1, 2):
        answer.answers.append(rr("domain-12345.com", RRType.A, 300, A(f"93.7.12.{k}")))
    return [query, referral, answer]


def bench_codec(iterations: int) -> dict:
    from repro.dnslib import Message, clear_codec_caches

    # re-arm the adaptive codec memos: an e2e scan earlier in the suite
    # may have tripped their hit-rate gates off
    clear_codec_caches()
    messages = _sample_messages()
    wires = [message.to_wire() for message in messages]

    def encode_all():
        for _ in range(iterations):
            for message in messages:
                # defeat any instance-level wire memo: measure the codec
                message._wire = None
                message.to_wire()

    def decode_all():
        for _ in range(iterations):
            for wire in wires:
                Message.from_wire(wire)

    encode_wall = _best_wall(encode_all)
    decode_wall = _best_wall(decode_all)
    count = iterations * len(messages)
    return {
        "codec_encode_per_s": round(count / encode_wall),
        "codec_decode_per_s": round(count / decode_wall),
    }


# --------------------------------------------------------------------------
# delegation cache


def bench_cache(lookups: int) -> dict:
    from repro.core import Delegation, SelectiveCache
    from repro.dnslib import Name

    cache = SelectiveCache(capacity=600_000, seed=BENCH_SEED)
    zones = []
    for i in range(512):
        zone = Name.from_text(f"domain-{i}.com")
        zones.append(zone)
        cache.put_delegation(
            Delegation(
                zone=zone,
                ns_names=(Name.from_text(f"ns1.host{i % 40}.example"),),
                glue=((Name.from_text(f"ns1.host{i % 40}.example"), f"10.{i % 40}.0.1"),),
            )
        )
    cache.put_delegation(
        Delegation(zone=Name.from_text("com"), ns_names=(), glue=())
    )
    qnames = [Name.from_text(f"www.deep.domain-{i % 512}.com") for i in range(2048)]
    misses = [Name.from_text(f"www.domain-{i}.org") for i in range(256)]

    def lookup_all():
        n = len(qnames)
        m = len(misses)
        for i in range(lookups):
            cache.best_delegation(qnames[i % n])
            if i % 8 == 0:
                cache.best_delegation(misses[i % m])

    wall = _best_wall(lookup_all)
    total = lookups + lookups // 8
    return {"cache_lookups_per_s": round(total / wall)}


# --------------------------------------------------------------------------
# end-to-end fig1-style smoke scan


def bench_e2e(threads: int, lookups: int, wire_mode: str, observe: bool = False) -> dict:
    """Fig1-style smoke scan.  ``observe=True`` runs it with the
    telemetry registry and a status emitter enabled (spans stay off, as
    in a typical monitored scan) so the metrics-on overhead can be
    measured against the default metrics-off run."""
    import io

    from repro.ecosystem import EcosystemParams, build_internet
    from repro.framework import ScanConfig, ScanRunner
    from repro.workloads import DomainCorpus

    internet = build_internet(params=EcosystemParams(seed=BENCH_SEED), wire_mode=wire_mode)
    config = ScanConfig(
        module="A",
        mode="iterative",
        threads=threads,
        source_prefix=28,
        cache_size=600_000,
        seed=BENCH_SEED,
        metrics=observe,
        status_interval=1.0 if observe else None,
    )
    names = list(DomainCorpus().fqdns(lookups, start=0))
    runner = ScanRunner(internet, config, status_stream=io.StringIO() if observe else None)
    wall, report = _timed(lambda: runner.run(names))
    stats = report.stats
    suffix = "never" if wire_mode == "never" else "wire"
    if observe:
        suffix += "_obs"
    return {
        f"e2e_{suffix}_wall_s": round(wall, 3),
        f"e2e_{suffix}_lookups_per_s": round(stats.total / wall),
        # virtual-time fingerprint: must not move when wall time does
        f"_e2e_{suffix}_fingerprint": {
            "total": stats.total,
            "successes": stats.successes,
            "statuses": dict(sorted(stats.by_status.items())),
            "queries_sent": stats.queries_sent,
            "duration_virtual_s": round(stats.duration, 6),
        },
    }


# --------------------------------------------------------------------------
# suite driver (shared with scripts/bench_compare.py)


def run_suite(profile: str = "check") -> dict:
    sizes = PROFILES[profile]
    host = _HostSpeed()
    results: dict = {"profile": profile}
    host.sample()
    results.update(
        bench_scheduler(sizes["sched_timers"], sizes["sched_routines"], sizes["sched_races"])
    )
    host.sample()
    results.update(bench_codec(sizes["codec_iters"]))
    host.sample()
    results.update(bench_cache(sizes["cache_lookups"]))
    host.sample()
    results.update(bench_e2e(sizes["e2e_threads"], sizes["e2e_lookups"], "never"))
    host.sample()
    results.update(bench_e2e(sizes["e2e_threads"], sizes["e2e_lookups"], "always"))
    host.sample()
    results["_host_spin_per_s"] = round(host.median())
    return results


def metric_lines(results: dict) -> list[str]:
    lines = []
    for key, value in results.items():
        if key.startswith("_") or key == "profile":
            continue
        if key.endswith("_wall_s"):
            lines.append(f"  {key:<32} {value:>12.3f} s")
        else:
            lines.append(f"  {key:<32} {value:>12,.0f} /s")
    return lines


@pytest.mark.bench
@pytest.mark.tier2
def test_hotpath_wallclock():
    results = run_suite("check")
    emit("hotpath_wallclock", metric_lines(results), results)
    # sanity only — the wall-clock gate lives in scripts/bench_compare.py
    fingerprint = results["_e2e_never_fingerprint"]
    assert fingerprint["total"] == PROFILES["check"]["e2e_lookups"]
    assert fingerprint["successes"] > 0.8 * fingerprint["total"]
    assert results["codec_encode_per_s"] > 0
    assert results["cache_lookups_per_s"] > 0
