"""Shared helpers for the evaluation benchmarks.

Every benchmark regenerates one table or figure from the paper at a
scaled-down workload size (the substrate is a simulator; absolute wall
time is not the target, the *shape* is).  Results are printed and saved
to ``benchmarks/results/<experiment>.json`` so EXPERIMENTS.md can be
checked against fresh runs.

Environment knobs:

* ``REPRO_SCALE`` — multiply workload sizes (default 1.0).
* ``REPRO_FULL=1`` — run the full sweep grids instead of the reduced
  defaults.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Seed shared by all benchmarks for reproducibility.
BENCH_SEED = 2022


def scaled(count: int, floor: int = 1000) -> int:
    """Apply the global workload scale factor."""
    return max(floor, int(count * SCALE))


def save_results(name: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))


def emit(name: str, lines: list[str], payload: dict) -> None:
    """Print a result block and persist it."""
    banner = f"== {name} " + "=" * max(0, 66 - len(name))
    print()
    print(banner)
    for line in lines:
        print(line)
    save_results(name, payload)


#: The paper's 10M-lookup reverse scans revisit each /16 zone ~150
#: times.  Folding targets into eight /8s preserves that reuse density
#: at scaled lookup counts (2048 /16 zones).
DENSE_FIRST_OCTETS = [23, 34, 45, 52, 64, 77, 81, 89]


def dense_ptr_targets(count: int, offset: int, seed: int = BENCH_SEED) -> list[str]:
    """IPv4 targets folded into a dense /8 subset (cache-study workload)."""
    from repro.workloads import permuted_ipv4

    targets = []
    for ip in permuted_ipv4(count, seed=seed, start=offset):
        first, rest = ip.split(".", 1)
        folded = DENSE_FIRST_OCTETS[int(first) % len(DENSE_FIRST_OCTETS)]
        targets.append(f"{folded}.{rest}")
    return targets


@pytest.fixture
def run_once(benchmark):
    """Run the (expensive, deterministic) experiment exactly once under
    pytest-benchmark's timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
