#!/usr/bin/env python3
"""Section 6, reproduced in miniature: survey the CAA ecosystem.

Scans a sample of base domains with the CAA module (following CNAMEs
per RFC 8659) and prints deployment / configuration / issuer findings
in the shape of the paper's Section 6.

Run:  python examples/caa_survey.py [n_domains]
"""

import sys

from repro import build_internet
from repro.analysis import run_caa_study
from repro.workloads import DomainCorpus


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    internet = build_internet(wire_mode="sampled")
    corpus = DomainCorpus()

    print(f"scanning CAA records of {count} base domains ...")
    findings = run_caa_study(internet, corpus.base_domains(count), threads=2000)
    data = findings.to_json()

    print("\n-- CAA deployment ------------------------------------------")
    print(f"  NOERROR domains:        {data['domains_noerror']}")
    print(f"  CAA holders:            {data['caa_domains']} ({data['caa_rate_pct']}%)"
          f"   [paper: 1.69%]")
    print(f"  via CNAME chain:        {data['via_cname']}")
    print(f"  ccTLD share of CAA:     {data['cctld_share_of_caa_pct']}%   [paper: 48%]")
    print(f"  .pl share of ccTLD CAA: {data['pl_share_of_cc_caa_pct']}%   [paper: 25%]")
    print(f"  top-10 ccTLD share:     {data['top10_cc_share_pct']}%   [paper: 70%]")

    print("\n-- CAA configuration ---------------------------------------")
    print(f"  issue tag:              {data['pct_issue']}%   [paper: 96.8%]")
    print(f"  issuewild tag:          {data['pct_issuewild']}%   [paper: 55.27%]")
    print(f"  iodef tag:              {data['pct_iodef']}%   [paper: 6.87%]")
    print(f"  iodef-only domains:     {data['iodef_only']}")
    print(f"  invalid tags:           {data['pct_invalid_tag']}%   [paper: 0.04%]")

    print("\n-- CAA issuers ---------------------------------------------")
    print(f"  Let's Encrypt in issue: {data['pct_issue_letsencrypt']}%   [paper: 92.4%]")
    print(f"  Comodo in domains:      {data['pct_domains_comodo']}%   [paper: >50%]")
    print(f"  Digicert in domains:    {data['pct_domains_digicert']}%   [paper: >50%]")


if __name__ == "__main__":
    main()
