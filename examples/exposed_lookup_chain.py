#!/usr/bin/env python3
"""Appendix C, reproduced: the exposed lookup chain.

dig +trace prints a wall of text; ZDNS emits the same chain as
programmatically interpretable JSON.  This example resolves one name
iteratively and prints each step of the chain, then the full JSON.

Run:  python examples/exposed_lookup_chain.py [name]
"""

import json
import sys

from repro import build_internet
from repro.core import Resolver
from repro.dnslib import RRType


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "www.d8830635-24.com"
    internet = build_internet()
    resolver = Resolver(internet, mode="iterative", record_trace=True)
    result = resolver.lookup(name, RRType.A)

    print(f"status: {result.status}  queries sent: {result.queries_sent}\n")
    print("lookup chain:")
    for step in result.trace:
        marker = "cache" if step.cached else step.name_server
        print(
            f"  depth {step.depth}  layer {step.layer!r:<22} "
            f"try {step.try_count}  via {marker}  -> {step.status}"
        )

    print("\nfull JSON (the ZDNS +trace format of Appendix C):")
    print(json.dumps(result.to_json(), indent=1))


if __name__ == "__main__":
    main()
