#!/usr/bin/env python3
"""The toolkit on real sockets: scan a loopback DNS server.

Starts an in-process UDP DNS server that serves the *same* simulated
zone universe, then queries it with the live transport — the identical
resolution machines, but over actual packets.  With network access, the
same LiveDriver works against real resolvers.

Run:  python examples/live_loopback.py
"""

from repro.core import ExternalMachine, LiveDriver, ResolverConfig
from repro.dnslib import RRType
from repro.ecosystem import EcosystemParams, PublicResolver, ZoneSynthesizer
from repro.net import UDPServer, UDPTransport
from repro.workloads import DomainCorpus


def main() -> None:
    synth = ZoneSynthesizer(EcosystemParams())
    resolver_model = PublicResolver.cloudflare_like(synth)

    def handler(query, client):
        reply = resolver_model.handle_query(query, client[0], 0.0, "udp")
        return reply.message if reply else None

    corpus = DomainCorpus()
    with UDPServer(handler) as server:
        host, port = server.address
        print(f"loopback resolver listening on {host}:{port}")
        with UDPTransport() as transport:
            driver = LiveDriver(transport, port_override=port)
            config = ResolverConfig(external_timeout=2.0, retries=1)
            successes = 0
            total = 20
            for raw in corpus.fqdns(total):
                machine = ExternalMachine([host], config)
                result = driver.execute(machine.resolve(raw, RRType.A))
                successes += result.is_success
                answers = ", ".join(r.rdata.to_text() for r in result.answers[:2])
                print(f"  {raw:<28} {str(result.status):<9} {answers}")
            print(f"\n{successes}/{total} lookups succeeded over real UDP sockets")


if __name__ == "__main__":
    main()
