#!/usr/bin/env python3
"""A high-throughput scan with the full framework.

Resolves a corpus sample three ways — Google-like resolver, Cloudflare-
like resolver, and ZDNS's own iterative resolution — with thousands of
concurrent routines, and prints throughput/success statistics.

Run:  python examples/mass_scan.py [n_names]
"""

import sys

from repro import ScanConfig, ScanRunner, build_internet
from repro.ecosystem import EcosystemParams
from repro.workloads import DomainCorpus


def scan(mode: str, names, threads: int) -> None:
    internet = build_internet(params=EcosystemParams(), wire_mode="never")
    config = ScanConfig(
        module="A", mode=mode, threads=threads, source_prefix=28, cache_size=600_000
    )
    report = ScanRunner(internet, config).run(names)
    stats = report.stats
    line = (
        f"  {mode:<11} {threads:>6} threads: "
        f"{stats.steady_successes_per_second:>9.0f} successes/s, "
        f"{100 * stats.success_rate:5.1f}% success, "
        f"cpu {100 * report.cpu_utilisation:4.1f}%"
    )
    if report.cache_stats:
        line += f", cache hit rate {100 * report.cache_stats['hit_rate']:4.1f}%"
    print(line)


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    corpus = DomainCorpus()
    names = list(corpus.fqdns(count))

    print(f"scanning {count} certificate-transparency-style names:")
    scan("google", names, threads=5000)
    scan("cloudflare", names, threads=5000)
    scan("iterative", names, threads=5000)


if __name__ == "__main__":
    main()
