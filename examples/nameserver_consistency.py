#!/usr/bin/env python3
"""Section 5, reproduced in miniature: nameserver (in)consistency.

Uses the --all-nameservers functionality to query every authoritative
nameserver of each sampled domain, measuring per-server availability
(retries needed) and answer consistency.

Run:  python examples/nameserver_consistency.py [n_domains]
"""

import sys

from repro import build_internet
from repro.analysis import run_ns_consistency_study
from repro.workloads import DomainCorpus


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    internet = build_internet(wire_mode="sampled")
    corpus = DomainCorpus()

    print(f"querying all nameservers of {count} domains (up to 10 tries each) ...")
    findings = run_ns_consistency_study(
        internet, corpus.base_domains(count), retries=9, threads=2000
    )
    data = findings.to_json()

    print("\n-- availability --------------------------------------------")
    print(f"  resolvable domains:        {data['domains_resolvable']}")
    print(f"  >=2 retries on some NS:    {data['pct_needing_2plus_retries']}%"
          f"   [paper: 0.55%]")
    print(f"  all 10 retries needed:     {data['pct_needing_max_retries']}%"
          f"   [paper: 0.01%]")
    print(f"  worst-case providers:      {data['worst_case_providers']}")
    print(f"  worst-case TLDs:           {data['worst_case_tlds']}")

    print("\n-- response consistency -------------------------------------")
    print(f"  consistent A-record sets:  {data['pct_consistent_answers']}%"
          f"   [paper: >99.99%]")


if __name__ == "__main__":
    main()
