#!/usr/bin/env python3
"""Survey servers for open recursion (a classic ZDNS-style study).

Probes a mix of simulated hosts — public resolvers, authoritative
nameservers, and dark space — with recursion-desired queries and
classifies each (open / closed / non-recursive / unresponsive).

Run:  python examples/open_resolver_survey.py
"""

import random
from collections import Counter

from repro import build_internet
from repro.core import ResolverConfig, SelectiveCache, SimDriver
from repro.modules import ModuleContext, get_module
from repro.net import SimUDPSocket, SourceIPPool


def main() -> None:
    internet = build_internet(wire_mode="sampled")
    synth = internet.synth

    targets = [internet.google_ip, internet.cloudflare_ip]
    targets += [synth.provider_ns_ip(i, 0) for i in range(6)]
    targets += [synth.tld_ns_ip("com", 0), synth.tld_ns_ip("de", 0)]
    targets += ["203.0.113.77", "203.0.113.78"]  # dark space

    module = get_module("OPENRESOLVER")
    module.probe_name = "www.d5553806-2.net"
    context = ModuleContext(
        mode="external",
        resolver_ips=[internet.google_ip],
        cache=SelectiveCache(),
        config=ResolverConfig(retries=1, external_timeout=1.5),
        rng=random.Random(1),
    )
    driver = SimDriver(internet.network)
    socket = SimUDPSocket(internet.network, SourceIPPool())

    tally = Counter()
    print(f"probing {len(targets)} servers with RD=1 for {module.probe_name!r}:\n")
    for target in targets:
        future = internet.sim.spawn(driver.execute(module.lookup(target, context), socket))
        internet.sim.run()
        row = future.result()
        cls = row["data"]["classification"]
        tally[cls] += 1
        print(f"  {target:<16} {cls:<14} rcode={row['data']['rcode']}")

    print("\nsummary:", dict(tally))


if __name__ == "__main__":
    main()
