#!/usr/bin/env python3
"""Quickstart: single lookups against the simulated Internet.

Builds the simulated DNS universe, then performs a few lookups with the
library's simple Resolver facade — iteratively (ZDNS's own recursion)
and through the simulated public resolvers.

Run:  python examples/quickstart.py
"""

import json

from repro import build_internet
from repro.core import Resolver
from repro.dnslib import RRType, name_from_ipv4_ptr


def main() -> None:
    internet = build_internet()

    # -- iterative resolution with the full lookup chain exposed --------
    resolver = Resolver(internet, mode="iterative", record_trace=True)
    result = resolver.lookup("www.d4215845-1.xyz", RRType.A)
    print(f"A     {result.name}: {result.status}")
    for record in result.answers:
        print(f"      {record.to_text()}")
    print(f"      ({result.queries_sent} queries, {len(result.trace)} trace steps)")

    # -- the same name through the Google-like public resolver ----------
    google = Resolver(internet, mode="google")
    result = google.lookup("www.d4215845-1.xyz", RRType.A)
    print(f"A     via {result.resolver}: {result.status}, {len(result.answers)} answers")

    # -- MX with the friendlier mxlookup-style access --------------------
    result = resolver.lookup("d1048473-0.net", RRType.MX)
    print(f"MX    {result.name}: {result.status}")
    for record in result.answers:
        print(f"      {record.to_text()}")

    # -- reverse DNS ------------------------------------------------------
    ptr_name = name_from_ipv4_ptr("23.5.77.19")
    result = resolver.lookup(ptr_name, RRType.PTR)
    print(f"PTR   23.5.77.19: {result.status}")
    for record in result.answers:
        print(f"      {record.to_text()}")

    # -- ZDNS-style JSON output row --------------------------------------
    result = resolver.lookup("d6013855-1.com", RRType.A)
    print("\nJSON output row:")
    print(json.dumps(result.to_json(), indent=2)[:600], "...")


if __name__ == "__main__":
    main()
