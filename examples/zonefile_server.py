#!/usr/bin/env python3
"""Serve a user-supplied zone file and query it with the toolkit.

Parses a master-format zone, serves it authoritatively over a real UDP
socket on loopback, and scans it with the live driver — useful as a
template for testing real deployments against known-good zone data.

Run:  python examples/zonefile_server.py
"""

from repro.core import ExternalMachine, LiveDriver, ResolverConfig
from repro.dnslib import RRType, parse_zone
from repro.ecosystem.staticzone import StaticZoneServer
from repro.net import UDPServer, UDPTransport

ZONE_TEXT = """\
$ORIGIN demo.test.
$TTL 300
@       IN SOA ns1.demo.test. hostmaster.demo.test. 2026070601 7200 900 1209600 300
@       IN NS  ns1
ns1     IN A   127.0.0.1
@       IN A   192.0.2.80
@       IN MX  10 mail
mail    IN A   192.0.2.25
www     IN CNAME @
api     IN A   192.0.2.81
@       IN TXT "v=spf1 mx -all"
@       IN CAA 0 issue "letsencrypt.org"
"""


def main() -> None:
    zone = parse_zone(ZONE_TEXT)
    server = StaticZoneServer(zone)
    print(f"zone {zone.origin.to_text()} with {len(zone.records)} records")

    with UDPServer(server.live_handler) as udp_server:
        host, port = udp_server.address
        print(f"authoritative server on {host}:{port}\n")
        with UDPTransport() as transport:
            driver = LiveDriver(transport, port_override=port)
            config = ResolverConfig(external_timeout=2.0, retries=1)
            for qname, qtype in [
                ("demo.test", RRType.A),
                ("www.demo.test", RRType.A),
                ("demo.test", RRType.MX),
                ("demo.test", RRType.CAA),
                ("missing.demo.test", RRType.A),
            ]:
                machine = ExternalMachine([host], config)
                result = driver.execute(machine.resolve(qname, qtype))
                answers = "; ".join(r.to_text() for r in result.answers) or "-"
                print(f"  {qname:<22} {qtype.name:<4} -> {str(result.status):<9} {answers}")


if __name__ == "__main__":
    main()
