#!/usr/bin/env python3
"""One-command wall-clock regression gate for the simulator hot paths.

Runs the suite from ``benchmarks/bench_wallclock_hotpath.py`` and
compares every metric against the ``baseline`` section of
``BENCH_hotpath.json`` at the repo root.  Throughput metrics (``*_per_s``)
may not drop more than the tolerance; wall-time metrics (``*_wall_s``)
may not grow more than the tolerance.  Exits non-zero on regression.

Usage::

    python scripts/bench_compare.py            # run, compare, record last_run
    python scripts/bench_compare.py --check    # run + compare, write nothing
    python scripts/bench_compare.py --rebaseline   # accept current numbers
    python scripts/bench_compare.py --profile full # longer, steadier run
    python scripts/bench_compare.py --repeat 3     # more noise rejection

Each invocation runs the suite ``--repeat`` times and keeps the
per-metric best (min wall time, max throughput) — single samples on
shared hosts can be inflated 2x by CPU steal.  Because that best-of-N
is biased toward the fastest window the host happened to offer,
``--rebaseline`` stores the baseline *derated by 20%*: the gate then
flags sustained regressions rather than the difference between one
lucky window and one unlucky one.  (``last_run`` is always the raw
measurement.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_hotpath.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

#: Allowed relative slack before a metric counts as a regression.  Wall
#: clock on shared machines is noisy; 10% catches real slowdowns while
#: tolerating scheduler jitter.
TOLERANCE = 0.10

#: Suite passes per invocation.  Shared/virtualised hosts suffer CPU
#: steal that inflates individual wall-clock samples by 2x or more; the
#: per-metric best across repeats (min wall time, max throughput) is the
#: standard low-noise estimator and is what gets compared and stored.
REPEATS = 3

#: Fraction by which a freshly measured baseline is relaxed before
#: being stored.  Empirically, best-of-N invocations minutes apart
#: still differ by up to ~17% after host-speed normalisation (bursty
#: steal the calibration cannot see); 20% makes the stored reference a
#: "typical window" figure, so the 10% gate trips on sustained code
#: regressions, not on which window the baseline was captured in.
BASELINE_DERATE = 0.20

#: Per-metric tolerance overrides.  The telemetry subsystem's acceptance
#: gate: with metrics disabled (the default), the end-to-end wire-mode
#: scan must stay within 3% of the stored baseline — instrumentation on
#: the hot path may not tax scans where nobody is watching.  3% is
#: strict against the raw tolerance but workable because the stored
#: baseline is already derated 20% toward a typical-window figure.
METRIC_TOLERANCE = {"e2e_wire_wall_s": 0.03}


def derate(results: dict, fraction: float) -> dict:
    """Relax every numeric metric by ``fraction`` (slower wall, lower
    throughput) — applied when storing a baseline, since best-of-N is
    biased toward the host's fastest window."""
    adjusted = dict(results)
    for key, value in results.items():
        if key.startswith("_") or key == "profile" or not isinstance(value, (int, float)):
            continue
        if key.endswith("_wall_s"):
            adjusted[key] = round(value * (1 + fraction), 3)
        else:
            adjusted[key] = round(value / (1 + fraction))
    return adjusted


def merge_best(runs: list[dict]) -> dict:
    """Per-metric best across repeated suite runs.

    Wall-time metrics take the minimum, throughput metrics the maximum;
    non-numeric entries (fingerprints, counters, profile name) come from
    the first run after asserting the deterministic ones never vary.
    """
    merged = dict(runs[0])
    for run in runs[1:]:
        for key, value in run.items():
            if key == "_host_spin_per_s":
                merged[key] = max(merged[key], value)
            elif key.startswith("_"):
                if value != merged.get(key):
                    raise AssertionError(f"non-deterministic metric {key!r} across repeats")
            elif isinstance(value, (int, float)):
                if key.endswith("_wall_s"):
                    merged[key] = min(merged[key], value)
                else:
                    merged[key] = max(merged[key], value)
    return merged


def compare(baseline: dict, current: dict, tolerance: float = TOLERANCE) -> list[str]:
    """Human-readable regression descriptions (empty = gate passes).

    When both sides carry a ``_host_spin_per_s`` calibration, metrics
    are normalised by it before comparison: the benchmarks and the spin
    loop are all single-threaded pure Python, so host load (CPU steal,
    co-tenants) slows them by the same factor, and the normalised
    values compare code speed rather than host weather.
    """
    failures = []
    load = 1.0
    base_spin = baseline.get("_host_spin_per_s")
    now_spin = current.get("_host_spin_per_s")
    if base_spin and now_spin:
        load = now_spin / base_spin
    for key, base in baseline.items():
        if key.startswith("_") or key == "profile":
            continue
        now = current.get(key)
        if now is None or not isinstance(base, (int, float)):
            continue
        limit = min(tolerance, METRIC_TOLERANCE.get(key, tolerance))
        note = "" if load == 1.0 else f", host-speed x{load:.2f}"
        if key.endswith("_wall_s"):
            adjusted = now * load
            if adjusted > base * (1 + limit):
                failures.append(
                    f"{key}: {now:.3f}s vs baseline {base:.3f}s "
                    f"(+{(adjusted / base - 1) * 100:.1f}%{note}, limit +{limit * 100:.0f}%)"
                )
        else:
            adjusted = now / load
            if adjusted < base * (1 - limit):
                failures.append(
                    f"{key}: {now:,.0f}/s vs baseline {base:,.0f}/s "
                    f"({(adjusted / base - 1) * 100:.1f}%{note}, limit -{limit * 100:.0f}%)"
                )
    return failures


def obs_delta(profile: str, repeats: int) -> tuple[float, float, float]:
    """A/B the e2e wire-mode scan with telemetry off vs on.

    Runs the two configurations interleaved (so host-speed drift hits
    both equally), takes the per-side best, and asserts the virtual-time
    fingerprints match — enabling metrics must never change *what* a
    scan measures, only how observable it is.  Returns
    ``(off_wall, on_wall, relative_delta)``.
    """
    from bench_wallclock_hotpath import PROFILES, bench_e2e

    sizes = PROFILES[profile]
    threads, lookups = sizes["e2e_threads"], sizes["e2e_lookups"]
    off_walls, on_walls = [], []
    fingerprints = set()
    for i in range(repeats):
        print(f"obs A/B pass {i + 1}/{repeats} (off, then on) ...")
        off = bench_e2e(threads, lookups, "always")
        on = bench_e2e(threads, lookups, "always", observe=True)
        off_walls.append(off["e2e_wire_wall_s"])
        on_walls.append(on["e2e_wire_obs_wall_s"])
        fingerprints.add(json.dumps(off["_e2e_wire_fingerprint"], sort_keys=True))
        fingerprints.add(json.dumps(on["_e2e_wire_obs_fingerprint"], sort_keys=True))
    if len(fingerprints) != 1:
        raise AssertionError("telemetry changed the scan's virtual-time results")
    best_off, best_on = min(off_walls), min(on_walls)
    return best_off, best_on, best_on / best_off - 1


def chaos_smoke(profile: str, repeats: int) -> int:
    """The fault-injection acceptance gate, in three steps:

    1. A/B the e2e wire-mode scan with no injector vs an attached
       *empty* fault plan — the virtual-time fingerprints must be
       identical (the disabled fault path may not change a scan) and
       the wall-clock cost must stay within the e2e wire tolerance;
    2. run the same scan under the bundled ``moderate`` plan — it must
       terminate with every lookup classified and faults actually fired;
    3. replay the chaotic scan — same seed, same plan must reproduce
       the same fingerprint and activation counts.

    Returns a process exit status (0 = gate passes).
    """
    import io

    from bench_wallclock_hotpath import BENCH_SEED, PROFILES, _timed

    from repro.ecosystem import EcosystemParams, build_internet
    from repro.faults import FaultInjector, FaultPlan, plan_by_name
    from repro.framework import ScanConfig, ScanRunner
    from repro.workloads import DomainCorpus

    sizes = PROFILES[profile]
    threads, lookups = sizes["e2e_threads"], sizes["e2e_lookups"]
    names = list(DomainCorpus().fqdns(lookups, start=0))

    def scan(plan, chaos_seed=BENCH_SEED):
        internet = build_internet(
            params=EcosystemParams(seed=BENCH_SEED), wire_mode="always"
        )
        injector = None
        if plan is not None:
            injector = FaultInjector(plan, sim=internet.sim, seed=chaos_seed)
            injector.attach(internet.network)
        config = ScanConfig(
            module="A",
            mode="iterative",
            threads=threads,
            source_prefix=28,
            cache_size=600_000,
            seed=BENCH_SEED,
        )
        runner = ScanRunner(internet, config)
        wall, report = _timed(lambda: runner.run(names))
        stats = report.stats
        fingerprint = {
            "total": stats.total,
            "successes": stats.successes,
            "statuses": dict(sorted(stats.by_status.items())),
            "queries_sent": stats.queries_sent,
            "duration_virtual_s": round(stats.duration, 6),
        }
        return wall, fingerprint, injector

    limit = METRIC_TOLERANCE["e2e_wire_wall_s"]
    off_walls, empty_walls = [], []
    for i in range(repeats):
        print(f"chaos A/B pass {i + 1}/{repeats} (no injector, then empty plan) ...")
        off_wall, off_print, _ = scan(None)
        empty_wall, empty_print, injector = scan(FaultPlan.empty())
        if empty_print != off_print:
            print("FAIL: an empty fault plan changed the scan's virtual-time results")
            return 1
        if injector.total_activations() != 0:
            print("FAIL: empty plan recorded activations")
            return 1
        off_walls.append(off_wall)
        empty_walls.append(empty_wall)
    best_off, best_empty = min(off_walls), min(empty_walls)
    delta = best_empty / best_off - 1
    print(f"  e2e wire, no injector       {best_off:>8.3f} s")
    print(f"  e2e wire, empty plan        {best_empty:>8.3f} s")
    print(f"  injector-attached overhead  {delta * 100:>+7.1f} %  (limit +{limit * 100:.0f}%)")
    if delta > limit:
        print("FAIL: attached-but-empty injector exceeds the e2e wire tolerance")
        return 1

    print("chaos run (moderate plan) ...")
    chaos_wall, chaos_print, chaos_injector = scan(plan_by_name("moderate"))
    if chaos_print["total"] != lookups or sum(chaos_print["statuses"].values()) != lookups:
        print("FAIL: chaotic scan lost lookups or left them unclassified")
        return 1
    if chaos_injector.total_activations() == 0:
        print("FAIL: moderate plan fired no faults")
        return 1
    _, replay_print, replay_injector = scan(plan_by_name("moderate"))
    if replay_print != chaos_print or replay_injector.counts != chaos_injector.counts:
        print("FAIL: chaotic scan did not replay deterministically")
        return 1
    print(
        f"  chaos scan                  {chaos_wall:>8.3f} s  "
        f"(successes {chaos_print['successes']}/{lookups}, "
        f"{chaos_injector.total_activations()} fault activations)"
    )
    print("\nOK — fault injection gate passes")
    return 0


def mp_smoke(profile: str, repeats: int) -> int:
    """The multi-process executor's acceptance gate, in three steps:

    1. the same scan at ``--processes 1`` and ``--processes 4`` (fixed
       seed, fixed logical shard count) must merge to byte-identical
       output — even after a stable sort, which the check subsumes —
       with identical fleet stats;
    2. the merged metrics registry must equal the sum of the per-shard
       registries: every shard is re-run in-process through the same
       worker code path, its registry dumped, and the dumps folded with
       the same per-shard relabelling the parent applies (the run-shape
       ``mp.*`` topology gauges are excluded — they describe the
       topology, not the scan);
    3. the observed 4-process speedup is reported (informational: on a
       host with fewer than 4 cores there is nothing to assert).

    ``repeats`` is ignored — every comparison here is deterministic.
    Returns a process exit status (0 = gate passes).
    """
    import io

    from bench_wallclock_hotpath import BENCH_SEED, PROFILES, _timed

    from repro.framework import ScanConfig, run_parallel_scan
    from repro.framework.io import shard as shard_names
    from repro.framework.parallel import (
        _plan_tasks,
        _relabel_for,
        _run_task,
        _ShardSpec,
    )
    from repro.obs import MetricsRegistry
    from repro.workloads import DomainCorpus

    sizes = PROFILES[profile]
    threads, lookups = sizes["e2e_threads"], sizes["e2e_lookups"]
    names = list(DomainCorpus().fqdns(lookups, start=0))
    shards = 8
    config = ScanConfig(
        module="A",
        mode="iterative",
        threads=threads,
        source_prefix=28,
        cache_size=600_000,
        seed=BENCH_SEED,
    )

    def run(processes):
        out = io.StringIO()
        wall, report = _timed(
            lambda: run_parallel_scan(
                names,
                config,
                processes=processes,
                out=out,
                shards=shards,
                collect_metrics=True,
                add_timestamp=False,
            )
        )
        return wall, out.getvalue(), report

    def scan_metrics(report):
        return {
            key: value
            for key, value in report.metrics.items()
            if not key.startswith("mp.")
        }

    print(f"mp smoke: {lookups} names, {shards} logical shards ...")
    wall_1, out_1, report_1 = run(1)
    wall_4, out_4, report_4 = run(4)

    if sorted(out_1.splitlines()) != sorted(out_4.splitlines()):
        print("FAIL: 1-process and 4-process outputs differ even as row sets")
        return 1
    if out_1 != out_4:
        print("FAIL: merged output order depends on the process count")
        return 1
    if report_1.stats.to_json() != report_4.stats.to_json():
        print("FAIL: merged fleet stats depend on the process count")
        return 1
    if scan_metrics(report_1) != scan_metrics(report_4):
        print("FAIL: merged metrics depend on the process count")
        return 1

    class _Collector:
        """Stands in for the worker's pipe end: keeps messages local."""

        def __init__(self):
            self.payload = None

        def send(self, message):
            if message[0] == "task_done":
                self.payload = message[2]

    print("mp smoke: re-running each task in-process to check the metric sums ...")
    spec = _ShardSpec(
        names=names,
        shards=shards,
        config=config,
        collect_metrics=True,
        add_timestamp=False,
    )
    shard_sizes = [
        len(list(shard_names(names, shards, index))) for index in range(shards)
    ]
    expected = MetricsRegistry(enabled=True)
    for task in _plan_tasks(shard_sizes, None):
        collector = _Collector()
        _run_task(task, spec, collector)
        expected.merge_dump(
            collector.payload["metrics"], rename=_relabel_for(task.shard)
        )
    if expected.snapshot() != scan_metrics(report_4):
        print("FAIL: merged registry != sum of the per-task registries")
        return 1

    speedup = wall_1 / wall_4 if wall_4 else 0.0
    cores = os.cpu_count() or 1
    print(f"  1-process fleet wall        {wall_1:>8.3f} s")
    print(f"  4-process fleet wall        {wall_4:>8.3f} s")
    print(f"  speedup                     {speedup:>8.2f} x  ({cores} host core(s))")
    print(f"  rows merged                 {report_4.rows_written:>8,}")
    print("\nOK — multi-process executor gate passes "
          "(byte-identical merge, metrics sum exactly)")
    return 0


def http_smoke(profile: str, repeats: int) -> int:
    """The live control plane's acceptance gate, in four steps:

    1. run a 4-process scan with a :class:`FleetView` + HTTP server
       attached while a poller thread scrapes ``/status.json`` every
       ~25 ms — every poll must parse, and the fleet ``done`` counter
       must advance monotonically with at least one mid-run value
       strictly between 0 and the total (live progress, not just a
       final snapshot);
    2. mid-run ``/metrics`` scrapes must pass the strict Prometheus
       exposition parser;
    3. per-shard progress must be visible: some poll must report a
       shard row with ``0 < done``;
    4. the scan's merged output must be byte-identical to the same
       scan with no server attached — watching may not change the scan.

    ``repeats`` is ignored — one scan provides every assertion.
    Returns a process exit status (0 = gate passes).
    """
    import io
    import json as json_module
    import threading
    import urllib.request

    from bench_wallclock_hotpath import BENCH_SEED, PROFILES, _timed

    from repro.framework import FleetView, ScanConfig, run_parallel_scan
    from repro.obs import parse_prometheus
    from repro.obs.server import TelemetryServer
    from repro.workloads import DomainCorpus

    sizes = PROFILES[profile]
    threads, lookups = sizes["e2e_threads"], sizes["e2e_lookups"]
    names = list(DomainCorpus().fqdns(lookups, start=0))
    config = ScanConfig(
        module="A",
        mode="iterative",
        threads=threads,
        source_prefix=28,
        cache_size=600_000,
        seed=BENCH_SEED,
    )

    def run(fleet=None):
        out = io.StringIO()
        wall, _report = _timed(
            lambda: run_parallel_scan(
                names,
                config,
                processes=4,
                out=out,
                shards=8,
                add_timestamp=False,
                fleet_view=fleet,
            )
        )
        return wall, out.getvalue()

    fleet = FleetView(run_info={"module": "A", "gate": "http-smoke"})
    server = TelemetryServer(status=fleet.status_snapshot, metrics=fleet.prometheus).start()
    print(f"http smoke: scanning {lookups} names behind {server.url} ...")

    done_series: list[int] = []
    shard_progress_seen = [False]
    metrics_scrapes = [0]
    poll_errors: list[str] = []
    stop = threading.Event()

    def poller():
        while not stop.is_set():
            try:
                with urllib.request.urlopen(f"{server.url}/status.json", timeout=5) as r:
                    snapshot = json_module.loads(r.read())
                done_series.append(snapshot["fleet"]["done"])
                if any(row["done"] > 0 for row in snapshot["shards"]):
                    shard_progress_seen[0] = True
                with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as r:
                    parse_prometheus(r.read().decode("utf-8"))
                metrics_scrapes[0] += 1
            except Exception as error:  # noqa: BLE001 - gate reports, not raises
                poll_errors.append(repr(error))
            stop.wait(0.025)

    thread = threading.Thread(target=poller, daemon=True)
    thread.start()
    try:
        wall_on, out_on = run(fleet)
    finally:
        stop.set()
        thread.join(timeout=10)
        server.stop()

    status = 0
    if poll_errors:
        print(f"FAIL: {len(poll_errors)} scrape error(s), first: {poll_errors[0]}")
        status = 1
    if done_series != sorted(done_series):
        print("FAIL: fleet done counter went backwards between polls")
        status = 1
    mid_run = [d for d in done_series if 0 < d < lookups]
    if not mid_run:
        print(f"FAIL: no mid-run progress observed across {len(done_series)} polls "
              "(server only ever saw 0 or the final total)")
        status = 1
    if not shard_progress_seen[0]:
        print("FAIL: no poll ever showed per-shard progress")
        status = 1
    if metrics_scrapes[0] == 0:
        print("FAIL: /metrics was never scraped successfully")
        status = 1

    print("http smoke: re-running with no server attached ...")
    wall_off, out_off = run()
    if out_on != out_off:
        print("FAIL: output differs between server-on and server-off runs")
        status = 1

    print(f"  polls answered              {len(done_series):>8,}  "
          f"({len(mid_run)} mid-run, {metrics_scrapes[0]} /metrics scrapes)")
    print(f"  wall, server on             {wall_on:>8.3f} s")
    print(f"  wall, server off            {wall_off:>8.3f} s")
    if status == 0:
        print("\nOK — control plane gate passes "
              "(live monotonic progress, valid exposition text, byte-identical output)")
    return status


def resume_smoke(profile: str, repeats: int) -> int:
    """The durability gate (checkpoint/resume + work stealing), in four:

    1. an uninterrupted 4-process CLI scan with checkpointing enabled —
       the byte-identity reference (checkpoint telemetry schedules
       virtual-clock timers, so it is part of the scan configuration
       and the reference must carry it too);
    2. the same scan SIGKILLed mid-flight: ``REPRO_TEST_CRASH`` makes
       the parent kill itself right after journaling its 10th task
       record (of 16), exactly like ``kill -9`` on a real scan box;
    3. ``--resume`` from the checkpoint directory: the merged rows,
       metrics dump, spans file and stderr stats summary must be
       *byte-identical* to step 1;
    4. work-proportionality: with 10/16 tasks already journalled, the
       resume may not cost more than 60% of the from-scratch wall
       clock (on this single-core host wall tracks work directly).

    ``repeats`` is ignored — determinism does the work.  Returns a
    process exit status (0 = gate passes).
    """
    import subprocess
    import tempfile
    import time

    from bench_wallclock_hotpath import BENCH_SEED, PROFILES

    from repro.workloads import DomainCorpus

    sizes = PROFILES[profile]
    threads, lookups = sizes["e2e_threads"], sizes["e2e_lookups"]
    shards = 4
    # 4 segments per shard -> 16 tasks; the kill lands after task 10.
    shard_size = -(-lookups // shards)
    quantum = -(-shard_size // 4)
    kill_after = 10

    def run(workdir, tag, *, checkpoint=None, resume=None, crash=None):
        out = workdir / f"{tag}.jsonl"
        prom = workdir / f"{tag}.prom"
        spans = workdir / f"{tag}.spans"
        argv = [
            sys.executable, "-m", "repro.framework.cli", "A",
            "-f", str(workdir / "names.txt"), "-o", str(out),
            "--processes", "4", "--mp-shards", str(shards),
            "--steal-quantum", str(quantum), "--no-timestamps",
            "--seed", str(BENCH_SEED), "--threads", str(threads),
            "--metrics-out", str(prom), "--spans-file", str(spans),
        ]
        if checkpoint is not None:
            argv += ["--checkpoint-dir", str(checkpoint)]
        if resume is not None:
            argv += ["--resume", str(resume)]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.pop("REPRO_TEST_CRASH", None)
        if crash is not None:
            env["REPRO_TEST_CRASH"] = crash
        started = time.perf_counter()
        proc = subprocess.run(
            argv, env=env, capture_output=True, text=True, timeout=600,
        )
        wall = time.perf_counter() - started
        summary = [
            line for line in proc.stderr.splitlines() if line.startswith("{")
        ]
        return proc, wall, {
            "rows": out, "prom": prom, "spans": spans,
            "summary": summary[-1] if summary else None,
        }

    with tempfile.TemporaryDirectory(prefix="resume-smoke-") as tmp:
        workdir = Path(tmp)
        (workdir / "names.txt").write_text(
            "\n".join(DomainCorpus().fqdns(lookups, start=0)) + "\n"
        )

        print(f"resume smoke: {lookups} names, {shards} shards x 4 segments, "
              f"uninterrupted reference ...")
        base_proc, base_wall, base = run(
            workdir, "base", checkpoint=workdir / "ck-base"
        )
        if base_proc.returncode != 0:
            print(f"FAIL: reference scan exited {base_proc.returncode}:\n"
                  f"{base_proc.stderr[-2000:]}")
            return 1

        print(f"resume smoke: killing the parent after task {kill_after}/16 ...")
        ck = workdir / "ck"
        crash_proc, _, _ = run(
            workdir, "int", checkpoint=ck,
            crash=f"parent:after:{kill_after}",
        )
        if crash_proc.returncode != -9:
            print(f"FAIL: crash run exited {crash_proc.returncode}, expected "
                  "SIGKILL (-9) — the kill never fired")
            return 1

        print("resume smoke: resuming from the checkpoint ...")
        resumed_proc, resumed_wall, resumed = run(workdir, "res", resume=ck)
        if resumed_proc.returncode != 0:
            print(f"FAIL: resume exited {resumed_proc.returncode}:\n"
                  f"{resumed_proc.stderr[-2000:]}")
            return 1

        status = 0
        for artefact in ("rows", "prom", "spans"):
            if resumed[artefact].read_bytes() != base[artefact].read_bytes():
                print(f"FAIL: resumed {artefact} differ from the "
                      "uninterrupted reference")
                status = 1
        if resumed["summary"] != base["summary"]:
            print("FAIL: resumed stats summary differs from the reference")
            status = 1

        ratio = resumed_wall / base_wall if base_wall else 1.0
        print(f"  from-scratch wall           {base_wall:>8.3f} s")
        print(f"  resumed wall                {resumed_wall:>8.3f} s")
        print(f"  ratio                       {ratio:>8.2f}    (limit 0.60)")
        if ratio >= 0.60:
            print("FAIL: resume is not work-proportional — it cost "
                  f"{ratio * 100:.0f}% of a from-scratch run")
            status = 1

    if status == 0:
        print("\nOK — durability gate passes "
              "(byte-identical resume, work-proportional wall clock)")
    return status


def oracle_smoke(profile: str, repeats: int) -> int:
    """The differential oracle's acceptance gate, in two halves:

    1. **Agreement** — a sweep over generated names under every cache
       policy × eviction × fault-plan combination in the reduced
       matrix must produce zero divergences (cold and warm lookups are
       both checked, plus the cold-vs-warm self-agreement invariant);
    2. **Teeth** — a deliberately planted cache bug (the answer table
       serves a fabricated address) must be caught as a divergence and
       the shrinker must reduce it to a minimal (name, seed, plan)
       triple whose fault plan is empty.

    A sweep that cannot catch a planted bug proves nothing by passing.
    ``repeats`` is ignored — the sweep is deterministic.  Returns a
    process exit status (0 = gate passes).
    """
    from bench_wallclock_hotpath import _timed

    from repro.oracle import DifferentialConfig, run_differential
    from repro.oracle.selfcheck import planted_bug_canary

    names = 80 if profile == "full" else 40
    config = DifferentialConfig(
        seed=2022,
        names=names,
        policies=("selective", "all"),
        evictions=("random", "lru"),
        fault_plans=(None, "moderate"),
    )
    combos = (
        len(config.policies) * len(config.evictions) * len(config.fault_plans)
    )
    print(f"oracle smoke: {names} names x {combos} combinations ...")
    wall, report = _timed(lambda: run_differential(config))
    print(
        f"  sweep                       {report.checks:>8,} checks over "
        f"{report.names_checked:,} names in {wall:.1f} s"
    )
    print(
        f"  agreed / inconclusive       {report.agreed:>8,} / {report.inconclusive:,}"
    )
    if report.divergences:
        for divergence in report.divergences[:5]:
            print(f"FAIL: divergence on {divergence.name!r}: {divergence.reason}")
        print(f"FAIL: {len(report.divergences)} divergence(s) — resolver disagrees "
              "with the reference oracle")
        return 1

    print("oracle smoke: planting a lying answer cache to prove the gate has teeth ...")
    divergence, minimal = planted_bug_canary(seed=2022)
    if divergence is None:
        print("FAIL: planted cache bug was NOT caught — the oracle has no teeth")
        return 1
    plan_ok = minimal is not None and minimal.reproduced and (
        minimal.plan is None or len(minimal.plan) == 0
    )
    if not plan_ok:
        print("FAIL: planted bug caught but not shrunk to a fault-free minimal case")
        return 1
    print(
        f"  canary caught               {divergence.name!r} ({divergence.reason})"
    )
    print(
        f"  shrunk to                   name={minimal.name!r} seed={minimal.seed} "
        f"plan={'-' if minimal.plan is None else minimal.plan.name}"
    )
    print("\nOK — differential oracle gate passes "
          "(zero divergences, planted bug caught and shrunk)")
    return 0


def codec_smoke(profile: str, repeats: int, write: bool = True) -> int:
    """The wire-codec rewrite's acceptance gate, in three steps:

    1. **Throughput floors** — the hot-path codec microbenchmark,
       host-speed normalised against the stored ``baseline`` section,
       must show decode at ≥5x and encode at ≥2x the pre-rewrite
       figures (the flat-scan/lazy/memo rewrite's headline claim);
    2. **Behaviour fingerprints** — fig1/fig2/table2-shaped smoke scans
       run under ``wire_mode="always"`` (every packet crosses the
       codec) must produce virtual-time fingerprints identical to the
       ``wire_mode="never"`` runs of the same shapes *and* to the
       pre-rewrite reference stored under ``codec.smoke_fingerprints``;
    3. **End-to-end** — the e2e wire-mode scan must reproduce the
       baseline's virtual-time fingerprint byte-identically and beat
       its wall-clock after host-speed normalisation.

    With ``write`` true, the measured ``codec_*_per_s`` figures (and,
    on first run, the smoke-fingerprint reference) are recorded under
    the ``codec`` section of ``BENCH_hotpath.json``.

    Returns a process exit status (0 = gate passes).
    """
    import bench_codec
    from bench_wallclock_hotpath import _HostSpeed, bench_codec as bench_codec_hotpath
    from bench_wallclock_hotpath import PROFILES, bench_e2e

    stored = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    baseline = stored.get("baseline", {})
    base_spin = baseline.get("_host_spin_per_s")
    base_decode = baseline.get("codec_decode_per_s")
    base_encode = baseline.get("codec_encode_per_s")
    if not (base_spin and base_decode and base_encode):
        print("FAIL: no stored baseline codec numbers to compare against")
        return 1

    # 1) throughput floors, spin-calibrated against the baseline's host window
    host = _HostSpeed()
    runs = []
    iters = PROFILES[profile]["codec_iters"]
    for i in range(repeats):
        print(f"codec floors pass {i + 1}/{repeats} ...")
        host.sample()
        runs.append(bench_codec_hotpath(iters))
        host.sample()
    decode = max(run["codec_decode_per_s"] for run in runs)
    encode = max(run["codec_encode_per_s"] for run in runs)
    load = host.median() / base_spin
    decode_x = decode / load / base_decode
    encode_x = encode / load / base_encode
    print(f"  decode                      {decode:>10,} msgs/s  "
          f"({decode_x:.1f}x baseline, host-speed x{load:.2f}, floor 5x)")
    print(f"  encode                      {encode:>10,} msgs/s  "
          f"({encode_x:.1f}x baseline, floor 2x)")
    status = 0
    if decode_x < 5.0:
        print("FAIL: codec decode below the 5x floor")
        status = 1
    if encode_x < 2.0:
        print("FAIL: codec encode below the 2x floor")
        status = 1

    print("codec corpus microbenchmarks ...")
    corpus = bench_codec.bench_codec_corpus(profile if profile in bench_codec.PROFILES else "check")
    print("\n".join(bench_codec.metric_lines(corpus)))

    # 2) behaviour fingerprints across the experiment shapes
    reference = stored.get("codec", {}).get("smoke_fingerprints")
    fresh_reference = False
    for shape in bench_codec.SMOKE_SHAPES:
        print(f"smoke fingerprint: {shape} (wire_mode always vs never) ...")
        always = bench_codec.smoke_fingerprint(shape, "always")
        never = bench_codec.smoke_fingerprint(shape, "never")
        if always != never:
            print(f"FAIL: {shape} smoke scan resolves differently once packets "
                  "cross the codec")
            status = 1
            continue
        if reference is None:
            continue
        if always != reference.get(shape):
            print(f"FAIL: {shape} smoke fingerprint drifted from the stored "
                  f"reference: {always} != {reference.get(shape)}")
            status = 1
    if reference is None and status == 0:
        print("note: no stored smoke-fingerprint reference; storing this run's")
        reference = bench_codec.smoke_fingerprints("always")
        fresh_reference = True

    # 3) e2e wire mode: identical results, faster wall clock
    sizes = PROFILES[profile]
    e2e_walls = []
    for i in range(repeats):
        print(f"e2e wire pass {i + 1}/{repeats} ...")
        host.sample()
        e2e = bench_e2e(sizes["e2e_threads"], sizes["e2e_lookups"], "always")
        if e2e["_e2e_wire_fingerprint"] != baseline.get("_e2e_wire_fingerprint"):
            print("FAIL: e2e wire-mode fingerprint differs from the baseline "
                  "(the rewrite changed what a scan resolves)")
            status = 1
        e2e_walls.append(e2e["e2e_wire_wall_s"])
    load = host.median() / base_spin
    wall = min(e2e_walls)
    adjusted = wall * load
    base_wall = baseline.get("e2e_wire_wall_s", 0.0)
    speedup = base_wall / adjusted if adjusted else 0.0
    print(f"  e2e wire wall               {wall:>8.3f} s  "
          f"(baseline {base_wall:.3f} s, {speedup:.2f}x normalised)")
    if base_wall and adjusted >= base_wall:
        print("FAIL: e2e wire-mode scan is not faster than the pre-rewrite baseline")
        status = 1

    if write and status == 0:
        section = stored.setdefault("codec", {})
        section.update(corpus)
        section["codec_decode_per_s"] = decode
        section["codec_encode_per_s"] = encode
        section["_host_spin_per_s"] = round(host.median())
        if fresh_reference or "smoke_fingerprints" not in section:
            section["smoke_fingerprints"] = reference
        RESULTS_PATH.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
        print(f"wrote {RESULTS_PATH.relative_to(REPO_ROOT)}")

    if status == 0:
        print("\nOK — wire codec gate passes "
              "(floors met, fingerprints identical across wire modes and vs reference)")
    return status


def service_smoke(profile: str, repeats: int) -> int:
    """The resolver service daemon's acceptance gate, in four steps:

    1. **Replay** — a fixed-seed 60-virtual-minute soak (diurnal load,
       a mid-run upstream blackout, two zone deltas, sampled oracle
       shadow checks) run twice must produce byte-identical reports:
       same determinism digest, same event log, same counters;
    2. **Correctness** — the sampled shadow checks against the
       differential oracle must record zero divergences even though
       zones mutate mid-run;
    3. **Serve-stale** — during the blackout, eligible availability
       (names the service had served before, per RFC 8767) must hold
       at >= 99%, with stale answers actually doing the serving, and
       the counters must stay internally consistent;
    4. **Revalidation cost** — the same soak under ``flush``
       revalidation must cost strictly more upstream queries than
       ``incremental``; the observed ratio is reported (this is the
       figure EXPERIMENTS.md records).

    ``repeats`` is ignored — determinism does the work.  Returns a
    process exit status (0 = gate passes).
    """
    from bench_wallclock_hotpath import BENCH_SEED, _timed

    from repro.service import ServiceConfig, run_service

    catalog, qps = (200, 8.0) if profile == "full" else (80, 4.0)

    def soak(revalidation):
        return ServiceConfig(
            seed=BENCH_SEED,
            duration=3600.0,
            catalog_size=catalog,
            base_qps=qps,
            workers=8,
            blackouts=((1200.0, 2400.0),),
            deltas=2,
            delta_times=(900.0, 2700.0),  # outside the blackout
            revalidation=revalidation,
            oracle_check_every=5,
            prefetch_min_hits=2,
            status_interval=300.0,
        )

    print(f"service smoke: 60-minute soak, {catalog} names at {qps:g} q/s, "
          "blackout 1200-2400s, 2 zone deltas ...")
    wall_a, report_a = _timed(lambda: run_service(soak("incremental")))
    wall_b, report_b = _timed(lambda: run_service(soak("incremental")))

    status = 0
    if report_a.determinism_digest() != report_b.determinism_digest():
        print("FAIL: two identical soaks produced different reports "
              f"({report_a.determinism_digest()[:16]} != "
              f"{report_b.determinism_digest()[:16]})")
        status = 1
    if report_a.events != report_b.events:
        print("FAIL: the deterministic event logs differ between replays")
        status = 1

    oracle = report_a.oracle
    if not oracle.get("checked"):
        print("FAIL: the soak never shadow-checked an upstream resolution")
        status = 1
    if oracle.get("divergences") or report_a.divergences:
        print(f"FAIL: {oracle.get('divergences')} oracle divergence(s) — the "
              "service served answers the reference universe disowns")
        for row in report_a.divergences[:3]:
            print(f"  {row}")
        status = 1

    counters = report_a.counters
    availability = report_a.availability
    eligible = availability["eligible_availability"]
    if availability["eligible"] < 100:
        print(f"FAIL: only {availability['eligible']} eligible blackout queries "
              "— the soak never meaningfully exercised serve-stale")
        status = 1
    if eligible is None or eligible < 0.99:
        print(f"FAIL: eligible availability {eligible} under the blackout "
              "(RFC 8767 floor is 0.99)")
        status = 1
    if counters["stale_answers_served"] == 0:
        print("FAIL: the blackout was survived without serving anything stale")
        status = 1

    # counter consistency: every client query is accounted for exactly
    # once, the per-path breakdown covers every served query (warm,
    # revalidate, and successful prefetch jobs share the breakdown, so
    # it may exceed ``served`` by at most their count), the cache and
    # service agree on stale traffic, and prefetch outcomes never
    # exceed what was scheduled
    served_breakdown = (
        counters["fresh_hits"] + counters["negative_hits"]
        + counters["resolved"] + counters["resolved_negative"]
        + counters["stale_answers_served"] + counters["stale_negatives_served"]
    )
    if counters["served"] + counters["failed"] != counters["queries"]:
        print("FAIL: served + failed != queries")
        status = 1
    background = (
        counters["warm_jobs"] + counters["revalidate_jobs"]
        + counters["prefetch_refreshed"]
    )
    if not (counters["served"]
            <= served_breakdown
            <= counters["served"] + background):
        print("FAIL: per-path serve counters out of bounds "
              f"({served_breakdown} vs served {counters['served']} "
              f"+ background <= {background})")
        status = 1
    if report_a.cache["stale_hits"] != (
        counters["stale_answers_served"] + counters["stale_negatives_served"]
    ):
        print("FAIL: cache stale_hits disagree with the service's stale serves")
        status = 1
    if (counters["prefetch_refreshed"] + counters["prefetch_failed"]
            > counters["prefetch_scheduled"]):
        print("FAIL: more prefetch outcomes than scheduled prefetches")
        status = 1
    if counters["deltas_published"] != 2:
        print(f"FAIL: {counters['deltas_published']} deltas published, wanted 2")
        status = 1

    print("service smoke: flush-revalidation baseline ...")
    wall_c, report_c = _timed(lambda: run_service(soak("flush")))
    queries = lambda r: r.network["udp_queries"] + r.network["tcp_queries"]  # noqa: E731
    incremental_q, flush_q = queries(report_a), queries(report_c)
    ratio = incremental_q / flush_q if flush_q else 0.0
    if incremental_q >= flush_q:
        print(f"FAIL: incremental revalidation ({incremental_q} upstream queries) "
              f"is not cheaper than full flush ({flush_q})")
        status = 1

    print(f"  queries served              {counters['served']:>8,} / "
          f"{counters['queries']:,}  ({counters['stale_answers_served']:,} stale)")
    print(f"  eligible availability       {eligible!r:>8}  (floor 0.99)")
    print(f"  oracle checks               {oracle.get('checked', 0):>8,}  "
          f"({oracle.get('divergences', 0)} divergences)")
    print(f"  upstream, incremental       {incremental_q:>8,} queries")
    print(f"  upstream, full flush        {flush_q:>8,} queries  "
          f"(incremental/flush ratio {ratio:.3f})")
    print(f"  soak wall                   {wall_a:>8.3f} s  "
          f"(replay {wall_b:.3f} s, flush {wall_c:.3f} s)")
    if status == 0:
        print("\nOK — resolver service gate passes (byte-identical replay, "
              "zero divergences, serve-stale holds the blackout)")
    return status


def dnssec_smoke(profile: str, repeats: int) -> int:
    """The DNSSEC validating path's acceptance gate, in three steps:

    1. **Determinism** — the deployment-study scan over the signed
       universe, run twice, must serialise to byte-identical JSON;
    2. **Planted vs measured** — the study's measured Secure/Insecure/
       Bogus counts must equal the zone generator's planted ground
       truth exactly (zero mismatches), and the planted anomalies must
       actually fire: a run that never sees a broken chain proves
       nothing by passing;
    3. **Off-switch no-op** — with validation off no query carries the
       DO bit, so the fig1/fig2/table2 smoke scans must reproduce the
       pre-DNSSEC fingerprints stored under ``codec.smoke_fingerprints``
       byte-for-byte.

    ``repeats`` is ignored — determinism does the work.  Returns a
    process exit status (0 = gate passes).
    """
    import bench_codec
    from bench_wallclock_hotpath import BENCH_SEED, _timed

    from repro.analysis import run_dnssec_study
    from repro.ecosystem import EcosystemParams, build_internet
    from repro.workloads import DomainCorpus

    count = 5000 if profile == "full" else 2500
    bases = list(DomainCorpus().base_domains(count))

    def study():
        internet = build_internet(params=EcosystemParams(seed=BENCH_SEED))
        return run_dnssec_study(internet, bases, threads=800, seed=BENCH_SEED)

    print(f"dnssec smoke: deployment study over {count} bases, twice ...")
    wall_a, first = _timed(study)
    wall_b, second = _timed(study)

    status = 0
    if json.dumps(first.to_json(), sort_keys=True) != json.dumps(
        second.to_json(), sort_keys=True
    ):
        print("FAIL: two identical deployment studies serialised differently")
        status = 1
    if first.mismatches:
        print(f"FAIL: {first.mismatches} lookup(s) validated differently than "
              "the zone generator planted")
        status = 1
    if first.measured["bogus"] == 0 or first.planted["bogus"] == 0:
        print("FAIL: no Bogus outcome planted or measured — the broken-chain "
              "anomalies were never exercised")
        status = 1
    for state in ("secure", "insecure", "bogus"):
        if first.measured[state] != first.planted[state]:
            print(f"FAIL: measured {state} count {first.measured[state]} != "
                  f"planted {first.planted[state]}")
            status = 1
    if not 0.0 < first.signed_fraction < 1.0:
        print(f"FAIL: implausible signed fraction {first.signed_fraction:.3f}")
        status = 1

    stored = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    reference = stored.get("codec", {}).get("smoke_fingerprints")
    if reference is None:
        print("FAIL: no stored smoke-fingerprint reference to prove the "
              "validation-off no-op against")
        status = 1
    else:
        for shape in bench_codec.SMOKE_SHAPES:
            print(f"dnssec off: {shape} smoke scan vs pre-DNSSEC reference ...")
            current = bench_codec.smoke_fingerprint(shape, "always")
            if current != reference.get(shape):
                print(f"FAIL: {shape} scan without validation drifted from the "
                      f"pre-DNSSEC reference: {current} != {reference.get(shape)}")
                status = 1

    print(f"  signed fraction             {100 * first.signed_fraction:>7.2f} %  "
          f"({first.signed_domains}/{first.existing_domains} existing bases)")
    for state in ("secure", "insecure", "bogus", "indeterminate"):
        print(f"  measured {state:<13}      {100 * first.measured_rate(state):>7.2f} %  "
              f"(planted {100 * first.planted_rate(state):.2f}%)")
    print(f"  anomalies exercised         {first.islands} islands, "
          f"{first.broken_ds} broken DS, {first.expired_sigs} expired")
    print(f"  study wall                  {wall_a:>8.3f} s  (replay {wall_b:.3f} s)")
    if status == 0:
        print("\nOK — DNSSEC gate passes (byte-identical replay, measured == "
              "planted, validation-off scans match the pre-DNSSEC reference)")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true", help="compare only; write nothing")
    parser.add_argument(
        "--rebaseline", action="store_true", help="store this run as the new baseline"
    )
    parser.add_argument("--profile", default="check", choices=("check", "full"))
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE, help="relative slack (default 0.10)"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=REPEATS,
        help=f"suite passes; per-metric best is compared (default {REPEATS})",
    )
    parser.add_argument(
        "--obs-delta",
        action="store_true",
        help="A/B the e2e wire scan with telemetry off vs on and report "
        "the overhead (skips the regular suite)",
    )
    parser.add_argument(
        "--chaos-smoke",
        action="store_true",
        help="fault-injection gate: empty plan must be free and "
        "fingerprint-identical, a moderate plan must degrade gracefully "
        "and replay deterministically (skips the regular suite)",
    )
    parser.add_argument(
        "--mp-smoke",
        action="store_true",
        help="multi-process executor gate: 1-process and 4-process runs "
        "must merge to identical bytes and the merged metrics must equal "
        "the per-shard sums (skips the regular suite)",
    )
    parser.add_argument(
        "--oracle-smoke",
        action="store_true",
        help="differential oracle gate: zero divergences over the reduced "
        "policy x eviction x fault-plan matrix, and a planted cache bug "
        "must be caught and shrunk (skips the regular suite)",
    )
    parser.add_argument(
        "--http-smoke",
        action="store_true",
        help="control-plane gate: scrape /status.json and /metrics during "
        "a 4-process scan, assert valid exposition text, monotonic live "
        "progress, and byte-identical output vs a server-off run (skips "
        "the regular suite)",
    )
    parser.add_argument(
        "--resume-smoke",
        action="store_true",
        help="durability gate: a 4-process scan is SIGKILLed mid-flight, "
        "resumed from its checkpoint journal, and must land on bytes "
        "identical to an uninterrupted run in under 60%% of the "
        "from-scratch wall clock (skips the regular suite)",
    )
    parser.add_argument(
        "--codec-smoke",
        action="store_true",
        help="wire-codec gate: decode/encode throughput floors vs the "
        "pre-rewrite baseline, fingerprint-identical smoke scans in "
        "wire vs structured mode, and an e2e wire-mode wall-clock "
        "improvement check (skips the regular suite)",
    )
    parser.add_argument(
        "--dnssec-smoke",
        action="store_true",
        help="DNSSEC gate: the signed-universe deployment study must "
        "replay byte-identically with measured outcomes equal to the "
        "planted ground truth, and validation-off scans must match the "
        "pre-DNSSEC smoke fingerprints (skips the regular suite)",
    )
    parser.add_argument(
        "--service-smoke",
        action="store_true",
        help="resolver-service gate: a fixed-seed 60-virtual-minute soak "
        "with blackout and zone deltas must replay byte-identically, "
        "record zero oracle divergences, hold >=99%% eligible "
        "availability via serve-stale, and show incremental "
        "revalidation beating a full flush (skips the regular suite)",
    )
    args = parser.parse_args(argv)

    if args.dnssec_smoke:
        return dnssec_smoke(args.profile, max(1, args.repeat))

    if args.service_smoke:
        return service_smoke(args.profile, max(1, args.repeat))

    if args.resume_smoke:
        return resume_smoke(args.profile, max(1, args.repeat))

    if args.http_smoke:
        return http_smoke(args.profile, max(1, args.repeat))

    if args.codec_smoke:
        return codec_smoke(args.profile, max(1, args.repeat), write=not args.check)

    if args.oracle_smoke:
        return oracle_smoke(args.profile, max(1, args.repeat))

    if args.mp_smoke:
        return mp_smoke(args.profile, max(1, args.repeat))

    if args.chaos_smoke:
        return chaos_smoke(args.profile, max(1, args.repeat))

    if args.obs_delta:
        off, on, delta = obs_delta(args.profile, max(1, args.repeat))
        print(f"  e2e wire, telemetry off     {off:>8.3f} s")
        print(f"  e2e wire, telemetry on      {on:>8.3f} s")
        print(f"  metrics-on overhead         {delta * 100:>+7.1f} %")
        return 0

    from bench_wallclock_hotpath import metric_lines, run_suite

    stored = {}
    if RESULTS_PATH.exists():
        stored = json.loads(RESULTS_PATH.read_text())

    repeats = max(1, args.repeat)
    runs = []
    for i in range(repeats):
        print(f"running hot-path suite (profile={args.profile}, pass {i + 1}/{repeats}) ...")
        runs.append(run_suite(args.profile))
    current = merge_best(runs)
    print("\n".join(metric_lines(current)))

    baseline = stored.get("baseline")
    status = 0
    if baseline and not args.rebaseline:
        if baseline.get("profile") != current["profile"]:
            print(
                f"note: baseline profile {baseline.get('profile')!r} != "
                f"{current['profile']!r}; skipping comparison"
            )
        else:
            failures = compare(baseline, current, args.tolerance)
            if failures:
                print("\nREGRESSION — hot paths slower than baseline:")
                for failure in failures:
                    print(f"  {failure}")
                status = 1
            else:
                print("\nOK — within tolerance of baseline")
    elif not baseline:
        print("\nno baseline stored yet; use --rebaseline to create one")

    if not args.check:
        if args.rebaseline or not baseline:
            stored["baseline"] = derate(current, BASELINE_DERATE)
        stored["last_run"] = current
        RESULTS_PATH.write_text(json.dumps(stored, indent=2, sort_keys=True) + "\n")
        print(f"wrote {RESULTS_PATH.relative_to(REPO_ROOT)}")

    # the behaviour gates ride along with the default run: the codec
    # gate re-reads BENCH_hotpath.json itself, so it must come after
    # the write above
    print("\ncodec smoke gate ...")
    status |= codec_smoke(args.profile, 1, write=not args.check)
    print("\noracle smoke gate ...")
    status |= oracle_smoke(args.profile, 1)
    print("\ncontrol-plane smoke gate ...")
    status |= http_smoke(args.profile, 1)
    print("\ndurability smoke gate ...")
    status |= resume_smoke(args.profile, 1)
    print("\nresolver service smoke gate ...")
    status |= service_smoke(args.profile, 1)
    print("\ndnssec smoke gate ...")
    status |= dnssec_smoke(args.profile, 1)
    print("\nobs selfcheck ...")
    try:
        from repro.obs.selfcheck import main as obs_selfcheck

        status |= obs_selfcheck()
    except AssertionError as error:
        print(f"FAIL: obs selfcheck assertion: {error}")
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
