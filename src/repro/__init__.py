"""repro — a Python reproduction of "ZDNS: A Fast DNS Toolkit for
Internet Measurement" (IMC 2022).

Public API surface:

* :mod:`repro.dnslib` — the DNS wire-protocol library (names, messages,
  65+ record types, EDNS0).
* :mod:`repro.core` — the ZDNS library: iterative caching resolver with
  exposed lookup chains, external-resolver mode, drivers.
* :mod:`repro.framework` — scan orchestration and the ``pyzdns`` CLI.
* :mod:`repro.modules` — composable scan modules (raw records, alookup,
  mxlookup, spf, dmarc, bind.version, CAA, all-nameservers).
* :mod:`repro.net` — the simulated network substrate plus a real UDP
  transport.
* :mod:`repro.ecosystem` — the simulated global DNS the experiments run
  against.
* :mod:`repro.workloads` — deterministic corpus / IPv4 generators.
* :mod:`repro.baselines` — dig / Unbound / MassDNS comparison models.
* :mod:`repro.analysis` — the Section 5 and 6 case studies.
"""

from .core import (
    IterativeMachine,
    LookupResult,
    Resolver,
    ResolverConfig,
    SelectiveCache,
    Status,
)
from .ecosystem import EcosystemParams, build_internet
from .framework import ScanConfig, ScanRunner, run_scan
from .modules import available_modules, get_module

__version__ = "1.0.0"

__all__ = [
    "EcosystemParams",
    "IterativeMachine",
    "LookupResult",
    "Resolver",
    "ResolverConfig",
    "ScanConfig",
    "ScanRunner",
    "SelectiveCache",
    "Status",
    "available_modules",
    "build_internet",
    "get_module",
    "run_scan",
    "__version__",
]
