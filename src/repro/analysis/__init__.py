"""repro.analysis — the paper's two case studies as reusable analyses."""

from .caastudy import CAAFindings, run_caa_study
from .nsconsistency import NSConsistencyFindings, run_ns_consistency_study

__all__ = [
    "CAAFindings",
    "NSConsistencyFindings",
    "run_caa_study",
    "run_ns_consistency_study",
]
