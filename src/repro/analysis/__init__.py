"""repro.analysis — the paper's case studies as reusable analyses."""

from .caastudy import CAAFindings, run_caa_study
from .dnssecstudy import DNSSECFindings, expected_outcome, run_dnssec_study
from .nsconsistency import NSConsistencyFindings, run_ns_consistency_study

__all__ = [
    "CAAFindings",
    "DNSSECFindings",
    "NSConsistencyFindings",
    "expected_outcome",
    "run_caa_study",
    "run_dnssec_study",
    "run_ns_consistency_study",
]
