"""Section 6 case study: the CAA ecosystem.

Scans base domains with the CAA module and aggregates deployment,
configuration and issuer statistics, including the ccTLD blind spot the
paper highlights (nearly half of CAA holders live in ccTLDs that open
datasets skip)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..ecosystem import SimInternet, tld_class
from ..framework import ScanConfig, ScanRunner


@dataclass
class CAAFindings:
    domains_scanned: int = 0
    domains_noerror: int = 0
    caa_domains: int = 0
    caa_via_cname: int = 0
    caa_by_class: Counter = field(default_factory=Counter)
    noerror_by_class: Counter = field(default_factory=Counter)
    cctld_counter: Counter = field(default_factory=Counter)
    with_issue: int = 0
    with_issuewild: int = 0
    with_iodef: int = 0
    iodef_only: int = 0
    with_invalid_tag: int = 0
    issue_letsencrypt: int = 0
    domains_with_comodo: int = 0
    domains_with_digicert: int = 0

    @property
    def caa_rate(self) -> float:
        return self.caa_domains / max(1, self.domains_noerror)

    @property
    def cctld_share_of_caa(self) -> float:
        return self.caa_by_class["cc"] / max(1, self.caa_domains)

    @property
    def pl_share_of_cc_caa(self) -> float:
        return self.cctld_counter["pl"] / max(1, self.caa_by_class["cc"])

    @property
    def top10_cc_share(self) -> float:
        top = sum(count for _, count in self.cctld_counter.most_common(10))
        return top / max(1, self.caa_by_class["cc"])

    def cctld_rate_vs_gtld(self) -> float:
        """How much more likely a ccTLD domain is to hold CAA."""
        cc = self.caa_by_class["cc"] / max(1, self.noerror_by_class["cc"])
        gtld_noerror = self.noerror_by_class["legacy"] + self.noerror_by_class["ng"]
        gtld_caa = self.caa_by_class["legacy"] + self.caa_by_class["ng"]
        gtld = gtld_caa / max(1, gtld_noerror)
        return cc / gtld if gtld else float("inf")

    def to_json(self) -> dict:
        caa = max(1, self.caa_domains)
        return {
            "domains_scanned": self.domains_scanned,
            "domains_noerror": self.domains_noerror,
            "caa_domains": self.caa_domains,
            "caa_rate_pct": round(100 * self.caa_rate, 3),
            "cctld_share_of_caa_pct": round(100 * self.cctld_share_of_caa, 1),
            "pl_share_of_cc_caa_pct": round(100 * self.pl_share_of_cc_caa, 1),
            "top10_cc_share_pct": round(100 * self.top10_cc_share, 1),
            "via_cname": self.caa_via_cname,
            "pct_issue": round(100 * self.with_issue / caa, 2),
            "pct_issuewild": round(100 * self.with_issuewild / caa, 2),
            "pct_iodef": round(100 * self.with_iodef / caa, 2),
            "iodef_only": self.iodef_only,
            "pct_invalid_tag": round(100 * self.with_invalid_tag / caa, 3),
            "pct_issue_letsencrypt": round(
                100 * self.issue_letsencrypt / max(1, self.with_issue), 2
            ),
            "pct_domains_comodo": round(100 * self.domains_with_comodo / caa, 2),
            "pct_domains_digicert": round(100 * self.domains_with_digicert / caa, 2),
        }


def run_caa_study(
    internet: SimInternet,
    base_domains,
    threads: int = 2000,
    retries: int = 2,
    seed: int = 0,
) -> CAAFindings:
    """Scan base domains for CAA records and aggregate Section 6 stats."""
    findings = CAAFindings()

    def sink(row: dict) -> None:
        findings.domains_scanned += 1
        tld = row["name"].rsplit(".", 1)[-1]
        cls = tld_class(tld) or "legacy"
        if row["status"] != "NOERROR":
            return
        findings.domains_noerror += 1
        findings.noerror_by_class[cls] += 1
        data = row.get("data", {})
        records = data.get("records", [])
        if not records:
            return
        findings.caa_domains += 1
        findings.caa_by_class[cls] += 1
        if cls == "cc":
            findings.cctld_counter[tld] += 1
        if data.get("followed_cname"):
            findings.caa_via_cname += 1
        tags = {record["tag"] for record in records}
        has_issue = "issue" in tags
        has_wild = "issuewild" in tags
        has_iodef = "iodef" in tags
        findings.with_issue += has_issue
        findings.with_issuewild += has_wild
        findings.with_iodef += has_iodef
        if has_iodef and not has_issue and not has_wild:
            findings.iodef_only += 1
        if any(not record["valid_tag"] for record in records):
            findings.with_invalid_tag += 1
        issue_values = {r["value"] for r in records if r["tag"] == "issue"}
        all_values = {r["value"] for r in records}
        if has_issue and "letsencrypt.org" in issue_values:
            findings.issue_letsencrypt += 1
        if "comodoca.com" in all_values:
            findings.domains_with_comodo += 1
        if "digicert.com" in all_values:
            findings.domains_with_digicert += 1

    config = ScanConfig(
        module="CAALOOKUP",
        mode="iterative",
        threads=threads,
        retries=retries,
        seed=seed,
    )
    ScanRunner(internet, config, sink=sink).run(base_domains)
    return findings
