"""DNSSEC deployment case study (atlas-dnssec shape).

Scans base domains with validation on and aggregates the deployment
picture a measurement party would publish: how much of the namespace is
signed, how signing splits across TLD classes, and how often validation
ends Secure / Insecure / Bogus — with the *planted* rates (ground truth
from the zone generator) printed next to the *measured* ones, so a
validator bug shows up as a gap between the two columns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..dnslib import Name
from ..ecosystem import SimInternet, tld_class
from ..framework import ScanConfig, ScanRunner


@dataclass
class DNSSECFindings:
    domains_scanned: int = 0
    #: Scanned domains whose lookup ended in a semantic status.
    domains_semantic: int = 0
    #: Measured validation outcomes over semantic lookups.
    measured: Counter = field(default_factory=Counter)
    #: Ground-truth expectations for the same lookups (zone profiles).
    planted: Counter = field(default_factory=Counter)
    #: Measured Secure outcomes per TLD class.
    secure_by_class: Counter = field(default_factory=Counter)
    semantic_by_class: Counter = field(default_factory=Counter)
    #: Ground-truth deployment of the scanned (existing) domains.
    signed_domains: int = 0
    existing_domains: int = 0
    islands: int = 0
    broken_ds: int = 0
    expired_sigs: int = 0
    #: Lookups whose measured outcome disagrees with the planted one.
    mismatches: int = 0

    @property
    def signed_fraction(self) -> float:
        return self.signed_domains / max(1, self.existing_domains)

    def measured_rate(self, state: str) -> float:
        return self.measured[state] / max(1, self.domains_semantic)

    def planted_rate(self, state: str) -> float:
        return self.planted[state] / max(1, self.domains_semantic)

    def secure_rate_of_class(self, cls: str) -> float:
        return self.secure_by_class[cls] / max(1, self.semantic_by_class[cls])

    def to_json(self) -> dict:
        out = {
            "domains_scanned": self.domains_scanned,
            "domains_semantic": self.domains_semantic,
            "signed_fraction_pct": round(100 * self.signed_fraction, 2),
            "islands": self.islands,
            "broken_ds": self.broken_ds,
            "expired_sigs": self.expired_sigs,
            "mismatches": self.mismatches,
        }
        for state in ("secure", "insecure", "bogus", "indeterminate"):
            out[f"measured_{state}_pct"] = round(100 * self.measured_rate(state), 2)
            out[f"planted_{state}_pct"] = round(100 * self.planted_rate(state), 2)
        for cls in ("legacy", "cc", "ng"):
            out[f"secure_rate_{cls}_pct"] = round(
                100 * self.secure_rate_of_class(cls), 2
            )
        return out


def expected_outcome(synth, base: Name) -> str:
    """The validation outcome the zone profiles predict for a base
    domain (the white-box ground truth the measured column is held
    against).  A nonexistent base under a signed TLD denies with
    authenticated NSEC (Secure); under an unsigned TLD every outcome is
    Insecure."""
    tld = Name.intern(base.labels[-1:])
    if not synth.dnssec_profile(tld).signed:
        return "insecure"
    if not synth.profile(base).exists:
        return "secure"
    dp = synth.dnssec_profile(base)
    if not dp.signed or dp.island:
        return "insecure"
    if dp.broken_ds or dp.expired:
        return "bogus"
    return "secure"


def run_dnssec_study(
    internet: SimInternet,
    base_domains,
    threads: int = 2000,
    retries: int = 2,
    seed: int = 0,
) -> DNSSECFindings:
    """Scan base domains with validation on; aggregate deployment stats."""
    findings = DNSSECFindings()
    synth = internet.synth

    def sink(row: dict) -> None:
        findings.domains_scanned += 1
        base = Name.from_text(row["name"])
        profile = synth.profile(base)
        if profile.exists:
            findings.existing_domains += 1
            dp = synth.dnssec_profile(base)
            if dp.signed:
                findings.signed_domains += 1
                findings.islands += dp.island
                findings.broken_ds += dp.broken_ds
                findings.expired_sigs += dp.expired
        if row["status"] not in ("NOERROR", "NXDOMAIN"):
            return
        measured = row.get("data", {}).get("dnssec")
        if measured is None:
            return
        findings.domains_semantic += 1
        findings.measured[measured] += 1
        cls = tld_class(row["name"].rsplit(".", 1)[-1]) or "legacy"
        findings.semantic_by_class[cls] += 1
        if measured == "secure":
            findings.secure_by_class[cls] += 1
        expected = expected_outcome(synth, base)
        findings.planted[expected] += 1
        if measured != expected and measured != "indeterminate":
            findings.mismatches += 1

    config = ScanConfig(
        module="A",
        mode="iterative",
        threads=threads,
        retries=retries,
        seed=seed,
        dnssec=True,
    )
    ScanRunner(internet, config, sink=sink).run(base_domains)
    return findings


def main(argv=None) -> int:
    """``python -m repro.analysis.dnssecstudy`` — print the deployment
    table (and the full JSON with ``--json``)."""
    import argparse
    import json
    import sys

    from ..ecosystem import EcosystemParams, build_internet
    from ..workloads import DomainCorpus

    parser = argparse.ArgumentParser(prog="python -m repro.analysis.dnssecstudy")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--domains", type=int, default=2500)
    parser.add_argument("--threads", type=int, default=800)
    parser.add_argument("--json", action="store_true", help="emit raw JSON")
    args = parser.parse_args(argv)

    internet = build_internet(params=EcosystemParams(seed=args.seed))
    bases = list(DomainCorpus().base_domains(args.domains))
    findings = run_dnssec_study(
        internet, bases, threads=args.threads, seed=args.seed
    )
    if args.json:
        json.dump(findings.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 1 if findings.mismatches else 0

    print(f"domains scanned        {findings.domains_scanned}")
    print(
        f"signed fraction        {100 * findings.signed_fraction:6.2f} % "
        f"({findings.signed_domains}/{findings.existing_domains} existing)"
    )
    print(
        f"anomalies planted      {findings.islands} islands, "
        f"{findings.broken_ds} broken DS, {findings.expired_sigs} expired sigs"
    )
    for state in ("secure", "insecure", "bogus", "indeterminate"):
        print(
            f"measured {state:<13} {100 * findings.measured_rate(state):6.2f} % "
            f"(planted {100 * findings.planted_rate(state):.2f} %)"
        )
    print(f"mismatches             {findings.mismatches}")
    return 1 if findings.mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
