"""Section 5 case study: nameserver (in)consistency.

Scans domains with the all-nameservers module and aggregates the
paper's findings: availability (retries needed per nameserver, and who
is responsible for the worst cases) and response consistency across a
domain's redundant nameservers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..ecosystem import SimInternet
from ..framework import ScanConfig, ScanRunner


@dataclass
class NSConsistencyFindings:
    domains_scanned: int = 0
    domains_resolvable: int = 0
    domains_needing_2plus: int = 0
    domains_needing_max: int = 0
    inconsistent_domains: int = 0
    consistent_domains: int = 0
    worst_case_providers: Counter = field(default_factory=Counter)
    worst_case_tlds: Counter = field(default_factory=Counter)
    #: Providers/TLDs of the *severe* cases (all retries exhausted) —
    #: the population the paper attributes 31% of to namebrightdns.com.
    severe_providers: Counter = field(default_factory=Counter)
    severe_tlds: Counter = field(default_factory=Counter)

    @property
    def frac_needing_2plus(self) -> float:
        return self.domains_needing_2plus / max(1, self.domains_resolvable)

    @property
    def frac_needing_max(self) -> float:
        return self.domains_needing_max / max(1, self.domains_resolvable)

    @property
    def frac_consistent(self) -> float:
        total = self.consistent_domains + self.inconsistent_domains
        return self.consistent_domains / max(1, total)

    def to_json(self) -> dict:
        return {
            "domains_scanned": self.domains_scanned,
            "domains_resolvable": self.domains_resolvable,
            "pct_needing_2plus_retries": round(100 * self.frac_needing_2plus, 3),
            "pct_needing_max_retries": round(100 * self.frac_needing_max, 3),
            "pct_consistent_answers": round(100 * self.frac_consistent, 4),
            "worst_case_providers": dict(self.worst_case_providers.most_common(5)),
            "worst_case_tlds": dict(self.worst_case_tlds.most_common(5)),
            "severe_providers": dict(self.severe_providers.most_common(5)),
            "severe_tlds": dict(self.severe_tlds.most_common(5)),
        }


def run_ns_consistency_study(
    internet: SimInternet,
    names,
    retries: int = 9,  # "allowing up to 10 retries for each query"
    threads: int = 2000,
    seed: int = 0,
) -> NSConsistencyFindings:
    """Scan ``names`` with the ALLNS module and aggregate Section 5 stats."""
    findings = NSConsistencyFindings()
    max_tries = retries + 1

    def sink(row: dict) -> None:
        findings.domains_scanned += 1
        data = row.get("data", {})
        servers = data.get("nameservers", [])
        responding = [s for s in servers if s["status"] in ("NOERROR", "NXDOMAIN")]
        if not responding:
            return
        findings.domains_resolvable += 1
        worst = max(s["tries"] for s in servers)
        if worst >= 2:
            findings.domains_needing_2plus += 1
        if worst >= max_tries:
            findings.domains_needing_max += 1
        if worst >= 2:
            culprit = max(servers, key=lambda s: s["tries"])
            provider = ".".join(culprit["nameserver"].split(".")[1:])
            tld = row["name"].rsplit(".", 1)[-1]
            findings.worst_case_providers[provider] += 1
            findings.worst_case_tlds[tld] += 1
            if worst >= max_tries:
                findings.severe_providers[provider] += 1
                findings.severe_tlds[tld] += 1
        if data.get("consistent") is True:
            findings.consistent_domains += 1
        elif data.get("consistent") is False:
            findings.inconsistent_domains += 1

    config = ScanConfig(
        module="ALLNS",
        mode="iterative",
        threads=threads,
        retries=retries,
        seed=seed,
    )
    ScanRunner(internet, config, sink=sink).run(names)
    return findings
