"""repro.baselines — behavioural models of the tools the paper compares
against (Section 4.2): dig, Unbound, and MassDNS."""

from .dig_model import (
    DEFAULT_FORK_PROCESSES,
    DIG_BATCH_OVERHEAD,
    DIG_PROCESS_CPU,
    DigBaseline,
    DigReport,
)
from .massdns_model import (
    MASSDNS_CONCURRENCY,
    MASSDNS_RETRIES,
    MASSDNS_TIMEOUT,
    massdns_config,
    run_massdns,
)
from .unbound_model import (
    UNBOUND_CPU_PER_QUERY,
    UNBOUND_IP,
    UnboundResolver,
    install_unbound,
)

__all__ = [
    "DEFAULT_FORK_PROCESSES",
    "DIG_BATCH_OVERHEAD",
    "DIG_PROCESS_CPU",
    "DigBaseline",
    "DigReport",
    "MASSDNS_CONCURRENCY",
    "MASSDNS_RETRIES",
    "MASSDNS_TIMEOUT",
    "UNBOUND_CPU_PER_QUERY",
    "UNBOUND_IP",
    "UnboundResolver",
    "install_unbound",
    "massdns_config",
    "run_massdns",
]
