"""dig baseline (Section 4.2).

dig was never designed as a scanning engine: its batch mode performs
one trace at a time, and the practical workaround — forking one dig
process per lookup — pays process startup for every query and is
bounded by how many processes one can reasonably keep in flight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core import IterativeMachine, ExternalMachine, ResolverConfig, SelectiveCache, SimDriver
from ..core.config import ClientCostModel
from ..ecosystem import SimInternet
from ..framework.stats import ScanStats
from ..net import CPUModel, SimUDPSocket, SourceIPPool

#: CPU burned forking and exec-ing one dig process (measured digs take
#: tens of ms of setup; includes output formatting/parsing overhead).
DIG_PROCESS_CPU = 0.030

#: Extra serial overhead per batch-mode trace: dig walks the chain with
#: no cache and serialises formatting between queries.
DIG_BATCH_OVERHEAD = 1.2

#: Processes a forking harness (xargs -P style) keeps in flight.
DEFAULT_FORK_PROCESSES = 64


@dataclass
class DigReport:
    stats: ScanStats
    mode: str


class DigBaseline:
    """Runs dig-equivalent lookups on the simulated Internet."""

    def __init__(self, internet: SimInternet, seed: int = 0):
        self.internet = internet
        self.seed = seed

    def _driver(self, cpu: CPUModel) -> SimDriver:
        # dig's per-packet work is negligible next to process startup
        costs = ClientCostModel(per_send=20e-6, per_receive=20e-6)
        return SimDriver(self.internet.network, cpu=cpu, costs=costs, seed=self.seed)

    def run_batch_trace(self, names) -> DigReport:
        """``dig +trace`` in batch mode: strictly sequential, no cache."""
        sim = self.internet.sim
        cpu = CPUModel(sim, cores=24)
        driver = self._driver(cpu)
        pool = SourceIPPool(prefix_length=32)
        socket = SimUDPSocket(self.internet.network, pool)
        stats = ScanStats(threads_requested=1, threads_running=1, started_at=sim.now)
        config = ResolverConfig(retries=2)
        rng = random.Random(self.seed)

        def routine():
            for raw in names:
                # no cache: every trace restarts from the roots
                machine = IterativeMachine(
                    SelectiveCache(capacity=1, policy="none"),
                    self.internet.root_ips,
                    config,
                    rng,
                )
                result = yield from driver.execute(machine.resolve(raw, _qtype(raw)), socket)
                yield cpu.execute(DIG_PROCESS_CPU)
                yield DIG_BATCH_OVERHEAD
                stats.record(str(result.status), sim.now, result.queries_sent, result.retries_used)

        future = sim.spawn(routine())
        sim.run()
        future.result()
        return DigReport(stats=stats, mode="batch-trace")

    def run_forked(self, names, resolver_ip: str, processes: int = DEFAULT_FORK_PROCESSES) -> DigReport:
        """One dig process per lookup, ``processes`` in flight at once."""
        sim = self.internet.sim
        cpu = CPUModel(sim, cores=24)
        driver = self._driver(cpu)
        pool = SourceIPPool(prefix_length=32)
        stats = ScanStats(threads_requested=processes, threads_running=processes, started_at=sim.now)
        config = ResolverConfig(retries=2)
        rng = random.Random(self.seed)
        name_iter = iter(names)

        def worker(socket):
            while True:
                try:
                    raw = next(name_iter)
                except StopIteration:
                    socket.close()
                    return
                # fork + exec + dig startup before the query even flows
                yield cpu.execute(DIG_PROCESS_CPU)
                machine = ExternalMachine([resolver_ip], config, rng)
                result = yield from driver.execute(machine.resolve(raw, _qtype(raw)), socket)
                stats.record(str(result.status), sim.now, result.queries_sent, result.retries_used)

        futures = [
            sim.spawn(worker(SimUDPSocket(self.internet.network, pool))) for _ in range(processes)
        ]
        sim.run()
        for future in futures:
            future.result()
        return DigReport(stats=stats, mode="forked")


def _qtype(raw: str):
    from ..dnslib import RRType

    return RRType.PTR if raw.endswith(".in-addr.arpa") else RRType.A
