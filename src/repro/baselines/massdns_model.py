"""MassDNS baseline (Section 4.2 / Table 2).

MassDNS is a high-performance C stub resolver whose default behaviour
the paper found to overwhelm resolvers: it keeps an enormous number of
queries in flight, and failed queries are retried up to 50 more times,
which further overloads the target.  The result in Table 2: very high
raw successes/second, but ~35% of responses dropped or SERVFAILed.

Modelled here as the scan framework with MassDNS-shaped parameters:
tiny per-query CPU (it is C, not Go), a 10K-socket closed loop with a
short timeout, and 50 retries.
"""

from __future__ import annotations

from ..core.config import ClientCostModel
from ..ecosystem import SimInternet
from ..framework import ScanConfig, ScanReport, ScanRunner

#: MassDNS in-flight window: large enough that its offered load exceeds
#: what one scanner can extract from a public resolver, which is the
#: overload behaviour the paper cautions about.
MASSDNS_CONCURRENCY = 50_000

#: Default retry cap the paper calls out ("up to an additional 50 retries").
MASSDNS_RETRIES = 50

#: Interval before MassDNS considers a query lost.
MASSDNS_TIMEOUT = 1.0

#: Per-packet CPU for a tight C event loop.
MASSDNS_CPU = ClientCostModel(per_send=34e-6, per_receive=34e-6, per_cache_op=0.0)


def massdns_config(module: str = "A", seed: int = 0, threads: int = MASSDNS_CONCURRENCY) -> ScanConfig:
    """The ScanConfig that makes the framework behave like MassDNS."""
    return ScanConfig(
        module=module,
        mode="external",
        threads=threads,
        retries=MASSDNS_RETRIES,
        external_timeout=MASSDNS_TIMEOUT,
        costs=MASSDNS_CPU,
        cores=24,
        source_prefix=28,  # massdns users typically scan from many IPs
        retry_servfail=False,  # massdns records SERVFAIL as a final answer
        seed=seed,
    )


def run_massdns(
    internet: SimInternet,
    names,
    resolver_ip: str,
    module: str = "A",
    seed: int = 0,
    threads: int = MASSDNS_CONCURRENCY,
) -> ScanReport:
    """Run a MassDNS-shaped scan against one upstream resolver."""
    config = massdns_config(module=module, seed=seed, threads=threads)
    config.resolver_ips = [resolver_ip]
    return ScanRunner(internet, config).run(names)
