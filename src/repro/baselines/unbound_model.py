"""Unbound baseline (Table 2): a performance-tuned recursive resolver
co-located with the scanner.

Two properties matter for the comparison:

* it is substantially less CPU-efficient per query than ZDNS's
  purpose-built iterative path, and — crucially — it *shares the
  scanner's cores*, so its CPU use directly contends with ZDNS's
  routines (the paper: contention caps ZDNS at 5–10K threads);
* its cache is general-purpose, so unique-name workloads miss often
  and each miss costs a full upstream recursion.
"""

from __future__ import annotations

from ..ecosystem.publicresolver import PublicResolver
from ..ecosystem.zonegen import ZoneSynthesizer
from ..net import CPUModel, LatencyModel, LossModel

#: Loopback address the scanner queries Unbound at.
UNBOUND_IP = "127.0.0.53"

#: Per-query CPU Unbound burns on the shared cores.  Calibrated so the
#: co-located pair lands near Table 2's 4.9K A / 4.5K PTR successes/s
#: (ZDNS's own iterative path is ~1.3 ms/resolution by comparison).
UNBOUND_CPU_PER_QUERY = 3.6e-3

#: Unique-name workloads mostly miss Unbound's cache; each miss costs a
#: full upstream recursion.
UNBOUND_MISS_RATE = 0.80
UNBOUND_MISS_DELAY = 0.110


class UnboundResolver(PublicResolver):
    """A co-located Unbound: answers like a recursive resolver, but
    charges every query's CPU to the scanner's own core pool."""

    def __init__(self, synth: ZoneSynthesizer, scanner_cpu: CPUModel):
        super().__init__(synth, rate_limit_per_ip=None, capacity=1e9, max_backlog=60.0)
        self.scanner_cpu = scanner_cpu

    def handle_query(self, query, client_ip, now, protocol):
        reply = super().handle_query(query, client_ip, now, protocol)
        if reply is None:
            return None
        cpu_delay = self.scanner_cpu.occupy(UNBOUND_CPU_PER_QUERY)
        return type(reply)(reply.message, delay=reply.delay + cpu_delay)

    def _resolve(self, query):
        response, extra = super()._resolve(query)
        # colder cache than an anycast public resolver
        question = query.question
        if question is not None:
            from ..ecosystem import rand

            key = question.name.key_text()
            if rand.uniform(self.synth.params.seed, key, "unbound-cache") < UNBOUND_MISS_RATE:
                extra += UNBOUND_MISS_DELAY
        return response, extra


def install_unbound(internet, scanner_cpu: CPUModel) -> UnboundResolver:
    """Register an Unbound instance on the scanner's loopback."""
    unbound = UnboundResolver(internet.synth, scanner_cpu)
    internet.network.register_server(
        UNBOUND_IP,
        unbound,
        latency=LatencyModel(median=0.0004, sigma=0.05, floor=0.0001),  # loopback
        loss=LossModel(0.0),
    )
    return unbound
