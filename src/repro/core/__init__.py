"""repro.core — the ZDNS library: iterative caching resolution with
exposed lookup chains, external-resolver stub mode, and the drivers
that execute lookups on simulated or real networks."""

from .cache import CacheStats, Delegation, SelectiveCache
from .config import ClientCostModel, ResolverConfig
from .engine import LiveDriver, Resolver, SimDriver
from .health import ServerHealthTracker
from .machine import (
    Backoff,
    ExternalMachine,
    IterativeMachine,
    LookupResult,
    SendQuery,
)
from .status import Status, status_from_rcode
from .trace import Trace, TraceStep, message_to_json

__all__ = [
    "Backoff",
    "CacheStats",
    "ClientCostModel",
    "Delegation",
    "ExternalMachine",
    "IterativeMachine",
    "ServerHealthTracker",
    "LiveDriver",
    "LookupResult",
    "Resolver",
    "ResolverConfig",
    "SelectiveCache",
    "SendQuery",
    "SimDriver",
    "Status",
    "Trace",
    "TraceStep",
    "message_to_json",
    "status_from_rcode",
]

from .validation import (  # noqa: E402
    ValidationReport,
    in_bailiwick,
    sanitize_response,
    validate_answer_chain,
    validate_response_shape,
)

__all__ += [
    "ValidationReport",
    "in_bailiwick",
    "sanitize_response",
    "validate_answer_chain",
    "validate_response_shape",
]

from .dnssec import (  # noqa: E402
    BOGUS,
    INDETERMINATE,
    INSECURE,
    SECURE,
    SECURITY_STATES,
    Validator,
    trust_anchor_for,
)

__all__ += [
    "BOGUS",
    "INDETERMINATE",
    "INSECURE",
    "SECURE",
    "SECURITY_STATES",
    "Validator",
    "trust_anchor_for",
]
