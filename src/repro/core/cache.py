"""ZDNS's selective cache.

Section 3.4: caching leaf answers for unique-name workloads only causes
thrashing, so ZDNS caches *only* NS delegations and their glue.  The
cache here supports three policies for the ablation benchmark —
``selective`` (paper behaviour), ``all`` (also cache leaf answers,
Unbound-style) and ``none`` — and two eviction strategies: ``random``
(a hash-map eviction like the Go implementation's, whose interaction
with hot upper-layer entries produces Figure 2's cache-size
sensitivity) and ``lru``.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field

from ..dnslib import Name, ResourceRecord


@dataclass(frozen=True)
class Delegation:
    """A cached zone cut: nameserver names plus any glue addresses."""

    zone: Name
    ns_names: tuple[Name, ...]
    glue: tuple[tuple[Name, str], ...]  # (ns name, IPv4) pairs

    def addresses(self) -> list[str]:
        return [ip for _, ip in self.glue]

    def glue_for(self, ns_name: Name) -> list[str]:
        return [ip for name, ip in self.glue if name == ns_name]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    answer_hits: int = 0  # leaf-answer lookups (policy="all" only)
    answer_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate over every cache probe — delegation walks *and*
        leaf-answer lookups.  With the paper's selective policy the
        answer counters stay zero, so this remains the delegation hit
        rate; under the ``all`` ablation it now reflects the answer
        cache too (previously those probes were silently uncounted)."""
        total = self.hits + self.misses + self.answer_hits + self.answer_misses
        return (self.hits + self.answer_hits) / total if total else 0.0


class SelectiveCache:
    """Bounded delegation cache with pluggable eviction."""

    def __init__(
        self,
        capacity: int = 600_000,
        policy: str = "selective",
        eviction: str = "random",
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if policy not in ("selective", "all", "none"):
            raise ValueError(f"unknown policy {policy!r}")
        if eviction not in ("random", "lru"):
            raise ValueError(f"unknown eviction {eviction!r}")
        self.capacity = capacity
        self.policy = policy
        self.eviction = eviction
        self.stats = CacheStats()
        self._rng = random.Random(seed)
        self._delegations: OrderedDict[tuple, Delegation] = OrderedDict()
        self._keys: list[tuple] = []  # for O(1) random eviction
        self._key_pos: dict[tuple, int] = {}
        self._answers: OrderedDict[tuple, list[ResourceRecord]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._delegations) + len(self._answers)

    def publish_metrics(self, scope) -> None:
        """Publish cache statistics as registry gauges.

        ``scope`` is a :class:`repro.obs.metrics.Scope` (typically
        ``registry.scope("cache")``).  The per-probe counters stay on
        :class:`CacheStats` — `best_delegation` is the hottest cache
        path and must not pay instrument calls per probe — and are
        mirrored wholesale here at publish time.
        """
        stats = self.stats
        scope.gauge("hits").set(stats.hits)
        scope.gauge("misses").set(stats.misses)
        scope.gauge("answer_hits").set(stats.answer_hits)
        scope.gauge("answer_misses").set(stats.answer_misses)
        scope.gauge("inserts").set(stats.inserts)
        scope.gauge("evictions").set(stats.evictions)
        scope.gauge("hit_rate").set(round(stats.hit_rate, 4))
        scope.gauge("size").set(len(self))
        scope.gauge("capacity").set(self.capacity)

    # -- delegations -----------------------------------------------------

    def put_delegation(self, delegation: Delegation) -> None:
        if self.policy == "none":
            return
        key = ("ns", delegation.zone.canonical_key())
        if key not in self._delegations:
            self._register_key(key)
        self._delegations[key] = delegation
        self.stats.inserts += 1
        self._enforce_capacity()

    def get_delegation(self, zone: Name) -> Delegation | None:
        key = ("ns", zone.canonical_key())
        entry = self._delegations.get(key)
        if entry is not None and self.eviction == "lru":
            self._delegations.move_to_end(key)
        return entry

    def best_delegation(self, qname: Name) -> Delegation | None:
        """The deepest cached zone cut at or above ``qname``.

        A hit means iteration can start below the root; a total miss
        means a full walk from the root servers.

        The walk probes sliced views of ``qname``'s canonical key
        directly — one memoised key fetch, zero :class:`Name`
        constructions — instead of materialising a Name per ancestor.
        This is the hottest cache path: every lookup starts here.
        """
        key = qname.canonical_key()
        delegations = self._delegations
        lru = self.eviction == "lru"
        for i in range(len(key) + 1):
            probe = ("ns", key[i:])
            entry = delegations.get(probe)
            if entry is not None:
                if lru:
                    delegations.move_to_end(probe)
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return None

    # -- leaf answers (only with policy="all") ----------------------------

    def put_answer(self, qname: Name, qtype: int, records: list[ResourceRecord]) -> None:
        if self.policy != "all":
            return
        key = ("ans", qname.canonical_key(), int(qtype))
        if key not in self._answers:
            self._register_key(key)
        self._answers[key] = list(records)
        self.stats.inserts += 1
        self._enforce_capacity()

    def get_answer(self, qname: Name, qtype: int) -> list[ResourceRecord] | None:
        if self.policy != "all":
            return None
        key = ("ans", qname.canonical_key(), int(qtype))
        entry = self._answers.get(key)
        if entry is None:
            self.stats.answer_misses += 1
            return None
        if self.eviction == "lru":
            self._answers.move_to_end(key)
        self.stats.answer_hits += 1
        return entry

    # -- eviction ---------------------------------------------------------

    def _register_key(self, key: tuple) -> None:
        self._key_pos[key] = len(self._keys)
        self._keys.append(key)

    def _drop_key(self, key: tuple) -> None:
        position = self._key_pos.pop(key)
        last = self._keys.pop()
        if last != key:
            self._keys[position] = last
            self._key_pos[last] = position
        self._delegations.pop(key, None)
        self._answers.pop(key, None)

    def _enforce_capacity(self) -> None:
        while len(self) > self.capacity:
            if self.eviction == "random":
                victim = self._keys[self._rng.randrange(len(self._keys))]
            else:  # lru: oldest entry of the larger table
                if self._delegations and (
                    not self._answers
                    or len(self._delegations) >= len(self._answers)
                ):
                    victim = next(iter(self._delegations))
                else:
                    victim = next(iter(self._answers))
            self._drop_key(victim)
            self.stats.evictions += 1
