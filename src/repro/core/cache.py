"""ZDNS's selective cache.

Section 3.4: caching leaf answers for unique-name workloads only causes
thrashing, so ZDNS caches *only* NS delegations and their glue.  The
cache here supports three policies for the ablation benchmark —
``selective`` (paper behaviour), ``all`` (also cache leaf answers,
Unbound-style) and ``none`` — and two eviction strategies: ``random``
(a hash-map eviction like the Go implementation's, whose interaction
with hot upper-layer entries produces Figure 2's cache-size
sensitivity) and ``lru``.

Entries carry a lifetime: each insert records ``expires_at`` from the
minimum RR TTL of the cached records against the supplied virtual
clock, and a probe that finds an expired entry treats it as a miss and
drops it lazily (``CacheStats.expired`` counts those drops).  Without a
clock — the standalone/legacy construction — entries never expire.

The boundary rule is uniform across every lifetime path: at exactly
``clock() == expires_at`` an entry is dead — on the probe path, on the
``best_delegation`` walk, on the eviction path (an already-expired
victim counts as ``expired``, not ``evictions``), and in the stale
window arithmetic below.

Service-mode extensions (all inert for batch scans):

* ``stale_ttl`` — an RFC 8767 serve-stale window.  Expired leaf
  answers and negative entries are *retained* for up to ``stale_ttl``
  seconds past ``expires_at`` and readable only through the explicit
  ``get_stale_answer``/``get_stale_negative`` APIs, which a resolver
  service may consult **only after upstream resolution failed**.
  Stale reads are strictly read-only: they never refresh recency or
  lifetime, so a served-stale entry keeps ageing until a *successful*
  upstream refresh overwrites it.  Delegations are exempt — the fresh
  paths (``_probe``/``best_delegation``/``get_answer``) treat a
  stale-retained entry exactly like a miss.
* heat tracking (``track_heat=True``) — per-answer hit counts backing
  prefetch decisions: ``answer_heat`` reports (remaining TTL, hits
  since last store) so a service can refresh hot, about-to-expire
  entries.  A store resets the count: new data starts cold.
* revalidation hooks — ``invalidate_subtree(zone)`` drops every
  delegation, answer, and negative entry at/below a zone cut (the
  Janus-style incremental path after a zone delta) and ``flush()``
  drops everything (the full-flush comparison baseline); both count
  into ``CacheStats.invalidated``.
* negative entries (``put_negative``/``get_negative``) — RFC 2308
  negative caching for NXDOMAIN/NODATA outcomes, policy="all" only,
  keyed separately so they never collide with positive answers.

DNSSEC extensions (inert unless ``epoch_base`` is supplied):

* RRSIG-aware lifetimes — a cached answer whose RRset carries an RRSIG
  expires at ``min(TTL, signature expiration − now)``: serving a record
  past its signature's validity would flip a Secure answer to Bogus
  mid-TTL.  ``epoch_base`` maps the virtual clock onto the absolute
  epoch RRSIG timestamps are expressed in.
* validation state (``put_security``/``get_security``) — per-zone
  chain-of-trust outcomes plus validated DNSKEY material, stored under
  ``("sec", canonical_key)`` regardless of policy so that
  ``invalidate_subtree`` drops them together with the delegations and
  answers below a delta'd cut (a rolled key must never leave the old
  chain pinned).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from ..dnslib import Name, ResourceRecord, RRType


@dataclass(frozen=True)
class Delegation:
    """A cached zone cut: nameserver names plus any glue addresses.

    ``ttl`` is the minimum TTL over the NS and glue records the cut was
    built from (None when unknown, e.g. hand-built test fixtures —
    such delegations never expire).
    """

    zone: Name
    ns_names: tuple[Name, ...]
    glue: tuple[tuple[Name, str], ...]  # (ns name, IPv4) pairs
    ttl: int | None = None

    def addresses(self) -> list[str]:
        return [ip for _, ip in self.glue]

    def glue_for(self, ns_name: Name) -> list[str]:
        return [ip for name, ip in self.glue if name == ns_name]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    updates: int = 0  # overwrites of a live key (not counted as inserts)
    expired: int = 0  # entries dropped because their TTL ran out
    answer_hits: int = 0  # leaf-answer lookups (policy="all" only)
    answer_misses: int = 0
    stale_hits: int = 0  # expired entries served from the stale window
    invalidated: int = 0  # entries dropped by revalidation hooks

    @property
    def hit_rate(self) -> float:
        """Hit rate over every cache probe — delegation walks *and*
        leaf-answer lookups.  With the paper's selective policy the
        answer counters stay zero, so this remains the delegation hit
        rate; under the ``all`` ablation it now reflects the answer
        cache too (previously those probes were silently uncounted)."""
        total = self.hits + self.misses + self.answer_hits + self.answer_misses
        return (self.hits + self.answer_hits) / total if total else 0.0


class SelectiveCache:
    """Bounded delegation cache with pluggable eviction.

    ``clock`` is a zero-argument callable returning the current
    (virtual) time; entry lifetimes are measured against it.  ``None``
    disables expiry entirely.
    """

    def __init__(
        self,
        capacity: int = 600_000,
        policy: str = "selective",
        eviction: str = "random",
        seed: int = 0,
        clock: Callable[[], float] | None = None,
        stale_ttl: float | None = None,
        track_heat: bool = False,
        epoch_base: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if policy not in ("selective", "all", "none"):
            raise ValueError(f"unknown policy {policy!r}")
        if eviction not in ("random", "lru"):
            raise ValueError(f"unknown eviction {eviction!r}")
        if stale_ttl is not None and stale_ttl <= 0:
            raise ValueError("stale_ttl must be positive (or None to disable)")
        if stale_ttl is not None and clock is None:
            raise ValueError("stale_ttl needs a clock")
        if epoch_base is not None and clock is None:
            raise ValueError("epoch_base needs a clock")
        self.capacity = capacity
        self.policy = policy
        self.eviction = eviction
        self.stale_ttl = stale_ttl
        #: Absolute epoch the virtual clock's zero maps to.  Set (by
        #: DNSSEC-enabled runs) it activates RRSIG-aware answer
        #: lifetimes; None keeps the pre-DNSSEC behaviour exactly.
        self.epoch_base = epoch_base
        self.stats = CacheStats()
        self._rng = random.Random(seed)
        self._clock = clock
        #: Per-key hit counts since last store (prefetch heat); None
        #: keeps the tracking entirely off the batch-scan hot path.
        self._heat: dict[tuple, int] | None = {} if track_heat else None
        #: One table for delegations *and* leaf answers, in one recency
        #: order: keys are ("ns", canonical_key) or ("ans",
        #: canonical_key, qtype), values are (payload, expires_at|None).
        #: A single OrderedDict means "lru" eviction removes the
        #: globally least-recent entry, not the oldest of whichever
        #: table happens to be larger.
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._keys: list[tuple] = []  # for O(1) random eviction
        self._key_pos: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def publish_metrics(self, scope) -> None:
        """Publish cache statistics as registry gauges.

        ``scope`` is a :class:`repro.obs.metrics.Scope` (typically
        ``registry.scope("cache")``).  The per-probe counters stay on
        :class:`CacheStats` — `best_delegation` is the hottest cache
        path and must not pay instrument calls per probe — and are
        mirrored wholesale here at publish time.
        """
        stats = self.stats
        scope.gauge("hits").set(stats.hits)
        scope.gauge("misses").set(stats.misses)
        scope.gauge("answer_hits").set(stats.answer_hits)
        scope.gauge("answer_misses").set(stats.answer_misses)
        scope.gauge("inserts").set(stats.inserts)
        scope.gauge("updates").set(stats.updates)
        scope.gauge("expired").set(stats.expired)
        scope.gauge("evictions").set(stats.evictions)
        scope.gauge("stale_hits").set(stats.stale_hits)
        scope.gauge("invalidated").set(stats.invalidated)
        scope.gauge("hit_rate").set(round(stats.hit_rate, 4))
        scope.gauge("size").set(len(self))
        scope.gauge("capacity").set(self.capacity)

    # -- shared entry plumbing --------------------------------------------

    def _store(self, key: tuple, value, ttl: int | None) -> None:
        expires = None
        if self._clock is not None and ttl is not None:
            expires = self._clock() + ttl
        entries = self._entries
        if key in entries:
            entries[key] = (value, expires)
            # an overwrite refreshes recency; capacity is unchanged
            entries.move_to_end(key)
            self.stats.updates += 1
            if self._heat is not None:
                self._heat[key] = 0  # fresh data starts cold
            return
        self._register_key(key)
        entries[key] = (value, expires)
        self.stats.inserts += 1
        self._enforce_capacity()

    def _probe(self, key: tuple):
        """The live payload at ``key``, or None.  An expired entry is
        indistinguishable from a miss — dropped on the spot, unless a
        leaf entry sits inside the serve-stale window, in which case it
        is retained (still a miss here) for ``get_stale_*``."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        value, expires = entry
        if expires is not None and self._clock() >= expires:
            if (
                self.stale_ttl is not None
                and key[0] != "ns"
                and self._clock() < expires + self.stale_ttl
            ):
                return None
            self._drop_key(key)
            self.stats.expired += 1
            return None
        if self.eviction == "lru":
            self._entries.move_to_end(key)
        return value

    def _stale_probe(self, key: tuple) -> tuple | None:
        """An expired-but-within-stale-cap payload as ``(value, age)``,
        or None.  Read-only: no recency refresh, no lifetime extension —
        serving stale must never make an entry *younger* (the upstream
        refresh path is the only way back to freshness).  A probe past
        the cap finalises the entry: dropped and counted ``expired``."""
        if self.stale_ttl is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            return None
        value, expires = entry
        if expires is None:
            return None
        now = self._clock()
        if now < expires:
            return None  # still fresh: belongs to the normal path
        if now >= expires + self.stale_ttl:
            self._drop_key(key)
            self.stats.expired += 1
            return None
        return value, now - expires

    # -- delegations -----------------------------------------------------

    def put_delegation(self, delegation: Delegation) -> None:
        if self.policy == "none":
            return
        key = ("ns", delegation.zone.canonical_key())
        self._store(key, delegation, delegation.ttl)

    def get_delegation(self, zone: Name) -> Delegation | None:
        return self._probe(("ns", zone.canonical_key()))

    def best_delegation(self, qname: Name) -> Delegation | None:
        """The deepest cached zone cut at or above ``qname``.

        A hit means iteration can start below the root; a total miss
        means a full walk from the root servers.  An expired cut is
        dropped and the walk continues to shallower ancestors.

        The walk probes sliced views of ``qname``'s canonical key
        directly — one memoised key fetch, zero :class:`Name`
        constructions — instead of materialising a Name per ancestor.
        This is the hottest cache path: every lookup starts here.
        """
        key = qname.canonical_key()
        entries = self._entries
        lru = self.eviction == "lru"
        clock = self._clock
        for i in range(len(key) + 1):
            probe = ("ns", key[i:])
            entry = entries.get(probe)
            if entry is None:
                continue
            value, expires = entry
            if expires is not None and clock() >= expires:
                self._drop_key(probe)
                self.stats.expired += 1
                continue
            if lru:
                entries.move_to_end(probe)
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        return None

    # -- leaf answers (only with policy="all") ----------------------------

    def put_answer(self, qname: Name, qtype: int, records: list[ResourceRecord]) -> None:
        if self.policy != "all":
            return
        key = ("ans", qname.canonical_key(), int(qtype))
        ttl = None
        for record in records:
            if ttl is None or record.ttl < ttl:
                ttl = record.ttl
        if self.epoch_base is not None:
            # A signed RRset is only servable while its signature is
            # valid: clamp the lifetime to the earliest RRSIG expiry.
            now_epoch = self.epoch_base + self._clock()
            for record in records:
                if int(record.rrtype) == int(RRType.RRSIG):
                    remaining = record.rdata.expiration - now_epoch
                    if ttl is None or remaining < ttl:
                        ttl = remaining
            if ttl is not None and ttl <= 0:
                return  # signature already expired: never cacheable
        self._store(key, list(records), ttl)

    def get_answer(self, qname: Name, qtype: int) -> list[ResourceRecord] | None:
        if self.policy != "all":
            return None
        key = ("ans", qname.canonical_key(), int(qtype))
        value = self._probe(key)
        if value is None:
            self.stats.answer_misses += 1
            return None
        self.stats.answer_hits += 1
        heat = self._heat
        if heat is not None:
            heat[key] = heat.get(key, 0) + 1
        return value

    # -- negative entries (RFC 2308, policy="all" only) --------------------

    def put_negative(self, qname: Name, qtype: int, status: str, ttl: int | None) -> None:
        """Cache an NXDOMAIN/NODATA outcome under its own key space."""
        if self.policy != "all":
            return
        self._store(("neg", qname.canonical_key(), int(qtype)), str(status), ttl)

    def get_negative(self, qname: Name, qtype: int) -> str | None:
        """The cached negative status for a question, or None."""
        if self.policy != "all":
            return None
        value = self._probe(("neg", qname.canonical_key(), int(qtype)))
        if value is None:
            self.stats.answer_misses += 1
            return None
        self.stats.answer_hits += 1
        return value

    # -- DNSSEC validation state -------------------------------------------

    def epoch_now(self) -> float:
        """Absolute DNSSEC time: ``epoch_base`` plus the virtual clock
        (zero when neither is configured)."""
        base = self.epoch_base or 0
        return base + (self._clock() if self._clock is not None else 0.0)

    def put_security(self, zone: Name, status: str, key: bytes, ttl: int | None) -> None:
        """Cache a zone's validated chain-of-trust outcome plus its
        validated DNSKEY material (empty for non-secure zones).  Stored
        regardless of policy — this is resolver validation state, not a
        leaf answer — and keyed ``("sec", canonical_key)`` so subtree
        invalidation drops it along with everything below the cut."""
        self._store(("sec", zone.canonical_key()), (str(status), bytes(key)), ttl)

    def get_security(self, zone: Name) -> tuple[str, bytes] | None:
        """The cached (status, key) validation outcome for a zone."""
        return self._probe(("sec", zone.canonical_key()))

    # -- serve-stale (RFC 8767) and prefetch state -------------------------

    def get_stale_answer(self, qname: Name, qtype: int) -> tuple[list[ResourceRecord], float] | None:
        """An expired answer still inside the stale window, as
        ``(records, age_past_expiry)``.  Only meaningful after upstream
        resolution failed — the caller enforces RFC 8767's "only on
        failure" rule; the cache enforces the bounded lifetime."""
        out = self._stale_probe(("ans", qname.canonical_key(), int(qtype)))
        if out is None:
            return None
        self.stats.stale_hits += 1
        return out

    def get_stale_negative(self, qname: Name, qtype: int) -> tuple[str, float] | None:
        """The stale-window counterpart of :meth:`get_negative`."""
        out = self._stale_probe(("neg", qname.canonical_key(), int(qtype)))
        if out is None:
            return None
        self.stats.stale_hits += 1
        return out

    def answer_heat(self, qname: Name, qtype: int) -> tuple[float, int] | None:
        """Prefetch introspection: ``(remaining_ttl, hits since last
        store)`` for a cached positive answer, or None when absent or
        never-expiring.  Stale-retained entries report ``remaining <=
        0`` — prefetch must only refresh *live* entries, so callers gate
        on ``0 < remaining``.  Pure read: no stats, no recency."""
        key = ("ans", qname.canonical_key(), int(qtype))
        entry = self._entries.get(key)
        if entry is None:
            return None
        _, expires = entry
        if expires is None:
            return None
        hits = self._heat.get(key, 0) if self._heat is not None else 0
        return expires - self._clock(), hits

    # -- revalidation hooks ------------------------------------------------

    def invalidate_subtree(self, zone: Name) -> int:
        """Drop every delegation, answer, negative, and validation
        entry at or below ``zone`` — the incremental (Janus-style) revalidation
        path after a zone delta.  Canonical keys are label tuples, so
        the suffix test aligns on label boundaries by construction.
        Returns the number of entries dropped (``stats.invalidated``)."""
        suffix = zone.canonical_key()
        n = len(suffix)
        if n == 0:
            return self.flush()
        victims = [key for key in self._keys if key[1][-n:] == suffix]
        for key in victims:
            self._drop_key(key)
        self.stats.invalidated += len(victims)
        return len(victims)

    def flush(self) -> int:
        """Drop everything — the full-flush revalidation baseline."""
        count = len(self._entries)
        self._entries.clear()
        self._keys.clear()
        self._key_pos.clear()
        if self._heat is not None:
            self._heat.clear()
        self.stats.invalidated += count
        return count

    # -- eviction ---------------------------------------------------------

    def _register_key(self, key: tuple) -> None:
        self._key_pos[key] = len(self._keys)
        self._keys.append(key)

    def _drop_key(self, key: tuple) -> None:
        position = self._key_pos.pop(key)
        last = self._keys.pop()
        if last != key:
            self._keys[position] = last
            self._key_pos[last] = position
        self._entries.pop(key, None)
        if self._heat is not None:
            self._heat.pop(key, None)

    def _enforce_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            if self.eviction == "random":
                victim = self._keys[self._rng.randrange(len(self._keys))]
            else:  # lru: the globally least-recently-touched entry
                victim = next(iter(self._entries))
            _, expires = self._entries[victim]
            self._drop_key(victim)
            if expires is not None and self._clock() >= expires:
                # the victim was already dead when evicted: same
                # boundary rule (>= at exactly expires_at) as the probe
                # path, and the same stats classification — an expiry,
                # not a capacity casualty
                self.stats.expired += 1
            else:
                self.stats.evictions += 1
