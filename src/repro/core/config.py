"""Resolver configuration knobs (the CLI flags of Section 3.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class ResolverConfig:
    """Tunable lookup behaviour shared by iterative and external modes."""

    #: Per-query timeout when talking to authoritative servers.
    iteration_timeout: float = 2.0
    #: Per-query timeout when talking to an external recursive resolver.
    external_timeout: float = 3.0
    #: Extra attempts after the first (ZDNS ``--retries``).
    retries: int = 2
    #: Hard cap on queries per lookup (guards referral loops).
    max_queries: int = 64
    #: Referral depth per owner name.
    max_referrals: int = 10
    #: CNAME chain hops to follow (RFC 8659-style chasing).
    max_cname_chase: int = 10
    #: Recursion depth for glueless NS resolution.
    max_glueless_depth: int = 4
    #: Retry over TCP when a UDP response comes back truncated.
    tcp_on_truncated: bool = True
    #: Retry external lookups that return SERVFAIL/REFUSED (ZDNS does;
    #: MassDNS records them as final answers).
    retry_servfail: bool = True
    #: Reject structurally bogus responses (wrong question echoed, not
    #: a response) instead of interpreting them.
    validate_responses: bool = True
    #: Also strip out-of-bailiwick records (poisoning defence).  Off by
    #: default here because the simulated registries attach cross-zone
    #: glue as a performance simplification; turn on against servers
    #: that keep glue in-bailiwick.
    strict_bailiwick: bool = False
    #: Record full response JSON in trace steps (Appendix C output).
    record_trace_results: bool = False
    #: Assemble per-query TraceStep rows at all.  The scan runner turns
    #: this off when no output sink will consume rows — lookup behaviour
    #: is identical, only the bookkeeping is skipped.
    collect_trace: bool = True
    #: A :class:`repro.obs.spans.SpanTracer` (or None).  When set, the
    #: machines wrap every resolution step — delegation walk, cache
    #: probe, query attempt, retry, timeout — in parent/child spans on
    #: the tracer's clock.  None (the default) costs one attribute read
    #: per lookup step.
    tracer: Any = None
    #: Exponential backoff with decorrelated jitter between retry
    #: attempts: the first pause draws uniform from
    #: ``[backoff_base, 3*backoff_base]`` and each subsequent pause from
    #: ``[backoff_base, 3*previous]``, capped at :attr:`backoff_cap`
    #: (the AWS "decorrelated jitter" schedule).  ``0.0`` (the default)
    #: disables backoff entirely — no delays, no RNG draws — so default
    #: scans replay byte-identically to pre-backoff builds.
    backoff_base: float = 0.0
    #: Upper bound on one backoff pause, seconds.
    backoff_cap: float = 10.0
    #: DNSSEC validation (iterative mode).  When on, every query is
    #: sent with EDNS DO, answers collect their RRSIGs, and after each
    #: lookup the machine walks the chain of trust from the root and
    #: attaches a security status (secure/insecure/bogus/indeterminate)
    #: to the result.  Off (the default) is byte-identical to a
    #: pre-DNSSEC build: no DO bit, no signed material on the wire.
    dnssec: bool = False
    #: Root trust anchor: the DS-style digest of the root zone's
    #: DNSKEY.  None means trust-on-first-use (accept whatever root
    #: DNSKEY arrives) — fine in simulation, where the runner normally
    #: pins the real anchor derived from the zone synthesiser.
    trust_anchor: bytes | None = None
    #: A :class:`repro.core.health.ServerHealthTracker` (or None).  When
    #: set, the iterative machine records per-server successes/failures
    #: and orders each layer's candidate servers healthy-first, shedding
    #: load away from blacked-out or storming servers (§3's
    #: load-balancing, made failure-aware).  None costs one attribute
    #: read per layer.
    health: Any = None


@dataclass
class ClientCostModel:
    """CPU cost the scanning client pays per operation, in seconds.

    Calibrated so 24 cores saturate near the paper's observed ~95K
    queries/second (Section 4.1): roughly 250 us of client CPU per
    query round trip, split between send and receive work.
    """

    per_send: float = 125e-6
    per_receive: float = 125e-6
    #: One-time CPU per lookup: question construction, result encoding.
    per_lookup: float = 0.0
    #: Extra CPU per iterative step: cache lookups/insertions.
    per_cache_op: float = 35e-6
    #: Cost of creating+destroying a socket per query when the
    #: socket-reuse optimisation is disabled (ablation): socket/bind/
    #: close syscalls plus kernel ephemeral-port allocation and fd
    #: teardown, which get expensive with tens of thousands of fds
    #: churning ("exorbitantly expensive", Section 3.4).
    per_socket_setup: float = 900e-6

    @classmethod
    def for_iterative(cls) -> "ClientCostModel":
        """Iterative resolution pays referral parsing and cache
        maintenance on *every* query it sends, so its per-packet cost is
        higher than stub mode's.  Calibrated so a 24-core scanner with
        ~2.3 queries per warm-cache A resolution saturates near the
        paper's ~18K iterative resolutions/s (Table 2) — and so that
        throughput scales with queries-per-lookup, which is what makes
        cache-size effects visible (Figure 2)."""
        return cls(per_send=280e-6, per_receive=280e-6)
