"""DNSSEC chain-of-trust validation for the iterative resolver.

The validator runs as a post-pass over a finished lookup (RFC 4035
section 4 shape, simplified to the synthetic universe's single-key
zones): it walks the chain of trust from the root trust anchor down to
each answer RRset's signer, fetching DS/DNSKEY RRsets through the same
sans-IO machine that produced the answer, and classifies the lookup as

* ``secure`` — every answer RRset verifies under an unbroken chain,
* ``insecure`` — the chain ends at a proven unsigned delegation (an
  authenticated NSEC denial of DS, or an island of trust whose parent
  never published a DS),
* ``bogus`` — a broken chain: DS/DNSKEY mismatch, failed or expired
  signature, or signed-zone data arriving without its RRSIGs,
* ``indeterminate`` — validation could not complete (query budget
  exhausted, chain fetches timed out).

Per-zone outcomes (and the validated DNSKEY material) are memoised in
the shared cache under ``("sec", zone)`` keys, so warm lookups
revalidate from cache without re-walking the chain — and so a zone
delta's ``invalidate_subtree`` drops the memo together with the stale
delegations below the cut.

The crypto primitives are the synthetic hash-signature scheme from
:mod:`repro.ecosystem.dnssec`; the *state machine* here is the part the
paper's toolkit would run against real RSA/ECDSA material.
"""

from __future__ import annotations

from ..dnslib import Name, RRType
from ..ecosystem.dnssec import DNSKEY_TTL, ds_digest, ds_matches, verify_rrsig
from .status import Status

#: Every RRset verified under an unbroken chain from the trust anchor.
SECURE = "secure"
#: The chain ends at a proven unsigned delegation.
INSECURE = "insecure"
#: Broken chain: bad DS, failed/expired signature, or stripped RRSIGs.
BOGUS = "bogus"
#: Validation could not complete.
INDETERMINATE = "indeterminate"

SECURITY_STATES = (SECURE, INSECURE, BOGUS, INDETERMINATE)

#: Internal zone-walk outcome: the DS probe proved the name is not a
#: zone cut at all (nodata NSEC without the NS type bit, or the name
#: does not exist) — the enclosing zone's status carries through.
_TRANSPARENT = "transparent"

#: Aggregation severity: one bogus RRset poisons the lookup, one
#: incomplete check degrades it, one insecure RRset caps it.
_SEVERITY = {SECURE: 0, INSECURE: 1, INDETERMINATE: 2, BOGUS: 3}

_NSEC = int(RRType.NSEC)
_RRSIG = int(RRType.RRSIG)
_DNSKEY = int(RRType.DNSKEY)
_DS = int(RRType.DS)
_NS = int(RRType.NS)


def aggregate(outcomes) -> str:
    """Fold per-RRset outcomes into one lookup-level status."""
    worst = SECURE
    for outcome in outcomes:
        if _SEVERITY[outcome] > _SEVERITY[worst]:
            worst = outcome
    return worst


class Validator:
    """One chain-of-trust walk over one finished lookup.

    Drives sub-resolutions (DS/DNSKEY fetches) through the owning
    :class:`IterativeMachine`'s ``_resolve_once`` against the lookup's
    own query budget, so validation cost is bounded by the same
    ``max_queries`` cap as resolution itself.
    """

    def __init__(self, machine):
        self.machine = machine
        self.cache = machine.cache
        self.config = machine.config
        #: Validated DNSKEY material for secure zones, by key_text.
        self._keys: dict[str, bytes] = {}

    # -- plumbing ----------------------------------------------------------

    def _now(self) -> int | None:
        """Absolute validation time, or None when the cache has no
        epoch mapping (then signature windows are not checked)."""
        if self.cache.epoch_base is None:
            return None
        return int(self.cache.epoch_now())

    def _fetch(self, name: Name, qtype: RRType, result, budget):
        """A chain fetch through the owning machine (answers, status)."""
        return (yield from self.machine._resolve_once(name, qtype, result, budget))

    def _signer_key(self, signer: Name) -> bytes | None:
        return self._keys.get(signer.key_text())

    # -- entry point -------------------------------------------------------

    def validate(self, qname: Name, qtype: RRType, result, budget):
        """The lookup-level security status for ``result``."""
        self._result = result
        self._budget = budget
        status = result.status
        if status not in (Status.NOERROR, Status.NXDOMAIN):
            return INDETERMINATE  # nothing resolvable to validate
        rrsets, rrsigs = _group_answers(result.answers)
        if not rrsets:
            # Negative answer (NXDOMAIN or NODATA): the walk down the
            # query name decides — denial from inside a secure chain is
            # authenticated, from below an unsigned cut it is insecure.
            return (yield from self._chain_security(qname))
        outcomes = []
        for (owner_key, rtype), records in rrsets.items():
            sigs = rrsigs.get((owner_key, rtype), [])
            outcome = yield from self._rrset_security(records, sigs)
            outcomes.append(outcome)
        if status == Status.NXDOMAIN:
            # A denial at the end of a CNAME chain: the chase target's
            # chain decides the denial's status, on top of the RRsets.
            final = qname
            seen: set[str] = set()
            while final.key_text() not in seen:
                seen.add(final.key_text())
                chained = rrsets.get((final.key_text(), int(RRType.CNAME)))
                if not chained:
                    break
                final = chained[0].rdata.target
            outcomes.append((yield from self._chain_security(final)))
        return aggregate(outcomes)

    # -- RRset-level validation --------------------------------------------

    def _rrset_security(self, records, sigs):
        """Validate one (owner, type) RRset against its RRSIGs."""
        if not sigs:
            # Unsigned data: fine below an insecure cut, bogus (stripped)
            # under a fully secure chain.
            return (yield from self._chain_security(records[0].name, unsigned_data=True))
        sig = sigs[0]
        signer = sig.rdata.signer
        status = yield from self._zone_security(signer)
        if status in (INSECURE, _TRANSPARENT):
            return INSECURE
        if status != SECURE:
            return status
        key = self._signer_key(signer)
        if key is None:
            return INDETERMINATE
        if verify_rrsig(sig.rdata, records, key, self._now()):
            return SECURE
        return BOGUS

    def _chain_security(self, name: Name, unsigned_data: bool = False):
        """Walk every cut from the root down to ``name``."""
        labels = name.labels
        for depth in range(len(labels) + 1):
            zone = Name.intern(labels[len(labels) - depth :])
            status = yield from self._zone_security(zone)
            if status is _TRANSPARENT:
                continue  # not a cut: still inside the enclosing zone
            if status != SECURE:
                return status
        # Every cut on the path is secure (or transparent).  A negative
        # answer from inside that chain is an authenticated denial;
        # unsigned *positive* data under it means the RRSIGs were lost.
        return BOGUS if unsigned_data else SECURE

    # -- zone-level chain walk ---------------------------------------------

    def _zone_security(self, zone: Name):
        """The chain-of-trust status of one zone cut, memoised."""
        cached = self.cache.get_security(zone)
        if cached is not None:
            status, key = cached
            if key:
                self._keys[zone.key_text()] = key
            return status
        status, key = yield from self._walk_zone(zone)
        if key:
            self._keys[zone.key_text()] = key
        if status != INDETERMINATE:
            # transient failures are not cacheable chain state
            self.cache.put_security(zone, status, key, DNSKEY_TTL)
        return status

    def _walk_zone(self, zone: Name):
        if zone.is_root:
            return (yield from self._walk_root())

        parent = zone.parent()
        parent_status = yield from self._zone_security(parent)
        while parent_status is _TRANSPARENT and parent.labels:
            parent = parent.parent()
            parent_status = yield from self._zone_security(parent)
        if parent_status != SECURE:
            # Below an insecure or broken cut every descendant inherits
            # the parent's fate; nothing deeper can upgrade it.
            return parent_status, b""

        answers, status = yield from self._fetch(zone, RRType.DS, self._result, self._budget)
        if status == Status.NXDOMAIN:
            return _TRANSPARENT, b""  # name doesn't exist: not a cut
        if status != Status.NOERROR:
            return INDETERMINATE, b""
        ds_records = [r for r in answers if int(r.rrtype) == _DS]
        if not ds_records:
            return self._classify_ds_denial(answers), b""

        ds_sigs = [
            r for r in answers if int(r.rrtype) == _RRSIG and r.rdata.type_covered == _DS
        ]
        if not self._verify_with_known_signer(ds_sigs, ds_records):
            return BOGUS, b""  # DS set unsigned or unverifiable

        key_answers, key_status = yield from self._fetch(
            zone, RRType.DNSKEY, self._result, self._budget
        )
        if key_status != Status.NOERROR:
            return INDETERMINATE, b""
        dnskeys = [r for r in key_answers if int(r.rrtype) == _DNSKEY]
        if not dnskeys:
            return BOGUS, b""  # DS promises a key the zone won't serve
        key = dnskeys[0].rdata.public_key
        if not any(ds_matches(ds.rdata, key, zone) for ds in ds_records):
            return BOGUS, b""  # botched rollover: DS↔DNSKEY mismatch
        key_sigs = [
            r for r in key_answers if int(r.rrtype) == _RRSIG and r.rdata.type_covered == _DNSKEY
        ]
        if not any(verify_rrsig(s.rdata, dnskeys, key, self._now()) for s in key_sigs):
            return BOGUS, b""
        return SECURE, key

    def _walk_root(self):
        """Bootstrap: the root DNSKEY against the configured anchor."""
        answers, status = yield from self._fetch(
            Name.root(), RRType.DNSKEY, self._result, self._budget
        )
        if status != Status.NOERROR:
            return INDETERMINATE, b""
        dnskeys = [r for r in answers if int(r.rrtype) == _DNSKEY]
        if not dnskeys:
            return BOGUS, b""
        key = dnskeys[0].rdata.public_key
        anchor = self.config.trust_anchor
        if anchor is not None and ds_digest(Name.root(), key) != anchor:
            return BOGUS, b""
        sigs = [
            r for r in answers if int(r.rrtype) == _RRSIG and r.rdata.type_covered == _DNSKEY
        ]
        if not any(verify_rrsig(s.rdata, dnskeys, key, self._now()) for s in sigs):
            return BOGUS, b""
        return SECURE, key

    def _classify_ds_denial(self, answers) -> str:
        """A DS nodata from the (secure) parent: NSEC decides.

        The NS type bit present means the name *is* a delegation with no
        DS — a proven insecure cut.  No NS bit means the name is not a
        zone cut (the walk continues through it).  No verifiable NSEC at
        all means the denial could have been forged or stripped: bogus.
        """
        nsecs = [r for r in answers if int(r.rrtype) == _NSEC]
        sigs = [
            r for r in answers if int(r.rrtype) == _RRSIG and r.rdata.type_covered == _NSEC
        ]
        if not nsecs or not self._verify_with_known_signer(sigs, nsecs):
            return BOGUS
        if _NS in nsecs[0].rdata.types:
            return INSECURE
        return _TRANSPARENT

    def _verify_with_known_signer(self, sigs, records) -> bool:
        """Does any RRSIG verify under an already-validated zone key?"""
        now = self._now()
        for sig in sigs:
            key = self._signer_key(sig.rdata.signer)
            if key is not None and verify_rrsig(sig.rdata, records, key, now):
                return True
        return False


def _group_answers(answers):
    """Split a lookup's answers into RRsets and their covering RRSIGs.

    Both maps are keyed ``(owner key_text, type)`` — for RRSIGs the
    type is the *covered* type, so lookup is a direct join.
    """
    rrsets: dict[tuple, list] = {}
    rrsigs: dict[tuple, list] = {}
    for record in answers:
        if int(record.rrtype) == _RRSIG:
            key = (record.name.key_text(), int(record.rdata.type_covered))
            rrsigs.setdefault(key, []).append(record)
        else:
            key = (record.name.key_text(), int(record.rrtype))
            rrsets.setdefault(key, []).append(record)
    return rrsets, rrsigs


def trust_anchor_for(synth) -> bytes:
    """The root trust anchor for a :class:`ZoneSynthesizer`'s universe —
    what a real deployment would carry as the IANA root anchor file."""
    root = Name.root()
    return ds_digest(root, synth.dnssec_profile(root).key)
