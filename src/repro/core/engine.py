"""Drivers that execute resolution machines against transports.

The machine yields :class:`SendQuery` effects; a driver turns each into
actual I/O — simulated sockets (with client CPU accounting) or real UDP
sockets — and feeds the response back in.
"""

from __future__ import annotations

import random
import time

from ..dnslib import Message, add_edns
from ..dnslib.edns import OPT
from ..dnslib.message import ResourceRecord
from ..dnslib.name import Name
from ..dnslib.types import RRType
from ..net import CPUModel, Routine, SimNetwork, SimUDPSocket, SourceIPPool, UDPTransport
from .cache import SelectiveCache
from .config import ClientCostModel, ResolverConfig
from .machine import Backoff, ExternalMachine, IterativeMachine, LookupResult, SendQuery


class SimDriver:
    """Runs machine generators as simulator routines.

    Charges client CPU per packet on the shared :class:`CPUModel` —
    this is where the paper's thread-scaling plateau comes from — and
    optionally pays a per-query socket setup cost (the socket-reuse
    ablation of Section 3.4).
    """

    def __init__(
        self,
        network: SimNetwork,
        cpu: CPUModel | None = None,
        costs: ClientCostModel | None = None,
        reuse_sockets: bool = True,
        edns_payload: int | None = 1232,
        seed: int = 0,
    ):
        self.network = network
        self.cpu = cpu
        self.costs = costs or ClientCostModel()
        self.reuse_sockets = reuse_sockets
        self.edns_payload = edns_payload
        self._txid_rng = random.Random(seed)
        self._randrange = self._txid_rng.randrange  # hot: one per query
        #: The OPT pseudo-record is identical for every query this
        #: driver builds (frozen dataclass, safely shared), so build it
        #: once instead of running ``add_edns``'s scan per packet.
        self._opt_record = (
            ResourceRecord(Name.root(), RRType.OPT, edns_payload, 0, OPT(()))
            if edns_payload is not None
            else None
        )
        #: Its DO-bit twin (OPT TTL bit 15 set), for queries whose
        #: effect asks for DNSSEC material.  Same build-once sharing.
        self._opt_record_do = (
            ResourceRecord(Name.root(), RRType.OPT, edns_payload, 0x8000, OPT(()))
            if edns_payload is not None
            else None
        )

    def _build_query(self, effect: SendQuery) -> Message:
        message = Message.make_query(
            effect.name,
            effect.qtype,
            rrclass=effect.qclass,
            txid=self._randrange(0x10000),
            recursion_desired=effect.recursion_desired,
        )
        if self._opt_record is not None:
            message.additionals.append(
                self._opt_record_do if effect.dnssec_ok else self._opt_record
            )
        return message

    def execute(self, machine_gen, socket: SimUDPSocket, pool: SourceIPPool | None = None) -> Routine:
        """A simulator routine driving one lookup to completion."""
        if self.cpu is not None and self.costs.per_lookup:
            yield self.cpu.execute(self.costs.per_lookup)
        try:
            effect = next(machine_gen)
        except StopIteration as stop:
            return stop.value

        sim = self.network.sim
        cpu = self.cpu
        send_cost = receive_cost = 0.0
        if cpu is not None:
            send_cost = self.costs.per_send
            if not self.reuse_sockets:
                send_cost += self.costs.per_socket_setup
            receive_cost = self.costs.per_receive
        while True:
            if type(effect) is Backoff:
                # retry backoff: sleep virtual time, no CPU charged
                yield effect.delay
                try:
                    effect = machine_gen.send(None)
                except StopIteration as stop:
                    return stop.value
                continue
            if cpu is not None:
                yield cpu.execute(send_cost)
            sent_at = sim.now
            query = self._build_query(effect)
            if effect.protocol == "tcp":
                future = socket.query_tcp(effect.server_ip, query, effect.timeout)
            else:
                future = socket.query(effect.server_ip, query, effect.timeout)
            response = yield future
            if response is not None and cpu is not None:
                yield cpu.execute(receive_cost)
                if sim.now >= sent_at + effect.timeout:
                    # processed too late (e.g. a GC stall, Section 3.4):
                    # the deadline passed, so the lookup logic sees a
                    # timeout even though bytes eventually arrived.
                    # The deadline instant itself counts as a timeout —
                    # same tie-break as the socket-level race, where the
                    # timer (scheduled at send, so sequenced first) beats
                    # a delivery landing at exactly sent_at + timeout.
                    # ``sent_at + timeout`` reproduces the timer's
                    # deadline bit-for-bit; a subtraction on the left
                    # would round differently and reopen the disagreement
                    # for either protocol (UDP and TCP share this path).
                    response = None
            try:
                effect = machine_gen.send(response)
            except StopIteration as stop:
                return stop.value


class LiveDriver:
    """Runs machine generators against real UDP sockets (blocking)."""

    def __init__(self, transport: UDPTransport, port_override: int | None = None, edns_payload: int | None = 1232, seed: int = 0):
        self.transport = transport
        #: When testing against loopback servers, every SendQuery's
        #: destination port is overridden (servers bind ephemeral ports).
        self.port_override = port_override
        self.edns_payload = edns_payload
        self._txid_rng = random.Random(seed)

    def execute(self, machine_gen) -> LookupResult:
        try:
            effect = next(machine_gen)
        except StopIteration as stop:
            return stop.value
        while True:
            if type(effect) is Backoff:
                time.sleep(effect.delay)
                try:
                    effect = machine_gen.send(None)
                except StopIteration as stop:
                    return stop.value
                continue
            message = Message.make_query(
                effect.name,
                effect.qtype,
                rrclass=effect.qclass,
                txid=self._txid_rng.randrange(0x10000),
                recursion_desired=effect.recursion_desired,
            )
            if self.edns_payload is not None:
                add_edns(message, payload_size=self.edns_payload, dnssec_ok=effect.dnssec_ok)
            port = self.port_override if self.port_override is not None else 53
            response = self.transport.query(message, (effect.server_ip, port), effect.timeout)
            try:
                effect = machine_gen.send(response)
            except StopIteration as stop:
                return stop.value


class Resolver:
    """Convenience facade: one-shot lookups on a simulated Internet.

    For high-throughput scanning use :mod:`repro.framework`, which runs
    thousands of concurrent routines; this class is the simple library
    entry point the paper's Section 7 community request asks for.
    """

    def __init__(self, internet, mode: str = "iterative", config: ResolverConfig | None = None,
                 cache: SelectiveCache | None = None, resolver_ips: list[str] | None = None,
                 record_trace: bool = False):
        from ..ecosystem import EPOCH_BASE, SimInternet  # local import to avoid cycles

        if not isinstance(internet, SimInternet):
            raise TypeError("Resolver expects a SimInternet (see build_internet)")
        self.internet = internet
        self.config = config or ResolverConfig()
        if record_trace:
            self.config.record_trace_results = True
        # "cache or ..." would wrongly discard an empty cache (it has __len__)
        self.cache = cache if cache is not None else SelectiveCache(
            capacity=600_000,
            clock=lambda: internet.sim.now,
            epoch_base=EPOCH_BASE if self.config.dnssec else None,
        )
        if self.config.dnssec and self.config.trust_anchor is None:
            from .dnssec import trust_anchor_for

            self.config.trust_anchor = trust_anchor_for(internet.synth)
        self.mode = mode
        self._pool = SourceIPPool(prefix_length=32)
        self._driver = SimDriver(internet.network)
        self._socket = SimUDPSocket(internet.network, self._pool)
        self._rng = random.Random(internet.params.seed)
        if mode == "iterative":
            self._machine_factory = lambda name, qtype: IterativeMachine(
                self.cache, internet.root_ips, self.config, self._rng
            ).resolve(name, qtype)
        elif mode in ("google", "cloudflare", "external"):
            if mode == "google":
                ips = [internet.google_ip]
            elif mode == "cloudflare":
                ips = [internet.cloudflare_ip]
            else:
                ips = resolver_ips or [internet.google_ip]
            self._machine_factory = lambda name, qtype: ExternalMachine(
                ips, self.config, self._rng
            ).resolve(name, qtype)
        else:
            raise ValueError(f"unknown mode {mode!r}")

    def lookup(self, name, qtype) -> LookupResult:
        """Resolve one name, running the simulation to quiescence."""
        routine = self._driver.execute(self._machine_factory(name, qtype), self._socket)
        future = self.internet.sim.spawn(routine)
        self.internet.sim.run()
        return future.result()
