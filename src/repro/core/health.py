"""Per-server health scoring: shed load away from failing servers.

The paper's framework load-balances lookups across a zone's name
servers (§3); under a blackout or rcode storm that balance is wrong —
every lookup keeps burning its retry budget on the dead server.  The
:class:`ServerHealthTracker` keeps one exponentially-decaying failure
score per server IP on the *virtual* clock and orders candidate server
lists healthy-first, so a blacked-out server stops receiving first
tries within a few observed failures and is organically re-probed as
its score decays back under the threshold.

Determinism: scores are pure arithmetic over virtual time; ordering is
a deterministic shuffle (the machine's seeded RNG) followed by a stable
sort on bucketed scores, so equally-healthy servers still load-balance
and a given seed replays bit-identically.
"""

from __future__ import annotations

import math
import random

__all__ = ["ServerHealthTracker"]


class ServerHealthTracker:
    """Failure scores with exponential time decay over a virtual clock.

    ``clock`` is a zero-argument callable returning virtual seconds
    (e.g. ``lambda: sim.now``).  A failure adds 1 to the server's
    score; a success subtracts ``success_credit``; scores halve every
    ``half_life`` seconds.  Servers at or above ``shed_threshold`` are
    ordered after healthy ones (and among themselves, worst last).
    """

    __slots__ = ("clock", "half_life", "success_credit", "shed_threshold",
                 "_scores", "failures_recorded", "successes_recorded")

    def __init__(
        self,
        clock,
        half_life: float = 15.0,
        success_credit: float = 0.5,
        shed_threshold: float = 2.0,
    ):
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.clock = clock
        self.half_life = half_life
        self.success_credit = success_credit
        self.shed_threshold = shed_threshold
        self._scores: dict[str, tuple[float, float]] = {}  # ip -> (score, stamp)
        self.failures_recorded = 0
        self.successes_recorded = 0

    # -- scoring --------------------------------------------------------------

    def score(self, ip: str, now: float | None = None) -> float:
        """The server's current (decayed) failure score."""
        entry = self._scores.get(ip)
        if entry is None:
            return 0.0
        score, stamp = entry
        if now is None:
            now = self.clock()
        if now > stamp:
            score *= math.exp(-math.log(2.0) * (now - stamp) / self.half_life)
        return score

    def record_failure(self, ip: str) -> None:
        now = self.clock()
        self._scores[ip] = (self.score(ip, now) + 1.0, now)
        self.failures_recorded += 1

    def record_success(self, ip: str) -> None:
        now = self.clock()
        decayed = self.score(ip, now) - self.success_credit
        if decayed <= 0.0:
            self._scores.pop(ip, None)
        else:
            self._scores[ip] = (decayed, now)
        self.successes_recorded += 1

    def is_shed(self, ip: str) -> bool:
        return self.score(ip) >= self.shed_threshold

    # -- ordering -------------------------------------------------------------

    def order(self, servers: list[str], rng: random.Random) -> list[str]:
        """Candidate try-order: healthy servers (shuffled) first, shed
        servers after in increasing-badness order.  Shed servers stay in
        the list — when everything is down they are still the only
        option, and trying them is how recovery is noticed."""
        order = list(servers)
        rng.shuffle(order)
        if not self._scores:
            return order
        now = self.clock()
        threshold = self.shed_threshold
        return sorted(
            order,
            key=lambda ip: (lambda s: 0.0 if s < threshold else s)(self.score(ip, now)),
        )

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> dict:
        now = self.clock()
        shed = [ip for ip in self._scores if self.score(ip, now) >= self.shed_threshold]
        return {
            "tracked_servers": len(self._scores),
            "shed_servers": len(shed),
            "failures_recorded": self.failures_recorded,
            "successes_recorded": self.successes_recorded,
        }

    def publish_metrics(self, scope) -> None:
        """One-shot publish into a registry scope (``health``)."""
        for key, value in self.snapshot().items():
            scope.gauge(key).set(value)
