"""Sans-IO iterative resolution state machine.

The resolver logic is a generator that *yields* :class:`SendQuery`
effects and receives responses (or ``None`` on timeout).  Drivers in
:mod:`repro.core.engine` execute those effects against the simulated
network or real sockets; unit tests execute them against scripted
responses.  This mirrors ZDNS's split between the DNS library and the
framework, and keeps one implementation of the tricky logic —
referrals, glue, CNAME chasing, TCP fallback, lame-delegation handling
— shared by every transport.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..dnslib import Message, Name, Rcode, ResourceRecord, RRType
from .cache import Delegation, SelectiveCache
from .config import ResolverConfig
from .status import Status, status_from_rcode
from .trace import Trace, TraceStep, message_to_json
from .validation import sanitize_response, validate_response_shape


@dataclass(frozen=True)
class SendQuery:
    """Effect: transmit one query and await its response."""

    server_ip: str
    name: Name
    qtype: RRType
    timeout: float
    protocol: str = "udp"
    recursion_desired: bool = False
    qclass: int = 1  # IN; CH for e.g. version.bind
    #: Set the EDNS DO bit: ask the server for DNSSEC material
    #: (RRSIGs, NSEC denials, DNSKEY/DS at the right cuts).
    dnssec_ok: bool = False


@dataclass(frozen=True)
class Backoff:
    """Effect: pause ``delay`` seconds before the next retry attempt.

    Emitted between failed attempts when ``ResolverConfig.backoff_base``
    is set; drivers sleep (virtual or wall clock) and send ``None`` back
    into the machine."""

    delay: float


@dataclass
class LookupResult:
    """Outcome of one full lookup."""

    name: str
    qtype: RRType
    status: Status = Status.ERROR
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)
    trace: Trace = field(default_factory=Trace)
    queries_sent: int = 0
    retries_used: int = 0
    resolver: str = ""
    protocol: str = "udp"
    #: DNSSEC validation outcome (secure/insecure/bogus/indeterminate),
    #: or None when validation was not enabled for this lookup.
    security: str | None = None

    @property
    def is_success(self) -> bool:
        return self.status.is_success

    def to_json(self) -> dict:
        """ZDNS-style output record (Appendix C shape)."""
        data = {
            "answers": [record.to_json() for record in self.answers],
            "protocol": self.protocol,
            "resolver": self.resolver,
        }
        if self.authorities:
            data["authorities"] = [record.to_json() for record in self.authorities]
        if self.additionals:
            data["additionals"] = [record.to_json() for record in self.additionals]
        if self.security is not None:
            data["dnssec"] = self.security
        out = {
            "name": self.name,
            "class": "IN",
            "status": str(self.status),
            "data": data,
        }
        if len(self.trace):
            out["trace"] = self.trace.to_json()
        return out


class _Abort(Exception):
    """Internal: unwind a resolution with a terminal status."""

    def __init__(self, status: Status):
        self.status = status


def _match_answers(response: Message, name: Name, qtype: int) -> list[ResourceRecord]:
    """Answer records owned by ``name`` of the queried (or CNAME) type."""
    wanted = []
    for record in response.answers:
        if record.name != name:
            continue
        if int(record.rrtype) == int(qtype) or int(qtype) == int(RRType.ANY):
            wanted.append(record)
        elif int(record.rrtype) in (int(RRType.CNAME), int(RRType.RRSIG)):
            # RRSIGs only ever appear when the query carried DO, so
            # collecting them here leaves DO-less lookups untouched.
            wanted.append(record)
    return wanted


def _referral_zone(response: Message) -> Name | None:
    for record in response.authorities:
        if int(record.rrtype) == int(RRType.NS):
            return record.name
    return None


def _delegation_from(response: Message, zone: Name) -> Delegation:
    ns_names = []
    ttl = None
    for record in response.authorities:
        if int(record.rrtype) == int(RRType.NS) and record.name == zone:
            ns_names.append(record.rdata.target)
            if ttl is None or record.ttl < ttl:
                ttl = record.ttl
    ns_names = tuple(ns_names)
    glue = []
    for record in response.additionals:
        if int(record.rrtype) == int(RRType.A) and record.name in ns_names:
            glue.append((record.name, record.rdata.address))
            if ttl is None or record.ttl < ttl:
                ttl = record.ttl
    # The cut's lifetime is bounded by its shortest constituent record:
    # once any NS/glue RR would have fallen out of a classic resolver's
    # cache, the whole delegation must be re-fetched.
    return Delegation(zone=zone, ns_names=ns_names, glue=tuple(glue), ttl=ttl)


class IterativeMachine:
    """Performs full iterative resolution with selective caching."""

    def __init__(
        self,
        cache: SelectiveCache,
        root_ips: list[str],
        config: ResolverConfig | None = None,
        rng: random.Random | None = None,
    ):
        self.cache = cache
        self.root_ips = list(root_ips)
        self.config = config or ResolverConfig()
        self.rng = rng or random.Random(0)

    # ------------------------------------------------------------------

    def resolve(self, name: Name | str, qtype: RRType):
        """Generator: yields SendQuery, receives Message|None, returns
        LookupResult."""
        if isinstance(name, str):
            name = Name.from_text(name)
        result = LookupResult(
            name=name.to_text(omit_final_dot=True), qtype=qtype, resolver="iterative"
        )
        budget = _Budget(self.config.max_queries)
        tracer = self.config.tracer
        span = (
            tracer.start("lookup", name=result.name, type=int(qtype))
            if tracer is not None
            else None
        )
        try:
            answers, status = yield from self._resolve_with_cnames(
                name, qtype, result, budget, span
            )
            result.status = status
            result.answers = answers
        except _Abort as abort:
            result.status = abort.status
        if self.config.dnssec:
            yield from self._validate(name, qtype, result, budget)
        result.queries_sent = budget.sent
        result.retries_used = budget.retries
        if span is not None:
            span.finish(
                status=str(result.status),
                queries=budget.sent,
                retries=budget.retries,
            )
        return result

    # ------------------------------------------------------------------

    def _validate(self, name, qtype, result, budget):
        """DNSSEC post-pass: walk the chain of trust and stamp
        ``result.security``.  Validation never clobbers the semantic
        status — running out of query budget mid-walk leaves the answer
        intact and marks it indeterminate."""
        from .dnssec import INDETERMINATE, Validator

        try:
            result.security = yield from Validator(self).validate(name, qtype, result, budget)
        except _Abort:
            result.security = INDETERMINATE

    def _resolve_with_cnames(self, name: Name, qtype: RRType, result, budget, span=None):
        answers: list[ResourceRecord] = []
        current = name
        for _hop in range(self.config.max_cname_chase + 1):
            step_answers, status = yield from self._resolve_once(
                current, qtype, result, budget, parent=span
            )
            answers.extend(step_answers)
            if status != Status.NOERROR or int(qtype) in (int(RRType.CNAME), int(RRType.ANY)):
                return answers, status
            target = _cname_target(step_answers, current, qtype)
            if target is None:
                return answers, status
            current = target
        return answers, Status.ERROR  # CNAME chain too long

    def _resolve_once(self, name: Name, qtype: RRType, result, budget, depth: int = 0, parent=None):
        """One iteration walk for a single owner name, as a "step" span."""
        tracer = self.config.tracer
        if tracer is None:
            return (yield from self._resolve_once_inner(name, qtype, result, budget, depth, None))
        span = tracer.start(
            "step",
            parent=parent,
            name=name.to_text(omit_final_dot=True),
            depth=depth,
            type=int(qtype),
        )
        try:
            answers, status = yield from self._resolve_once_inner(
                name, qtype, result, budget, depth, span
            )
        except _Abort as abort:
            span.finish(status=str(abort.status))
            raise
        except BaseException:
            span.finish(status=str(Status.ERROR))
            raise
        span.finish(status=str(status))
        return answers, status

    def _resolve_once_inner(self, name: Name, qtype: RRType, result, budget, depth, span):
        if depth > self.config.max_glueless_depth:
            raise _Abort(Status.ERROR)
        tracer = self.config.tracer

        # Leaf-answer cache: a no-op under the paper's selective policy,
        # only live for the policy="all" ablation (section 3.4).
        probe = tracer.start("cache_probe", parent=span) if tracer is not None else None
        cached_answers = self.cache.get_answer(name, int(qtype))
        if cached_answers is not None:
            if probe is not None:
                probe.finish(status="answer_hit")
            if self.config.collect_trace:
                result.trace.add(
                    TraceStep(
                        name=name.to_text(omit_final_dot=True),
                        layer=name.to_text(omit_final_dot=True) or ".",
                        depth=depth,
                        name_server="cache",
                        cached=True,
                        try_count=0,
                        qtype=int(qtype),
                    )
                )
            return list(cached_answers), Status.NOERROR

        start = name
        if self.config.dnssec and int(qtype) == int(RRType.DS) and name.labels:
            # DS lives on the parent side of the cut: starting the walk
            # from a cached delegation for the name itself would route
            # the query to the child zone, which cannot answer it.
            start = name.parent()
        cached = self.cache.best_delegation(start)
        if probe is not None:
            hit = cached is not None and bool(cached.addresses())
            probe.finish(
                status="hit" if hit else "miss",
                layer=(cached.zone.to_text(omit_final_dot=True) or ".") if hit else None,
            )
        if cached is not None and cached.addresses():
            zone = cached.zone
            servers = cached.addresses()
            if self.config.collect_trace:
                result.trace.add(
                    TraceStep(
                        name=name.to_text(omit_final_dot=True),
                        layer=zone.to_text(omit_final_dot=True) or ".",
                        depth=depth + len(zone.labels),
                        name_server="cache",
                        cached=True,
                        try_count=0,
                        qtype=int(qtype),
                    )
                )
        else:
            zone = Name.root()
            servers = list(self.root_ips)

        for _layer_hop in range(self.config.max_referrals):
            response, server_ip, protocol = yield from self._query_layer(
                name, qtype, servers, result, budget, zone, depth, parent=span
            )
            rcode = response.rcode

            if rcode == Rcode.NXDOMAIN:
                return [], Status.NXDOMAIN
            if rcode != Rcode.NOERROR:
                return [], status_from_rcode(rcode)

            matched = _match_answers(response, name, int(qtype))
            if matched:
                self.cache.put_answer(name, int(qtype), matched)
                return matched, Status.NOERROR
            if response.answers and not matched:
                return [], Status.NOERROR  # answers for someone else: no data for us

            referral = _referral_zone(response)
            if referral is not None and not response.flags.authoritative:
                if not referral.is_subdomain_of(zone) or referral == zone:
                    # upward or sideways referral: lame server
                    return [], Status.ERROR
                if not name.is_subdomain_of(referral):
                    return [], Status.ERROR
                delegation = _delegation_from(response, referral)
                if delegation.ns_names:
                    self.cache.put_delegation(delegation)
                addresses = delegation.addresses()
                if not addresses:
                    addresses = yield from self._resolve_glueless(
                        delegation, result, budget, depth, parent=span
                    )
                    if not addresses:
                        return [], Status.SERVFAIL
                zone = referral
                servers = addresses
                continue

            # authoritative NOERROR with no answers: NODATA
            if self.config.dnssec and int(qtype) == int(RRType.DS):
                # surface the parent's authenticated denial (NSEC plus
                # its RRSIG) so the validator can tell a proven insecure
                # delegation apart from a stripped response
                denial = [
                    record
                    for record in response.authorities
                    if int(record.rrtype) in (int(RRType.NSEC), int(RRType.RRSIG))
                ]
                return denial, Status.NOERROR
            return [], Status.NOERROR

        return [], Status.ITER_LIMIT

    def _query_layer(self, name, qtype, servers, result, budget, zone, depth, parent=None):
        """Try the layer's servers (with retries) until one responds."""
        config = self.config
        health = config.health
        if health is not None:
            # failure-aware ordering: shed load away from unhealthy
            # servers (blackouts, storms) instead of burning retries
            order = health.order(list(servers), self.rng)
        else:
            order = list(servers)
            self.rng.shuffle(order)
        tracer = config.tracer
        tries = config.retries + 1
        timeout = config.iteration_timeout
        dnssec_ok = config.dnssec
        backoff_base = config.backoff_base
        backoff_cap = config.backoff_cap
        last_pause = 0.0
        # Everything the per-attempt trace rows share is computed once.
        name_text = name.to_text(omit_final_dot=True)
        layer_text = zone.to_text(omit_final_dot=True) or "."
        step_depth = depth + len(zone.labels) + 1
        qtype_int = int(qtype)
        collect = config.collect_trace
        last_failure = Status.ITERATIVE_TIMEOUT
        attempt = 0
        for attempt in range(tries):
            server_ip = order[attempt % len(order)]
            budget.spend()
            step = (
                TraceStep(
                    name=name_text,
                    layer=layer_text,
                    depth=step_depth,
                    name_server=f"{server_ip}:53",
                    cached=False,
                    try_count=attempt + 1,
                    qtype=qtype_int,
                )
                if collect
                else None
            )
            qspan = (
                tracer.start(
                    "query",
                    parent=parent,
                    name=name_text,
                    layer=layer_text,
                    depth=step_depth,
                    name_server=f"{server_ip}:53",
                    try_count=attempt + 1,
                    type=qtype_int,
                )
                if tracer is not None
                else None
            )
            response = yield SendQuery(
                server_ip=server_ip,
                name=name,
                qtype=qtype,
                timeout=timeout,
                dnssec_ok=dnssec_ok,
            )
            if response is None:
                if qspan is not None:
                    qspan.finish(status=str(Status.TIMEOUT))
                if step is not None:
                    step.status = str(Status.TIMEOUT)
                    result.trace.add(step)
                budget.retries += 1
                if health is not None:
                    health.record_failure(server_ip)
                if backoff_base and attempt + 1 < tries:
                    last_pause = min(
                        backoff_cap,
                        self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                    )
                    yield Backoff(last_pause)
                continue
            if config.validate_responses:
                reason = validate_response_shape(name, int(qtype), response)
                if reason is not None:
                    # malformed/hostile response: treat like packet loss
                    if qspan is not None:
                        qspan.finish(status=str(Status.FORMERR))
                    if step is not None:
                        step.status = str(Status.FORMERR)
                        result.trace.add(step)
                    budget.retries += 1
                    last_failure = Status.FORMERR
                    if health is not None:
                        health.record_failure(server_ip)
                    if backoff_base and attempt + 1 < tries:
                        last_pause = min(
                            backoff_cap,
                            self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                        )
                        yield Backoff(last_pause)
                    continue
                if config.strict_bailiwick:
                    response, _report = sanitize_response(response, name, int(qtype), zone)
            if response.flags.truncated and not config.tcp_on_truncated:
                if qspan is not None:
                    qspan.finish(status=str(Status.TRUNCATED))
                if step is not None:
                    step.status = str(Status.TRUNCATED)
                    result.trace.add(step)
                raise _Abort(Status.TRUNCATED)
            if response.flags.truncated and config.tcp_on_truncated:
                if qspan is not None:
                    # the UDP leg ended truncated; the TCP retry is its
                    # own span so both timings stay visible
                    qspan.finish(status=str(Status.TRUNCATED))
                    qspan = tracer.start(
                        "query",
                        parent=parent,
                        name=name_text,
                        layer=layer_text,
                        depth=step_depth,
                        name_server=f"{server_ip}:53",
                        try_count=attempt + 1,
                        type=qtype_int,
                        protocol="tcp",
                    )
                budget.spend()
                response_tcp = yield SendQuery(
                    server_ip=server_ip,
                    name=name,
                    qtype=qtype,
                    timeout=timeout,
                    protocol="tcp",
                    dnssec_ok=dnssec_ok,
                )
                if response_tcp is None:
                    if qspan is not None:
                        qspan.finish(status=str(Status.TIMEOUT))
                    if step is not None:
                        step.status = str(Status.TRUNCATED)
                        result.trace.add(step)
                    budget.retries += 1
                    if health is not None:
                        health.record_failure(server_ip)
                    if backoff_base and attempt + 1 < tries:
                        last_pause = min(
                            backoff_cap,
                            self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                        )
                        yield Backoff(last_pause)
                    continue
                if config.validate_responses:
                    # the TCP retry is as forgeable as the UDP leg was:
                    # a malformed/hostile reply here must not sail past
                    # the shape checks just because it arrived over TCP
                    # (found by the differential oracle: a truncated
                    # UDP response followed by a garbage TCP reply was
                    # accepted as an authoritative NODATA)
                    reason = validate_response_shape(name, int(qtype), response_tcp)
                    if reason is not None:
                        if qspan is not None:
                            qspan.finish(status=str(Status.FORMERR))
                        if step is not None:
                            step.status = str(Status.FORMERR)
                            result.trace.add(step)
                        budget.retries += 1
                        last_failure = Status.FORMERR
                        if health is not None:
                            health.record_failure(server_ip)
                        if backoff_base and attempt + 1 < tries:
                            last_pause = min(
                                backoff_cap,
                                self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                            )
                            yield Backoff(last_pause)
                        continue
                response = response_tcp
                if step is not None:
                    step = replace(step, results=None)
            if response.rcode in (Rcode.SERVFAIL, Rcode.REFUSED):
                if qspan is not None:
                    qspan.finish(status=str(status_from_rcode(response.rcode)))
                if step is not None:
                    step.status = str(status_from_rcode(response.rcode))
                    result.trace.add(step)
                last_failure = status_from_rcode(response.rcode)
                budget.retries += 1
                if health is not None:
                    health.record_failure(server_ip)
                if backoff_base and attempt + 1 < tries:
                    last_pause = min(
                        backoff_cap,
                        self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                    )
                    yield Backoff(last_pause)
                continue
            if qspan is not None:
                qspan.finish(status=str(status_from_rcode(response.rcode)))
            if step is not None:
                step.status = str(status_from_rcode(response.rcode))
                if config.record_trace_results:
                    step.results = message_to_json(response, f"{server_ip}:53")
                result.trace.add(step)
            if health is not None:
                health.record_success(server_ip)
            return response, server_ip, "udp"
        raise _Abort(last_failure)

    def _resolve_glueless(self, delegation: Delegation, result, budget, depth, parent=None):
        """Referral without glue: resolve one NS name's address."""
        tracer = self.config.tracer
        gspan = (
            tracer.start(
                "glueless",
                parent=parent,
                layer=delegation.zone.to_text(omit_final_dot=True) or ".",
                depth=depth,
            )
            if tracer is not None
            else None
        )
        try:
            addresses = yield from self._resolve_glueless_inner(
                delegation, result, budget, depth, gspan
            )
        except _Abort as abort:
            if gspan is not None:
                gspan.finish(status=str(abort.status))
            raise
        if gspan is not None:
            gspan.finish(status="NOERROR" if addresses else str(Status.SERVFAIL))
        return addresses

    def _resolve_glueless_inner(self, delegation, result, budget, depth, gspan):
        for ns_name in delegation.ns_names:
            answers, status = yield from self._resolve_once(
                ns_name, RRType.A, result, budget, depth + 1, parent=gspan
            )
            addresses = []
            ttl = delegation.ttl
            for record in answers:
                if int(record.rrtype) == int(RRType.A):
                    addresses.append(record.rdata.address)
                    if ttl is None or record.ttl < ttl:
                        ttl = record.ttl
            if status == Status.NOERROR and addresses:
                # refresh the cache with the learned glue; the refreshed
                # cut lives no longer than its shortest record
                self.cache.put_delegation(
                    Delegation(
                        zone=delegation.zone,
                        ns_names=delegation.ns_names,
                        glue=tuple((ns_name, ip) for ip in addresses),
                        ttl=ttl,
                    )
                )
                return addresses
        return []


class ExternalMachine:
    """Stub resolution against an external recursive resolver."""

    def __init__(self, resolver_ips: list[str], config: ResolverConfig | None = None, rng=None):
        if not resolver_ips:
            raise ValueError("need at least one resolver address")
        self.resolver_ips = list(resolver_ips)
        self.config = config or ResolverConfig()
        self.rng = rng or random.Random(0)

    def resolve(self, name: Name | str, qtype: RRType):
        if isinstance(name, str):
            name = Name.from_text(name)
        config = self.config
        result = LookupResult(name=name.to_text(omit_final_dot=True), qtype=qtype)
        tries = config.retries + 1
        status = Status.TIMEOUT
        tracer = config.tracer
        health = config.health
        backoff_base = config.backoff_base
        backoff_cap = config.backoff_cap
        last_pause = 0.0
        span = (
            tracer.start("lookup", name=result.name, type=int(qtype), mode="external")
            if tracer is not None
            else None
        )
        for attempt in range(tries):
            if health is not None and len(self.resolver_ips) > 1:
                # failure-aware pick: healthy upstreams first
                server_ip = health.order(self.resolver_ips, self.rng)[0]
            else:
                # load-balance across upstream resolvers per attempt
                server_ip = self.resolver_ips[
                    self.rng.randrange(len(self.resolver_ips))
                    if len(self.resolver_ips) > 1
                    else 0
                ]
            result.resolver = f"{server_ip}:53"
            result.queries_sent += 1
            qspan = (
                tracer.start(
                    "query",
                    parent=span,
                    name=result.name,
                    name_server=f"{server_ip}:53",
                    try_count=attempt + 1,
                    type=int(qtype),
                )
                if tracer is not None
                else None
            )
            response = yield SendQuery(
                server_ip=server_ip,
                name=name,
                qtype=qtype,
                timeout=config.external_timeout,
                recursion_desired=True,
                dnssec_ok=config.dnssec,
            )
            if response is None:
                if qspan is not None:
                    qspan.finish(status=str(Status.TIMEOUT))
                result.retries_used += 1
                if health is not None:
                    health.record_failure(server_ip)
                if backoff_base and attempt + 1 < tries:
                    last_pause = min(
                        backoff_cap,
                        self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                    )
                    yield Backoff(last_pause)
                continue
            if response.flags.truncated and config.tcp_on_truncated:
                if qspan is not None:
                    qspan.finish(status=str(Status.TRUNCATED))
                    qspan = tracer.start(
                        "query",
                        parent=span,
                        name=result.name,
                        name_server=f"{server_ip}:53",
                        try_count=attempt + 1,
                        type=int(qtype),
                        protocol="tcp",
                    )
                result.queries_sent += 1
                response = yield SendQuery(
                    server_ip=server_ip,
                    name=name,
                    qtype=qtype,
                    timeout=config.external_timeout,
                    protocol="tcp",
                    recursion_desired=True,
                    dnssec_ok=config.dnssec,
                )
                if response is None:
                    if qspan is not None:
                        qspan.finish(status=str(Status.TIMEOUT))
                    result.retries_used += 1
                    if health is not None:
                        health.record_failure(server_ip)
                    if backoff_base and attempt + 1 < tries:
                        last_pause = min(
                            backoff_cap,
                            self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                        )
                        yield Backoff(last_pause)
                    continue
                result.protocol = "tcp"
            if config.validate_responses:
                reason = validate_response_shape(name, int(qtype), response)
                if reason is not None:
                    # malformed/hostile response: treat like packet loss
                    if qspan is not None:
                        qspan.finish(status=str(Status.FORMERR))
                    status = Status.FORMERR
                    result.retries_used += 1
                    if health is not None:
                        health.record_failure(server_ip)
                    if backoff_base and attempt + 1 < tries:
                        last_pause = min(
                            backoff_cap,
                            self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                        )
                        yield Backoff(last_pause)
                    continue
            status = status_from_rcode(response.rcode)
            if qspan is not None:
                qspan.finish(status=str(status))
            if (
                config.retry_servfail
                and status in (Status.SERVFAIL, Status.REFUSED)
                and attempt + 1 < tries
            ):
                result.retries_used += 1
                if health is not None:
                    health.record_failure(server_ip)
                if backoff_base:
                    last_pause = min(
                        backoff_cap,
                        self.rng.uniform(backoff_base, 3.0 * (last_pause or backoff_base)),
                    )
                    yield Backoff(last_pause)
                continue
            if health is not None:
                health.record_success(server_ip)
            result.answers = list(response.answers)
            result.authorities = list(response.authorities)
            result.additionals = list(response.additionals)
            break
        result.status = status
        if span is not None:
            span.finish(
                status=str(status),
                queries=result.queries_sent,
                retries=result.retries_used,
            )
        return result


class _Budget:
    """Per-lookup query budget: hard stop against referral loops."""

    def __init__(self, limit: int):
        self.limit = limit
        self.sent = 0
        self.retries = 0

    def spend(self) -> None:
        self.sent += 1
        if self.sent > self.limit:
            raise _Abort(Status.ITER_LIMIT)


def _cname_target(answers: list[ResourceRecord], name: Name, qtype: RRType) -> Name | None:
    """If the matched answers are only a CNAME, the chase target."""
    has_final = any(int(r.rrtype) == int(qtype) for r in answers)
    if has_final:
        return None
    for record in answers:
        if int(record.rrtype) == int(RRType.CNAME) and record.name == name:
            return record.rdata.target
    return None
