"""Lookup status codes, mirroring ZDNS's output vocabulary."""

from __future__ import annotations

import enum

from ..dnslib import Rcode


class Status(str, enum.Enum):
    """Outcome of one lookup, as emitted in the JSON ``status`` field."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"
    REFUSED = "REFUSED"
    TRUNCATED = "TRUNCATED"
    TIMEOUT = "TIMEOUT"
    ITERATIVE_TIMEOUT = "ITERATIVE_TIMEOUT"
    ITER_LIMIT = "ITER_LIMIT"
    RATE_LIMITED = "RATE_LIMITED"
    FORMERR = "FORMERR"
    ERROR = "ERROR"

    def __str__(self) -> str:
        return self.value

    @property
    def is_success(self) -> bool:
        """The paper counts NOERROR *and* NXDOMAIN as successes
        (Section 4.1: 'a NOERROR or NXDOMAIN response')."""
        return self in (Status.NOERROR, Status.NXDOMAIN)


def status_from_rcode(rcode: Rcode | int) -> Status:
    """Map a DNS response code onto a lookup Status."""
    mapping = {
        int(Rcode.NOERROR): Status.NOERROR,
        int(Rcode.NXDOMAIN): Status.NXDOMAIN,
        int(Rcode.SERVFAIL): Status.SERVFAIL,
        int(Rcode.REFUSED): Status.REFUSED,
        int(Rcode.FORMERR): Status.FORMERR,
    }
    return mapping.get(int(rcode), Status.ERROR)
