"""Exposed lookup chains: the trace format of Appendix C.

Every step of an iterative resolution is recorded as a JSON-exportable
entry so that researchers can inspect the internal DNS operations that
recursive resolvers normally hide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dnslib import Message


def message_to_json(message: Message, resolver: str, protocol: str = "udp") -> dict:
    """The Appendix C ``results`` block for one exchanged response."""
    return {
        "answers": [record.to_json() for record in message.answers],
        "authorities": [record.to_json() for record in message.authorities],
        "additionals": [record.to_json() for record in message.additionals],
        "flags": message.flags.to_json(),
        "opcode": int(message.flags.opcode),
        "protocol": protocol,
        "resolver": resolver,
    }


@dataclass
class TraceStep:
    """One query in a lookup chain (Appendix C entry)."""

    name: str
    layer: str
    depth: int
    name_server: str
    cached: bool
    try_count: int
    qtype: int
    qclass: int = 1
    results: dict | None = None
    status: str = "NOERROR"

    def to_json(self) -> dict:
        entry = {
            "name": self.name,
            "layer": self.layer,
            "depth": self.depth,
            "name_server": self.name_server,
            "cached": self.cached,
            "try": self.try_count,
            "type": self.qtype,
            "class": self.qclass,
            "status": self.status,
        }
        if self.results is not None:
            entry["results"] = self.results
        return entry


@dataclass
class Trace:
    """The ordered lookup chain of one resolution."""

    steps: list[TraceStep] = field(default_factory=list)

    def add(self, step: TraceStep) -> None:
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def to_json(self) -> list[dict]:
        return [step.to_json() for step in self.steps]

    @property
    def query_count(self) -> int:
        """Queries actually sent (cached steps sent nothing)."""
        return sum(1 for step in self.steps if not step.cached)
