"""Response validation (the "validation" duty of the ZDNS library,
Section 3.2).

Internet servers regularly return malformed or hostile responses; an
iterative resolver must not ingest them blindly.  These checks cover
the classic failure modes:

* **bailiwick violations** — records for names outside the zone the
  queried server is responsible for (cache-poisoning vector);
* **answer mismatches** — answer records that belong neither to the
  question name nor to its CNAME chain;
* **structural anomalies** — responses that are not responses, echo a
  different question, or carry absurd TTLs.

The iterative machine applies :func:`sanitize_response` to every
response before interpreting it; rejected records are dropped and
counted rather than trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dnslib import Message, Name, ResourceRecord, RRType

#: TTLs above this (68 years) are treated as hostile/garbage.
MAX_REASONABLE_TTL = 2**31 - 1


@dataclass
class ValidationReport:
    """What sanitisation did to one response."""

    ok: bool = True
    dropped: list[str] = field(default_factory=list)

    def reject(self, reason: str) -> None:
        self.ok = False
        self.dropped.append(reason)


def in_bailiwick(name: Name, zone: Name) -> bool:
    """Whether ``name`` lies at or below ``zone``."""
    return name.is_subdomain_of(zone)


def validate_response_shape(query_name: Name, qtype: int, response: Message) -> str | None:
    """Structural checks; returns a rejection reason or None."""
    if not response.flags.response:
        return "not a response"
    question = response.question
    if question is not None:
        if question.name != query_name:
            return "question name mismatch"
        if int(question.rrtype) != int(qtype) and int(qtype) != int(RRType.ANY):
            return "question type mismatch"
    return None


def _record_ok(record: ResourceRecord, zone: Name, report: ValidationReport) -> bool:
    if record.ttl > MAX_REASONABLE_TTL or record.ttl < 0:
        report.reject(f"absurd TTL {record.ttl} on {record.name.to_text()}")
        return False
    if not in_bailiwick(record.name, zone):
        report.reject(f"out-of-bailiwick record {record.name.to_text()} (zone {zone.to_text()})")
        return False
    return True


def sanitize_response(
    response: Message, query_name: Name, qtype: int, zone: Name
) -> tuple[Message, ValidationReport]:
    """Drop records the queried server has no authority to assert.

    ``zone`` is the zone cut the server was queried for.  Answer and
    authority records must be in-bailiwick; additionals (glue) must be
    in-bailiwick too, or they are silently stripped — classic Kaminsky-
    style poisoning defence.
    """
    report = ValidationReport()
    reason = validate_response_shape(query_name, qtype, response)
    if reason is not None:
        report.reject(reason)
        return response, report

    answers = [r for r in response.answers if _record_ok(r, zone, report)]
    authorities = [r for r in response.authorities if _record_ok(r, zone, report)]
    additionals = []
    for record in response.additionals:
        if int(record.rrtype) == int(RRType.OPT):
            additionals.append(record)  # EDNS pseudo-record is unnamed
            continue
        if _record_ok(record, zone, report):
            additionals.append(record)

    if len(answers) != len(response.answers) or len(authorities) != len(
        response.authorities
    ) or len(additionals) != len(response.additionals):
        cleaned = Message(
            id=response.id,
            flags=response.flags,
            questions=list(response.questions),
            answers=answers,
            authorities=authorities,
            additionals=additionals,
        )
        return cleaned, report
    return response, report


def validate_answer_chain(response: Message, query_name: Name, qtype: int) -> bool:
    """Every answer record must be owned by the question name or by a
    target reached through the response's own CNAME chain."""
    allowed = {query_name.canonical_key()}
    for record in response.answers:
        if record.name.canonical_key() not in allowed:
            return False
        if int(record.rrtype) == int(RRType.CNAME):
            allowed.add(record.rdata.target.canonical_key())
    return True
