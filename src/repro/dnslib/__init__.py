"""repro.dnslib — a self-contained DNS wire-protocol library.

The analogue of the miekg/dns layer ZDNS builds on: domain names,
message encode/decode with compression, EDNS(0), and RDATA codecs for
every record type the paper lists.
"""

from .edns import EDNSInfo, EDNSOption, add_edns, get_edns, max_payload
from .message import (
    EDNS_UDP_PAYLOAD,
    MAX_UDP_PAYLOAD,
    Flags,
    Message,
    Question,
    ResourceRecord,
)
from .name import Name, NameError_, name_from_ipv4_ptr
from .rdata import GenericRData, RData, rdata_class, registered_types
from .text_format import PARSEABLE_TYPES, TextParseError, rdata_from_text
from .types import DNSClass, Opcode, Rcode, RRType, type_from_text
from .wire import WireError, WireReader, WireWriter
from .zonefile import Zone, ZoneParseError, load_zone, parse_zone, zone_to_text

__all__ = [
    "DNSClass",
    "EDNSInfo",
    "EDNSOption",
    "EDNS_UDP_PAYLOAD",
    "Flags",
    "GenericRData",
    "MAX_UDP_PAYLOAD",
    "Message",
    "Name",
    "NameError_",
    "Opcode",
    "PARSEABLE_TYPES",
    "Question",
    "RData",
    "TextParseError",
    "Zone",
    "ZoneParseError",
    "Rcode",
    "ResourceRecord",
    "RRType",
    "WireError",
    "WireReader",
    "WireWriter",
    "add_edns",
    "get_edns",
    "load_zone",
    "max_payload",
    "name_from_ipv4_ptr",
    "parse_zone",
    "rdata_class",
    "rdata_from_text",
    "registered_types",
    "type_from_text",
    "zone_to_text",
]
