"""repro.dnslib — a self-contained DNS wire-protocol library.

The analogue of the miekg/dns layer ZDNS builds on: domain names,
message encode/decode with compression, EDNS(0), and RDATA codecs for
every record type the paper lists.
"""

from .edns import EDNSInfo, EDNSOption, add_edns, get_edns, max_payload
from .message import (
    CODEC_STATS,
    EDNS_UDP_PAYLOAD,
    MAX_UDP_PAYLOAD,
    Flags,
    LazyResourceRecord,
    Message,
    Question,
    ResourceRecord,
    clear_codec_caches,
    codec_memo_stats,
    decode_many,
)
from .name import Name, NameError_, name_from_ipv4_ptr
from .rdata import GenericRData, RData, rdata_class, registered_types
from .text_format import PARSEABLE_TYPES, TextParseError, rdata_from_text
from .types import DNSClass, Opcode, Rcode, RRType, type_from_text
from .wire import WireError, WireReader, WireWriter, peek_header, peek_txid
from .zonefile import (
    Zone,
    ZoneParseError,
    load_zone,
    parse_zone,
    parse_zone_lines,
    zone_to_text,
)

__all__ = [
    "CODEC_STATS",
    "DNSClass",
    "EDNSInfo",
    "EDNSOption",
    "EDNS_UDP_PAYLOAD",
    "Flags",
    "GenericRData",
    "LazyResourceRecord",
    "MAX_UDP_PAYLOAD",
    "Message",
    "Name",
    "NameError_",
    "Opcode",
    "PARSEABLE_TYPES",
    "Question",
    "RData",
    "TextParseError",
    "Zone",
    "ZoneParseError",
    "Rcode",
    "ResourceRecord",
    "RRType",
    "WireError",
    "WireReader",
    "WireWriter",
    "add_edns",
    "clear_codec_caches",
    "codec_memo_stats",
    "decode_many",
    "get_edns",
    "load_zone",
    "max_payload",
    "name_from_ipv4_ptr",
    "parse_zone",
    "parse_zone_lines",
    "peek_header",
    "peek_txid",
    "rdata_class",
    "rdata_from_text",
    "registered_types",
    "type_from_text",
    "zone_to_text",
]
