"""EDNS(0) support (RFC 6891): the OPT pseudo-record and its options."""

from __future__ import annotations

from dataclasses import dataclass

from .message import Message, ResourceRecord
from .name import Name
from .rdata import RData, register
from .types import RRType
from .wire import WireError, WireReader, WireWriter

#: Option codes we name; others are carried opaquely.
OPTION_COOKIE = 10
OPTION_CLIENT_SUBNET = 8
OPTION_NSID = 3


@dataclass(frozen=True)
class EDNSOption:
    code: int
    data: bytes


@register(RRType.OPT)
class OPT(RData):
    """OPT pseudo-record RDATA: a sequence of TLV options."""

    __slots__ = ("options",)

    def __init__(self, options: tuple[EDNSOption, ...] = ()):
        self.options = tuple(options)

    def to_wire(self, writer: WireWriter) -> None:
        for option in self.options:
            writer.write_u16(option.code)
            writer.write_u16(len(option.data))
            writer.write(option.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "OPT":
        end = reader.offset + rdlength
        options = []
        while reader.offset < end:
            code = reader.read_u16()
            length = reader.read_u16()
            if reader.offset + length > end:
                raise WireError("EDNS option overruns rdata")
            options.append(EDNSOption(code, reader.read(length)))
        return cls(tuple(options))

    def to_text(self) -> str:
        return " ".join(f"opt{o.code}:{o.data.hex()}" for o in self.options) or ""


@dataclass(frozen=True)
class EDNSInfo:
    """Decoded view of an OPT record's fixed fields."""

    payload_size: int
    extended_rcode: int
    version: int
    dnssec_ok: bool
    options: tuple[EDNSOption, ...]


def add_edns(
    message: Message,
    payload_size: int = 1232,
    dnssec_ok: bool = False,
    options: tuple[EDNSOption, ...] = (),
) -> Message:
    """Append an OPT record to the additional section (idempotent)."""
    if get_edns(message) is not None:
        return message
    ttl = (0 << 24) | (0 << 16) | (0x8000 if dnssec_ok else 0)
    message.additionals.append(
        ResourceRecord(Name.root(), RRType.OPT, payload_size, ttl, OPT(options))
    )
    message.invalidate_wire()
    return message


def get_edns(message: Message) -> EDNSInfo | None:
    """Extract EDNS information from a message, if present."""
    for record in message.additionals:
        if int(record.rrtype) == int(RRType.OPT):
            opt = record.rdata if isinstance(record.rdata, OPT) else OPT(())
            return EDNSInfo(
                payload_size=int(record.rrclass),
                extended_rcode=(record.ttl >> 24) & 0xFF,
                version=(record.ttl >> 16) & 0xFF,
                dnssec_ok=bool(record.ttl & 0x8000),
                options=opt.options,
            )
    return None


def max_payload(message: Message) -> int:
    """Sender's advertised UDP payload size (512 without EDNS)."""
    info = get_edns(message)
    if info is None:
        return 512
    return max(512, info.payload_size)
