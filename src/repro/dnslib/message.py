"""DNS message encoding and decoding (RFC 1035 section 4)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .name import Name
from .rdata import RData, rdata_class
from .types import DNSClass, Opcode, Rcode, RRType
from .wire import WireError, WireReader, WireWriter

#: Classic maximum UDP payload without EDNS.
MAX_UDP_PAYLOAD = 512
#: EDNS payload size ZDNS advertises.
EDNS_UDP_PAYLOAD = 1232


@dataclass(frozen=True)
class Flags:
    """The header flag bits (RFC 1035 section 4.1.1, plus AD/CD)."""

    response: bool = False
    opcode: Opcode = Opcode.QUERY
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = False
    recursion_available: bool = False
    authenticated: bool = False  # AD
    checking_disabled: bool = False  # CD
    rcode: Rcode = Rcode.NOERROR

    def to_int(self) -> int:
        value = 0
        if self.response:
            value |= 0x8000
        value |= (int(self.opcode) & 0xF) << 11
        if self.authoritative:
            value |= 0x0400
        if self.truncated:
            value |= 0x0200
        if self.recursion_desired:
            value |= 0x0100
        if self.recursion_available:
            value |= 0x0080
        if self.authenticated:
            value |= 0x0020
        if self.checking_disabled:
            value |= 0x0010
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def from_int(cls, value: int) -> "Flags":
        opcode = (value >> 11) & 0xF
        rcode = value & 0xF
        try:
            opcode = Opcode(opcode)
        except ValueError:
            pass  # unassigned opcodes survive as raw integers
        try:
            rcode = Rcode(rcode)
        except ValueError:
            pass
        return cls(
            response=bool(value & 0x8000),
            opcode=opcode,
            authoritative=bool(value & 0x0400),
            truncated=bool(value & 0x0200),
            recursion_desired=bool(value & 0x0100),
            recursion_available=bool(value & 0x0080),
            authenticated=bool(value & 0x0020),
            checking_disabled=bool(value & 0x0010),
            rcode=rcode,
        )

    def to_json(self) -> dict:
        """ZDNS-format flags block (Appendix C)."""
        return {
            "response": self.response,
            "opcode": int(self.opcode),
            "authoritative": self.authoritative,
            "truncated": self.truncated,
            "recursion_desired": self.recursion_desired,
            "recursion_available": self.recursion_available,
            "authenticated": self.authenticated,
            "checking_disabled": self.checking_disabled,
            "error_code": int(self.rcode),
        }


@dataclass(frozen=True)
class Question:
    """A query triple."""

    name: Name
    rrtype: RRType
    rrclass: DNSClass = DNSClass.IN

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer.write_u16(int(self.rrtype))
        writer.write_u16(int(self.rrclass))

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        name = reader.read_name()
        rrtype = reader.read_u16()
        rrclass = reader.read_u16()
        try:
            rrtype = RRType(rrtype)
        except ValueError:
            pass  # keep the raw integer for unknown types
        try:
            rrclass = DNSClass(rrclass)
        except ValueError:
            pass
        return cls(name, rrtype, rrclass)

    def __str__(self) -> str:
        return f"{self.name.to_text()} {self.rrclass} {_type_text(self.rrtype)}"


def _type_text(rrtype: int) -> str:
    try:
        return RRType(rrtype).name
    except ValueError:
        return f"TYPE{int(rrtype)}"


def _class_text(rrclass: int) -> str:
    try:
        return DNSClass(rrclass).name
    except ValueError:
        return f"CLASS{int(rrclass)}"


@dataclass(frozen=True)
class ResourceRecord:
    """A decoded resource record."""

    name: Name
    rrtype: int
    rrclass: int
    ttl: int
    rdata: RData

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer.write_u16(int(self.rrtype))
        writer.write_u16(int(self.rrclass))
        writer.write_u32(self.ttl)
        length_offset = len(writer)
        writer.write_u16(0)
        start = len(writer)
        self.rdata.to_wire(writer)
        writer.patch_u16(length_offset, len(writer) - start)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        rrtype = reader.read_u16()
        rrclass = reader.read_u16()
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        end = reader.offset + rdlength
        rdata = rdata_class(rrtype).from_wire(reader, rdlength)
        if reader.offset != end:
            raise WireError(
                f"{_type_text(rrtype)} rdata decoded {reader.offset - (end - rdlength)} "
                f"of {rdlength} bytes"
            )
        try:
            rrtype = RRType(rrtype)
        except ValueError:
            pass
        return cls(name, rrtype, rrclass, ttl, rdata)

    def to_text(self) -> str:
        return (
            f"{self.name.to_text()} {self.ttl} {_class_text(self.rrclass)} "
            f"{_type_text(self.rrtype)} {self.rdata.to_text()}"
        )

    def to_json(self) -> dict:
        """ZDNS answer-format JSON record (Appendix C)."""
        return {
            "name": self.name.to_text(omit_final_dot=True),
            "type": _type_text(self.rrtype),
            "class": _class_text(self.rrclass),
            "ttl": self.ttl,
            "answer": self.rdata.zdns_answer(),
        }


@dataclass
class Message:
    """A complete DNS message."""

    id: int = 0
    flags: Flags = field(default_factory=Flags)
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)

    @classmethod
    def make_query(
        cls,
        name: Name | str,
        rrtype: RRType,
        rrclass: DNSClass = DNSClass.IN,
        txid: int = 0,
        recursion_desired: bool = True,
    ) -> "Message":
        if isinstance(name, str):
            name = Name.from_text(name)
        return cls(
            id=txid,
            flags=Flags(recursion_desired=recursion_desired),
            questions=[Question(name, rrtype, rrclass)],
        )

    def make_response(self, rcode: Rcode = Rcode.NOERROR, authoritative: bool = False) -> "Message":
        """Skeleton response echoing id and question."""
        return Message(
            id=self.id,
            flags=replace(
                self.flags,
                response=True,
                authoritative=authoritative,
                recursion_available=False,
                rcode=rcode,
            ),
            questions=list(self.questions),
        )

    @property
    def question(self) -> Question | None:
        return self.questions[0] if self.questions else None

    @property
    def rcode(self) -> Rcode:
        return self.flags.rcode

    def records(self):
        """All records across the three answer sections."""
        yield from self.answers
        yield from self.authorities
        yield from self.additionals

    def to_wire(self, max_size: int | None = None) -> bytes:
        """Encode; if ``max_size`` is given and exceeded, return a
        truncated message with TC=1 containing only the question."""
        writer = WireWriter()
        writer.write_u16(self.id)
        writer.write_u16(self.flags.to_int())
        writer.write_u16(len(self.questions))
        writer.write_u16(len(self.answers))
        writer.write_u16(len(self.authorities))
        writer.write_u16(len(self.additionals))
        for question in self.questions:
            question.to_wire(writer)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                record.to_wire(writer)
        wire = writer.getvalue()
        if max_size is not None and len(wire) > max_size:
            truncated = Message(
                id=self.id,
                flags=replace(self.flags, truncated=True),
                questions=list(self.questions),
            )
            return truncated.to_wire()
        return wire

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        if len(data) < 12:
            raise WireError(f"message shorter than header: {len(data)} bytes")
        msg_id = reader.read_u16()
        flags = Flags.from_int(reader.read_u16())
        counts = [reader.read_u16() for _ in range(4)]
        message = cls(id=msg_id, flags=flags)
        for _ in range(counts[0]):
            message.questions.append(Question.from_wire(reader))
        for section, count in zip(
            (message.answers, message.authorities, message.additionals), counts[1:]
        ):
            for _ in range(count):
                section.append(ResourceRecord.from_wire(reader))
        return message

    def to_text(self) -> str:
        """dig-style presentation, used by tests and debugging."""
        lines = [
            f";; opcode: {self.flags.opcode}, status: {self.rcode}, id: {self.id}",
            ";; QUESTION SECTION:",
        ]
        lines.extend(f";{q}" for q in self.questions)
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title} SECTION:")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)
