"""DNS message encoding and decoding (RFC 1035 section 4)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from functools import lru_cache

from .name import Name
from .rdata import RData, rdata_class
from .types import DNSClass, Opcode, Rcode, RRType
from .wire import WireError, WireReader, WireWriter

#: Classic maximum UDP payload without EDNS.
MAX_UDP_PAYLOAD = 512
#: EDNS payload size ZDNS advertises.
EDNS_UDP_PAYLOAD = 1232

_U16 = struct.Struct("!H")
_HEADER = struct.Struct("!HHHHHH")
_RR_FIXED = struct.Struct("!HHIH")  # TYPE, CLASS, TTL, RDLENGTH
_Q_FIXED = struct.Struct("!HH")  # QTYPE, QCLASS

# Known-value lookups; a plain dict probe replaces the try/except
# ``Enum(value)`` dance (which costs an exception on every unknown and
# a __call__ on every hit) on the decode path.
_RRTYPE_BY_INT = {int(t): t for t in RRType}
_CLASS_BY_INT = {int(c): c for c in DNSClass}
_OPCODE_BY_INT = {int(o): o for o in Opcode}
_RCODE_BY_INT = {int(r): r for r in Rcode}


@dataclass(frozen=True)
class Flags:
    """The header flag bits (RFC 1035 section 4.1.1, plus AD/CD)."""

    response: bool = False
    opcode: Opcode = Opcode.QUERY
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = False
    recursion_available: bool = False
    authenticated: bool = False  # AD
    checking_disabled: bool = False  # CD
    rcode: Rcode = Rcode.NOERROR

    def to_int(self) -> int:
        return _flags_to_int(self)

    @classmethod
    def from_int(cls, value: int) -> "Flags":
        return _flags_from_int(value & 0xFFFF)

    def to_json(self) -> dict:
        """ZDNS-format flags block (Appendix C)."""
        return {
            "response": self.response,
            "opcode": int(self.opcode),
            "authoritative": self.authoritative,
            "truncated": self.truncated,
            "recursion_desired": self.recursion_desired,
            "recursion_available": self.recursion_available,
            "authenticated": self.authenticated,
            "checking_disabled": self.checking_disabled,
            "error_code": int(self.rcode),
        }


class Question:
    """A query triple.

    Value-immutable by convention (instances are shared and hashed);
    a plain slotted class because scans construct one per packet and a
    frozen dataclass pays ``object.__setattr__`` per field."""

    __slots__ = ("name", "rrtype", "rrclass")

    def __init__(self, name: Name, rrtype: RRType, rrclass: DNSClass = DNSClass.IN):
        self.name = name
        self.rrtype = rrtype
        self.rrclass = rrclass

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Question:
            return (
                self.name == other.name
                and self.rrtype == other.rrtype
                and self.rrclass == other.rrclass
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.rrtype, self.rrclass))

    def __repr__(self) -> str:
        return f"Question(name={self.name!r}, rrtype={self.rrtype!r}, rrclass={self.rrclass!r})"

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer._buf += _Q_FIXED.pack(int(self.rrtype) & 0xFFFF, int(self.rrclass) & 0xFFFF)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        name = reader.read_name()
        reader._need(4)
        rrtype, rrclass = _Q_FIXED.unpack_from(reader.data, reader.offset)
        reader.offset += 4
        # unknown types/classes keep the raw integer
        return cls(
            name,
            _RRTYPE_BY_INT.get(rrtype, rrtype),
            _CLASS_BY_INT.get(rrclass, rrclass),
        )

    def __str__(self) -> str:
        return f"{self.name.to_text()} {self.rrclass} {_type_text(self.rrtype)}"


@lru_cache(maxsize=4096)
def _flags_to_int(flags: "Flags") -> int:
    # Flags is frozen (hashable by value), and scans reuse a handful of
    # distinct flag combinations millions of times.
    value = 0
    if flags.response:
        value |= 0x8000
    value |= (int(flags.opcode) & 0xF) << 11
    if flags.authoritative:
        value |= 0x0400
    if flags.truncated:
        value |= 0x0200
    if flags.recursion_desired:
        value |= 0x0100
    if flags.recursion_available:
        value |= 0x0080
    if flags.authenticated:
        value |= 0x0020
    if flags.checking_disabled:
        value |= 0x0010
    value |= int(flags.rcode) & 0xF
    return value


@lru_cache(maxsize=4096)
def _flags_from_int(value: int) -> Flags:
    opcode = (value >> 11) & 0xF
    rcode = value & 0xF
    # unassigned opcodes/rcodes survive as raw integers
    return Flags(
        response=bool(value & 0x8000),
        opcode=_OPCODE_BY_INT.get(opcode, opcode),
        authoritative=bool(value & 0x0400),
        truncated=bool(value & 0x0200),
        recursion_desired=bool(value & 0x0100),
        recursion_available=bool(value & 0x0080),
        authenticated=bool(value & 0x0020),
        checking_disabled=bool(value & 0x0010),
        rcode=_RCODE_BY_INT.get(rcode, rcode),
    )


def _type_text(rrtype: int) -> str:
    rrtype = _RRTYPE_BY_INT.get(int(rrtype), rrtype)
    if isinstance(rrtype, RRType):
        return rrtype.name
    return f"TYPE{int(rrtype)}"


def _class_text(rrclass: int) -> str:
    rrclass = _CLASS_BY_INT.get(int(rrclass), rrclass)
    if isinstance(rrclass, DNSClass):
        return rrclass.name
    return f"CLASS{int(rrclass)}"


class ResourceRecord:
    """A decoded resource record.

    Value-immutable by convention — decoders and zone synthesis share
    instances freely, so nothing may mutate one after construction."""

    __slots__ = ("name", "rrtype", "rrclass", "ttl", "rdata")

    def __init__(self, name: Name, rrtype: int, rrclass: int, ttl: int, rdata: RData):
        self.name = name
        self.rrtype = rrtype
        self.rrclass = rrclass
        self.ttl = ttl
        self.rdata = rdata

    def __eq__(self, other: object) -> bool:
        if other.__class__ is ResourceRecord:
            return (
                self.name == other.name
                and self.rrtype == other.rrtype
                and self.rrclass == other.rrclass
                and self.ttl == other.ttl
                and self.rdata == other.rdata
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.rrtype, self.rrclass, self.ttl, self.rdata))

    def __repr__(self) -> str:
        return (
            f"ResourceRecord(name={self.name!r}, rrtype={self.rrtype!r}, "
            f"rrclass={self.rrclass!r}, ttl={self.ttl!r}, rdata={self.rdata!r})"
        )

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        buf = writer._buf
        buf += _RR_FIXED.pack(
            int(self.rrtype) & 0xFFFF,
            int(self.rrclass) & 0xFFFF,
            self.ttl & 0xFFFFFFFF,
            0,  # RDLENGTH, patched below once the rdata is written
        )
        start = len(buf)
        self.rdata.to_wire(writer)
        writer.patch_u16(start - 2, len(buf) - start)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        reader._need(10)
        rrtype, rrclass, ttl, rdlength = _RR_FIXED.unpack_from(reader.data, reader.offset)
        reader.offset += 10
        end = reader.offset + rdlength
        rdata = rdata_class(rrtype).from_wire(reader, rdlength)
        if reader.offset != end:
            raise WireError(
                f"{_type_text(rrtype)} rdata decoded {reader.offset - (end - rdlength)} "
                f"of {rdlength} bytes"
            )
        return cls(name, _RRTYPE_BY_INT.get(rrtype, rrtype), rrclass, ttl, rdata)

    def to_text(self) -> str:
        return (
            f"{self.name.to_text()} {self.ttl} {_class_text(self.rrclass)} "
            f"{_type_text(self.rrtype)} {self.rdata.to_text()}"
        )

    def to_json(self) -> dict:
        """ZDNS answer-format JSON record (Appendix C)."""
        return {
            "name": self.name.to_text(omit_final_dot=True),
            "type": _type_text(self.rrtype),
            "class": _class_text(self.rrclass),
            "ttl": self.ttl,
            "answer": self.rdata.zdns_answer(),
        }


_QUERY_FLAGS_RD = Flags(recursion_desired=True)
_QUERY_FLAGS_NO_RD = Flags(recursion_desired=False)


@lru_cache(maxsize=65_536)
def _small_wire_template(flags_int: int, questions: tuple, additionals: tuple) -> bytes:
    """Encoded answerless message (query or empty response) with id=0.

    A scan's queries differ only in transaction id: same question, same
    flags, same shared OPT record.  Encoding the shape once and patching
    two id bytes per packet replaces the whole writer pass."""
    writer = WireWriter()
    writer.write(_HEADER.pack(0, flags_int, len(questions), 0, 0, len(additionals)))
    for question in questions:
        question.to_wire(writer)
    for record in additionals:
        record.to_wire(writer)
    return writer.getvalue()


@dataclass
class Message:
    """A complete DNS message."""

    id: int = 0
    flags: Flags = field(default_factory=Flags)
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)

    #: Memoised wire template from the last full (untruncated) encode.
    #: A class attribute rather than a dataclass field so that
    #: ``dataclasses.replace`` and copies never inherit stale bytes.
    #: Mutators (``add_edns``, section edits after encoding) must reset
    #: it to ``None``.
    _wire = None

    @classmethod
    def make_query(
        cls,
        name: Name | str,
        rrtype: RRType,
        rrclass: DNSClass = DNSClass.IN,
        txid: int = 0,
        recursion_desired: bool = True,
    ) -> "Message":
        if isinstance(name, str):
            name = Name.from_text(name)
        return cls(
            id=txid,
            flags=_QUERY_FLAGS_RD if recursion_desired else _QUERY_FLAGS_NO_RD,
            questions=[Question(name, rrtype, rrclass)],
        )

    def make_response(self, rcode: Rcode = Rcode.NOERROR, authoritative: bool = False) -> "Message":
        """Skeleton response echoing id and question."""
        code = int(rcode)
        if code & 0xF == code:
            # Derive the response flags through the cached int round-trip
            # (identical value to a dataclasses.replace, far cheaper on
            # the per-response hot path).
            value = _flags_to_int(self.flags) & ~0x048F
            if authoritative:
                value |= 0x0400
            flags = _flags_from_int(value | 0x8000 | code)
        else:  # extended rcodes keep the general path
            flags = replace(
                self.flags,
                response=True,
                authoritative=authoritative,
                recursion_available=False,
                rcode=rcode,
            )
        return Message(id=self.id, flags=flags, questions=list(self.questions))

    @property
    def question(self) -> Question | None:
        return self.questions[0] if self.questions else None

    @property
    def rcode(self) -> Rcode:
        return self.flags.rcode

    def records(self):
        """All records across the three answer sections."""
        yield from self.answers
        yield from self.authorities
        yield from self.additionals

    def to_wire(self, max_size: int | None = None) -> bytes:
        """Encode; if ``max_size`` is given and exceeded, return a
        truncated message with TC=1 containing only the question.

        Successful full encodes are memoised: re-encoding the same
        message (retries, memoised server responses) patches the two
        transaction-id bytes into the cached template instead of
        re-serialising every section."""
        wire = self._wire
        if wire is not None and (max_size is None or len(wire) <= max_size):
            head = _U16.pack(self.id & 0xFFFF)
            if wire[:2] != head:
                wire = head + wire[2:]
            return wire
        if not self.answers and not self.authorities:
            try:
                template = _small_wire_template(
                    _flags_to_int(self.flags), tuple(self.questions), tuple(self.additionals)
                )
            except TypeError:  # unhashable question/record content
                template = None
            if template is not None and (max_size is None or len(template) <= max_size):
                return _U16.pack(self.id & 0xFFFF) + template[2:]
        writer = WireWriter()
        writer.write(
            _HEADER.pack(
                self.id & 0xFFFF,
                _flags_to_int(self.flags),
                len(self.questions),
                len(self.answers),
                len(self.authorities),
                len(self.additionals),
            )
        )
        for question in self.questions:
            question.to_wire(writer)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                record.to_wire(writer)
        wire = writer.getvalue()
        if max_size is not None and len(wire) > max_size:
            truncated = Message(
                id=self.id,
                flags=_flags_from_int(_flags_to_int(self.flags) | 0x0200),
                questions=list(self.questions),
            )
            return truncated.to_wire()
        self._wire = wire
        return wire

    def invalidate_wire(self) -> None:
        """Drop the memoised encoding after mutating a section in place."""
        self._wire = None

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        if len(data) < 12:
            raise WireError(f"message shorter than header: {len(data)} bytes")
        reader = WireReader(data, offset=12)
        msg_id, raw_flags, qd, an, ns, ar = _HEADER.unpack_from(reader.data, 0)
        message = cls(id=msg_id, flags=_flags_from_int(raw_flags))
        for _ in range(qd):
            message.questions.append(Question.from_wire(reader))
        for section, count in zip(
            (message.answers, message.authorities, message.additionals), (an, ns, ar)
        ):
            for _ in range(count):
                section.append(ResourceRecord.from_wire(reader))
        return message

    def to_text(self) -> str:
        """dig-style presentation, used by tests and debugging."""
        lines = [
            f";; opcode: {self.flags.opcode}, status: {self.rcode}, id: {self.id}",
            ";; QUESTION SECTION:",
        ]
        lines.extend(f";{q}" for q in self.questions)
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title} SECTION:")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)
