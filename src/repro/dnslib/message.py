"""DNS message encoding and decoding (RFC 1035 section 4).

Decode hot path: :meth:`Message.from_wire` runs a single flat scan over
the packet (:func:`_scan`) that resolves every name through one shared
pointer-target memo and defers rdata materialisation where a cheap
structural validator proves deferral is safe — those records come back
as :class:`LazyResourceRecord` slice views that hydrate a full rdata
object on first attribute access (copy-on-hydrate: the scan pins a
private ``bytes`` copy of the packet, so views never alias a caller's
reusable buffer).  Identical packet tails (everything past the
transaction id) additionally hit a decode memo, so retry/echo-heavy
workloads skip the scan entirely.  Encode mirrors this with a full
message template memo: re-encoding a previously seen message shape is a
two-byte transaction-id patch.  :data:`CODEC_STATS` counts scans, memo
hits and hydrations; :func:`clear_codec_caches` empties every codec
memo for honest cold-path measurement."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from functools import lru_cache

from .name import Name
from .rdata import RData, rdata_class, registered_types
from .rdata.address import _a_instance
from .rdata.names import CNAME, NS, PTR, _single_name_instance
from .types import (
    CLASS_BY_INT as _CLASS_BY_INT,
    DNSClass,
    Opcode,
    OPCODE_BY_INT as _OPCODE_BY_INT,
    Rcode,
    RCODE_BY_INT as _RCODE_BY_INT,
    RRType,
    RRTYPE_BY_INT as _RRTYPE_BY_INT,
)
from .wire import TAINT_KEY, WireError, WireReader, WireWriter, decode_name_at

#: Classic maximum UDP payload without EDNS.
MAX_UDP_PAYLOAD = 512
#: EDNS payload size ZDNS advertises.
EDNS_UDP_PAYLOAD = 1232

_U16 = struct.Struct("!H")
_HEADER = struct.Struct("!HHHHHH")
_RR_FIXED = struct.Struct("!HHIH")  # TYPE, CLASS, TTL, RDLENGTH
_Q_FIXED = struct.Struct("!HH")  # QTYPE, QCLASS

#: Codec instrumentation.  ``decode_calls``/``encode_calls`` count API
#: entries; ``decode_scans``/``encode_serialises`` count the expensive
#: full passes actually performed (the difference is memo hits);
#: ``lazy_records`` / ``lazy_hydrations`` expose how much rdata work the
#: scan deferred and how much of it was ever paid for.
CODEC_STATS = {
    "decode_calls": 0,
    "decode_scans": 0,
    "encode_calls": 0,
    "encode_serialises": 0,
    "lazy_records": 0,
    "lazy_hydrations": 0,
}


@dataclass(frozen=True)
class Flags:
    """The header flag bits (RFC 1035 section 4.1.1, plus AD/CD)."""

    response: bool = False
    opcode: Opcode = Opcode.QUERY
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = False
    recursion_available: bool = False
    authenticated: bool = False  # AD
    checking_disabled: bool = False  # CD
    rcode: Rcode = Rcode.NOERROR

    def to_int(self) -> int:
        return _flags_to_int(self)

    @classmethod
    def from_int(cls, value: int) -> "Flags":
        return _flags_from_int(value & 0xFFFF)

    def to_json(self) -> dict:
        """ZDNS-format flags block (Appendix C)."""
        return {
            "response": self.response,
            "opcode": int(self.opcode),
            "authoritative": self.authoritative,
            "truncated": self.truncated,
            "recursion_desired": self.recursion_desired,
            "recursion_available": self.recursion_available,
            "authenticated": self.authenticated,
            "checking_disabled": self.checking_disabled,
            "error_code": int(self.rcode),
        }


class Question:
    """A query triple.

    Value-immutable by convention (instances are shared and hashed);
    a plain slotted class because scans construct one per packet and a
    frozen dataclass pays ``object.__setattr__`` per field."""

    __slots__ = ("name", "rrtype", "rrclass", "_hash")

    def __init__(self, name: Name, rrtype: RRType, rrclass: DNSClass = DNSClass.IN):
        self.name = name
        self.rrtype = rrtype
        self.rrclass = rrclass

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Question:
            return (
                self.name == other.name
                and self.rrtype == other.rrtype
                and self.rrclass == other.rrclass
            )
        return NotImplemented

    def __hash__(self) -> int:
        # cached: encode-template keys hash the same questions repeatedly
        try:
            return self._hash
        except AttributeError:
            value = self._hash = hash((self.name, self.rrtype, self.rrclass))
            return value

    def __repr__(self) -> str:
        return f"Question(name={self.name!r}, rrtype={self.rrtype!r}, rrclass={self.rrclass!r})"

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer._buf += _Q_FIXED.pack(int(self.rrtype) & 0xFFFF, int(self.rrclass) & 0xFFFF)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        name = reader.read_name()
        reader._need(4)
        rrtype, rrclass = _Q_FIXED.unpack_from(reader.data, reader.offset)
        reader.offset += 4
        # unknown types/classes keep the raw integer
        return cls(
            name,
            _RRTYPE_BY_INT.get(rrtype, rrtype),
            _CLASS_BY_INT.get(rrclass, rrclass),
        )

    def __str__(self) -> str:
        return f"{self.name.to_text()} {self.rrclass} {_type_text(self.rrtype)}"


@lru_cache(maxsize=4096)
def _flags_to_int(flags: "Flags") -> int:
    # Flags is frozen (hashable by value), and scans reuse a handful of
    # distinct flag combinations millions of times.
    value = 0
    if flags.response:
        value |= 0x8000
    value |= (int(flags.opcode) & 0xF) << 11
    if flags.authoritative:
        value |= 0x0400
    if flags.truncated:
        value |= 0x0200
    if flags.recursion_desired:
        value |= 0x0100
    if flags.recursion_available:
        value |= 0x0080
    if flags.authenticated:
        value |= 0x0020
    if flags.checking_disabled:
        value |= 0x0010
    value |= int(flags.rcode) & 0xF
    return value


@lru_cache(maxsize=4096)
def _flags_from_int(value: int) -> Flags:
    opcode = (value >> 11) & 0xF
    rcode = value & 0xF
    # unassigned opcodes/rcodes survive as raw integers
    return Flags(
        response=bool(value & 0x8000),
        opcode=_OPCODE_BY_INT.get(opcode, opcode),
        authoritative=bool(value & 0x0400),
        truncated=bool(value & 0x0200),
        recursion_desired=bool(value & 0x0100),
        recursion_available=bool(value & 0x0080),
        authenticated=bool(value & 0x0020),
        checking_disabled=bool(value & 0x0010),
        rcode=_RCODE_BY_INT.get(rcode, rcode),
    )


def _type_text(rrtype: int) -> str:
    rrtype = _RRTYPE_BY_INT.get(int(rrtype), rrtype)
    if isinstance(rrtype, RRType):
        return rrtype.name
    return f"TYPE{int(rrtype)}"


def _class_text(rrclass: int) -> str:
    rrclass = _CLASS_BY_INT.get(int(rrclass), rrclass)
    if isinstance(rrclass, DNSClass):
        return rrclass.name
    return f"CLASS{int(rrclass)}"


class ResourceRecord:
    """A decoded resource record.

    Value-immutable by convention — decoders and zone synthesis share
    instances freely, so nothing may mutate one after construction."""

    __slots__ = ("name", "rrtype", "rrclass", "ttl", "rdata", "_hash", "_fixed")

    def __init__(self, name: Name, rrtype: int, rrclass: int, ttl: int, rdata: RData):
        self.name = name
        self.rrtype = rrtype
        self.rrclass = rrclass
        self.ttl = ttl
        self.rdata = rdata

    def __eq__(self, other: object) -> bool:
        # isinstance, not exact class: LazyResourceRecord views must
        # compare equal to eagerly decoded records of the same value.
        if isinstance(other, ResourceRecord):
            return (
                self.name == other.name
                and self.rrtype == other.rrtype
                and self.rrclass == other.rrclass
                and self.ttl == other.ttl
                and self.rdata == other.rdata
            )
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = self._hash = hash(
                (self.name, self.rrtype, self.rrclass, self.ttl, self.rdata)
            )
            return value

    def __repr__(self) -> str:
        return (
            f"ResourceRecord(name={self.name!r}, rrtype={self.rrtype!r}, "
            f"rrclass={self.rrclass!r}, ttl={self.ttl!r}, rdata={self.rdata!r})"
        )

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        buf = writer._buf
        try:
            # type/class/ttl never change on a value-immutable record, so
            # the packed 10-byte prefix (RDLENGTH zeroed, patched below)
            # is computed once per instance — zone records re-encode into
            # thousands of responses
            buf += self._fixed
        except AttributeError:
            fixed = self._fixed = _RR_FIXED.pack(
                int(self.rrtype) & 0xFFFF,
                int(self.rrclass) & 0xFFFF,
                self.ttl & 0xFFFFFFFF,
                0,
            )
            buf += fixed
        start = len(buf)
        self.rdata.to_wire(writer)
        buf[start - 2 : start] = _U16.pack(len(buf) - start)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        reader._need(10)
        rrtype, rrclass, ttl, rdlength = _RR_FIXED.unpack_from(reader.data, reader.offset)
        reader.offset += 10
        end = reader.offset + rdlength
        rdata = rdata_class(rrtype).from_wire(reader, rdlength)
        if reader.offset != end:
            raise WireError(
                f"{_type_text(rrtype)} rdata decoded {reader.offset - (end - rdlength)} "
                f"of {rdlength} bytes"
            )
        return cls(name, _RRTYPE_BY_INT.get(rrtype, rrtype), rrclass, ttl, rdata)

    def to_text(self) -> str:
        return (
            f"{self.name.to_text()} {self.ttl} {_class_text(self.rrclass)} "
            f"{_type_text(self.rrtype)} {self.rdata.to_text()}"
        )

    def to_json(self) -> dict:
        """ZDNS answer-format JSON record (Appendix C)."""
        return {
            "name": self.name.to_text(omit_final_dot=True),
            "type": _type_text(self.rrtype),
            "class": _class_text(self.rrclass),
            "ttl": self.ttl,
            "answer": self.rdata.zdns_answer(),
        }


# --------------------------------------------------------------------------
# Lazy rdata: structural validators + slice-view records
#
# Deferring rdata decode must not change *when* malformed packets are
# rejected (live transports catch WireError at decode time; machine code
# does not), so a record is only deferred when a cheap validator proves
# its rdata cannot fail to hydrate.  Anything else decodes eagerly
# during the scan, preserving the exact accept/reject behaviour and
# error of the type's real ``from_wire``.

def _fixed_rdlength(expected: int):
    def validate(data: bytes, start: int, end: int) -> bool:
        return end - start == expected

    return validate


def _validate_char_strings(data: bytes, start: int, end: int) -> bool:
    # mirrors TextRData.from_wire: <character-string>s must exactly tile
    # the rdata (an empty rdata decodes to zero strings)
    cursor = start
    while cursor < end:
        cursor += 1 + data[cursor]
    return cursor == end


def _validate_opaque(data: bytes, start: int, end: int) -> bool:
    return True  # reads exactly rdlength bytes; cannot fail


#: type code -> validator returning True when hydration cannot raise.
_RDATA_VALIDATORS = {
    int(RRType.A): _fixed_rdlength(4),
    int(RRType.AAAA): _fixed_rdlength(16),
    int(RRType.EUI48): _fixed_rdlength(6),
    int(RRType.EUI64): _fixed_rdlength(8),
    int(RRType.NID): _fixed_rdlength(10),
    int(RRType.TXT): _validate_char_strings,
    int(RRType.SPF): _validate_char_strings,
    int(RRType.AVC): _validate_char_strings,
    int(RRType.NINFO): _validate_char_strings,
    int(RRType.NULL): _validate_opaque,
    int(RRType.UINFO): _validate_opaque,
    int(RRType.UID): _validate_opaque,
    int(RRType.GID): _validate_opaque,
    int(RRType.UNSPEC): _validate_opaque,
}

#: Types with a registered codec but no validator decode eagerly;
#: unregistered codes fall back to GenericRData, which is always safe.
_EAGER_TYPES = registered_types() - frozenset(_RDATA_VALIDATORS)

#: Single-name rdata the scan hydrates eagerly through the shared
#: per-target instance cache: consumers (delegation walking, CNAME
#: chasing) touch effectively every one of these, so deferral would
#: only add a wrapper to a name decode the pointer memo makes cheap.
_EAGER_NAME_CLASSES_GET = {
    int(RRType.NS): NS,
    int(RRType.CNAME): CNAME,
    int(RRType.PTR): PTR,
}.get


class LazyResourceRecord(ResourceRecord):
    """A scan row whose rdata stays raw packet bytes until first touched.

    Holds ``(type code, packet bytes, rdata start, rdlength, name memo)``
    in ``_ctx`` and hydrates through the normal rdata registry on first
    ``.rdata`` access, caching the result in the inherited slot.  The
    packet reference is a private immutable ``bytes`` (the scan
    normalises any buffer it is handed), so a transport reusing its
    receive buffer can never corrupt an unhydrated row."""

    __slots__ = ("_ctx",)

    def __init__(self, name: Name, rrtype, rrclass: int, ttl: int, ctx: tuple):
        self.name = name
        self.rrtype = rrtype
        self.rrclass = rrclass
        self.ttl = ttl
        self._ctx = ctx

    @property
    def rdata(self) -> RData:
        # _ctx is the raw (tuple) context until first access, then the
        # hydrated RData itself — no exception-based slot probing
        ctx = self._ctx
        if ctx.__class__ is not tuple:
            return ctx
        rrtype_int, data, start, rdlength, names = ctx
        reader = WireReader(data, start)
        reader._names = names
        value = rdata_class(rrtype_int).from_wire(reader, rdlength)
        self._ctx = value
        CODEC_STATS["lazy_hydrations"] += 1
        return value

    @property
    def hydrated(self) -> bool:
        """Whether rdata has been materialised (no side effects)."""
        return self._ctx.__class__ is not tuple

    def rdata_bytes(self) -> bytes:
        """The raw rdata slice (re-encoded if already hydrated)."""
        ctx = self._ctx
        if ctx.__class__ is tuple:
            _, data, start, rdlength, _ = ctx
            return data[start : start + rdlength]
        writer = WireWriter(enable_compression=False)
        ctx.to_wire(writer)
        return writer.getvalue()

    def __reduce__(self):
        # pickle/copy as a plain hydrated record: shipping the whole
        # packet + name memo across a process boundary would be worse
        return (ResourceRecord, (self.name, self.rrtype, self.rrclass, self.ttl, self.rdata))


# --------------------------------------------------------------------------
# Flat scan + decode memo

#: packet-tail (everything after the txid) -> decoded section tuples.
#: Records are value-immutable so hits share instances; the lists the
#: caller sees are rebuilt fresh per hit, so mutating a returned message
#: can never corrupt the memo.
#:
#: The memo is split by packet shape because the two regimes behave
#: nothing alike under scan traffic:
#:
#: * **query-shaped** (ANCOUNT == NSCOUNT == 0) — an iterative lookup
#:   sends the *same* query to every zone it walks, so each server-side
#:   decode after the first is a structural hit (~half the query-side
#:   probes on real resolution paths, where lookups average two to
#:   three hops) and each entry pins only a question and an OPT
#:   record.  Large cap, cleared when full: entries are tiny and the
#:   live working set is the in-flight lookups.  The gate bar is
#:   *high* despite the structural repetition: a query packet is a
#:   dozen-odd bytes of name plus one fixed question, so the scan a hit
#:   skips costs barely more than the probe + key + fresh-list rebuild
#:   the hit itself pays.  Interleaved A/B at scan scale showed a 52%
#:   query hit rate still losing to no memo at all; only near-universal
#:   repetition (repeated-corpus benchmarks, replay traffic) wins.
#: * **response-shaped** — a scan of distinct names almost never decodes
#:   the same response twice, and every stored entry pins a full record
#:   graph that the garbage collector walks for the rest of the run.
#:   The gc cost is invisible to per-operation accounting: a response
#:   memo with a 25% *overall* hit rate measured ~10% slower end to end
#:   at full scan scale than no memo at all.  So the response side is
#:   small and **stop-insert** (the hot set freezes instead of churning)
#:   and self-disables unless a probation window shows a majority of
#:   probes hitting — the regime repeated-packet workloads (benchmark
#:   corpora, zone reload storms, cached-response re-parsing) sit in at
#:   80%+.  :func:`clear_codec_caches` re-arms both sides.
_DECODE_MEMO_Q: dict[bytes, tuple] = {}
_DECODE_MEMO_Q_MAX = 8192
_DECODE_MEMO_R: dict[bytes, tuple] = {}
_DECODE_MEMO_R_MAX = 512
#: Only short (UDP-sized) packets are memo-eligible; giant TCP payloads
#: would bloat the memo for shapes that rarely repeat.
_DECODE_MEMO_WIRE_MAX = 2048

#: Short probation: the gates must decide before probe/store waste and
#: pinned-graph gc cost accumulate — 512 probes is plenty to tell a
#: repeated-corpus workload (~100% hits from the first probe) from a
#: scan of distinct names (~0–50%), and it bounds what a wrong guess
#: can ever cost.
_MEMO_PROBATION = 512
_MEMO_Q_MIN_HIT_RATE = 0.75
_MEMO_MIN_HIT_RATE = 0.5

_decode_memo_q_enabled = True
_decode_memo_q_probes = 0
_decode_memo_q_hits = 0
_decode_memo_r_enabled = True
_decode_memo_r_probes = 0
_decode_memo_r_hits = 0


def _scan(data: bytes):
    """One flat pass over a packet: header, then every entry in order,
    resolving all names through one shared pointer-target memo and
    emitting lazy slice views wherever a validator allows."""
    size = len(data)
    msg_id, raw_flags, qd, an, ns, ar = _HEADER.unpack_from(data, 0)
    names: dict[int, tuple[Name, int]] = {}
    offset = 12
    questions = []
    for _ in range(qd):
        name, offset = decode_name_at(data, offset, names)
        if offset + 4 > size:
            raise WireError(
                f"truncated packet: need 4 bytes at offset {offset}, have {size - offset}"
            )
        qtype, qclass = _Q_FIXED.unpack_from(data, offset)
        offset += 4
        questions.append(
            Question(
                name,
                _RRTYPE_BY_INT.get(qtype, qtype),
                _CLASS_BY_INT.get(qclass, qclass),
            )
        )
    answers: list[ResourceRecord] = []
    authorities: list[ResourceRecord] = []
    additionals: list[ResourceRecord] = []
    reader = None
    lazy = 0
    validators_get = _RDATA_VALIDATORS.get
    eager_types = _EAGER_TYPES
    for section, count in ((answers, an), (authorities, ns), (additionals, ar)):
        append = section.append
        for _ in range(count):
            name, offset = decode_name_at(data, offset, names)
            if offset + 10 > size:
                raise WireError(
                    f"truncated packet: need 10 bytes at offset {offset}, "
                    f"have {size - offset}"
                )
            rrtype, rrclass, ttl, rdlength = _RR_FIXED.unpack_from(data, offset)
            offset += 10
            end = offset + rdlength
            if end > size:
                raise WireError(
                    f"truncated packet: need {rdlength} rdata bytes at offset "
                    f"{offset}, have {size - offset}"
                )
            if rrtype == 1 and rdlength == 4:
                # A records dominate scan traffic and consumers almost
                # always read the address, so the lazy wrapper would be
                # pure overhead: hydrate straight from the shared
                # address-instance cache instead
                append(
                    ResourceRecord(
                        name, RRType.A, rrclass, ttl, _a_instance(data[offset:end])
                    )
                )
                offset = end
                continue
            name_cls = _EAGER_NAME_CLASSES_GET(rrtype)
            if name_cls is not None:
                # same reasoning for single-name rdata: every referral
                # consumer reads the NS/CNAME target, and the target is
                # usually a pointer into the shared name memo — decoding
                # it now is no dearer than building the deferred view
                target, after = decode_name_at(data, offset, names)
                if after != end:
                    raise WireError(
                        f"{_type_text(rrtype)} rdata decoded {after - offset} "
                        f"of {rdlength} bytes"
                    )
                append(
                    ResourceRecord(
                        name,
                        _RRTYPE_BY_INT.get(rrtype, rrtype),
                        rrclass,
                        ttl,
                        _single_name_instance(name_cls, target),
                    )
                )
                offset = end
                continue
            validator = validators_get(rrtype)
            if (validator is not None and validator(data, offset, end)) or (
                validator is None and rrtype not in eager_types
            ):
                append(
                    LazyResourceRecord(
                        name,
                        _RRTYPE_BY_INT.get(rrtype, rrtype),
                        rrclass,
                        ttl,
                        (rrtype, data, offset, rdlength, names),
                    )
                )
                lazy += 1
            else:
                if reader is None:
                    reader = WireReader(data)
                    reader._names = names
                reader.offset = offset
                rdata = rdata_class(rrtype).from_wire(reader, rdlength)
                if reader.offset != end:
                    raise WireError(
                        f"{_type_text(rrtype)} rdata decoded {reader.offset - offset} "
                        f"of {rdlength} bytes"
                    )
                append(
                    ResourceRecord(
                        name, _RRTYPE_BY_INT.get(rrtype, rrtype), rrclass, ttl, rdata
                    )
                )
            offset = end
    if lazy:
        CODEC_STATS["lazy_records"] += lazy
    return msg_id, raw_flags, questions, answers, authorities, additionals, names


def decode_many(buffers) -> list["Message"]:
    """Decode a batch of packets, amortising per-call dispatch.

    Bulk consumers (pipe-transport drains, AXFR streams, benchmarks)
    get one bound-method lookup for the whole batch and a list back in
    input order.  Malformed packets raise WireError exactly as
    :meth:`Message.from_wire` would — decode stops at the first bad
    buffer."""
    from_wire = Message.from_wire
    return [from_wire(buffer) for buffer in buffers]


def clear_codec_caches() -> None:
    """Empty every codec memo (decode tail memo + encode templates).

    Benchmarks call this to measure the honest cold path; steady-state
    behaviour is unaffected because entries rebuild on demand.  Also
    re-arms the adaptive hit-rate gates, so a memo that switched itself
    off under non-repeating traffic gets a fresh probation window."""
    global _decode_memo_q_enabled, _decode_memo_q_probes, _decode_memo_q_hits
    global _decode_memo_r_enabled, _decode_memo_r_probes, _decode_memo_r_hits
    global _template_memo_enabled, _template_memo_probes, _template_memo_hits
    _DECODE_MEMO_Q.clear()
    _DECODE_MEMO_R.clear()
    _TEMPLATE_MEMO.clear()
    _small_wire_template.cache_clear()
    _decode_memo_q_enabled = _decode_memo_r_enabled = _template_memo_enabled = True
    _decode_memo_q_probes = _decode_memo_q_hits = 0
    _decode_memo_r_probes = _decode_memo_r_hits = 0
    _template_memo_probes = _template_memo_hits = 0


def codec_memo_stats() -> dict:
    """Snapshot of the adaptive memo gates (probes, hits, on/off).

    Read-only companion to :data:`CODEC_STATS` for telemetry: the
    framework publishes these as gauges under the ``codec.*`` scope so
    an operator can see whether the self-disabling memos stayed on for
    this workload."""
    return {
        "decode_memo_q_enabled": int(_decode_memo_q_enabled),
        "decode_memo_q_probes": _decode_memo_q_probes,
        "decode_memo_q_hits": _decode_memo_q_hits,
        "decode_memo_r_enabled": int(_decode_memo_r_enabled),
        "decode_memo_r_probes": _decode_memo_r_probes,
        "decode_memo_r_hits": _decode_memo_r_hits,
        "template_memo_enabled": int(_template_memo_enabled),
        "template_memo_probes": _template_memo_probes,
        "template_memo_hits": _template_memo_hits,
    }


_QUERY_FLAGS_RD = Flags(recursion_desired=True)
_QUERY_FLAGS_NO_RD = Flags(recursion_desired=False)


#: (flags, section tuples) -> encoded template with id=0, for messages
#: that carry answers.  Two design points keep it from becoming the
#: scale liability a naive encode cache is:
#:
#: * **stop-insert, never clear-on-full** — once ``_TEMPLATE_MEMO_MAX``
#:   distinct shapes are stored the hot set is frozen.  Clearing on
#:   full looks harmless per-operation but at scan scale it wipes the
#:   popular entries over and over, so the memo churns at near-zero
#:   effective hit rate while pinning thousands of record graphs for
#:   the garbage collector to walk;
#: * **majority hit-rate gate** — a hit only saves one serialise while
#:   the probe builds and hashes a key spanning every section, so
#:   below ~50% hits the memo loses even though it "works" (measured:
#:   ~30% hits on simulated response traffic was a net ~7% end-to-end
#:   slowdown).  Scan traffic with mostly-distinct responses trips the
#:   gate and switches the memo off for the rest of the run.
#:
#: Query-shaped messages never reach it — ``_small_wire_template``
#: handles them with a cheap always-on key.
_TEMPLATE_MEMO: dict[tuple, bytes] = {}
_TEMPLATE_MEMO_MAX = 512
_TEMPLATE_MEMO_PROBATION = 512
_TEMPLATE_MEMO_MIN_HIT_RATE = 0.5

_template_memo_enabled = True
_template_memo_probes = 0
_template_memo_hits = 0


def _serialise_template(
    flags_int: int, questions, answers, authorities, additionals
) -> bytes:
    """One full writer pass: the encoded message with id=0."""
    CODEC_STATS["encode_serialises"] += 1
    writer = WireWriter()
    writer.write(
        _HEADER.pack(
            0, flags_int, len(questions), len(answers), len(authorities), len(additionals)
        )
    )
    for question in questions:
        question.to_wire(writer)
    for section in (answers, authorities, additionals):
        for record in section:
            record.to_wire(writer)
    return writer.getvalue()


@lru_cache(maxsize=65_536)
def _small_wire_template(flags_int: int, questions: tuple, additionals: tuple) -> bytes:
    """Encoded answerless message (query or empty response) with id=0.

    The query-shaped fast path stays on unconditionally: an iterative
    lookup re-encodes the *same* question for every zone it walks, so
    the hit rate is structurally high, and the key is one question plus
    a shared OPT record — cheap to hash even when it misses.  Messages
    carrying answers are deliberately *not* memoised by value: their
    keys would hash entire record sections (comparable to the serialise
    a hit saves) and the cached graphs become gc ballast at scan scale.
    Re-encoding the same response *object* is covered by the per-message
    ``_wire`` memo instead."""
    return _serialise_template(flags_int, questions, (), (), additionals)


@dataclass
class Message:
    """A complete DNS message."""

    id: int = 0
    flags: Flags = field(default_factory=Flags)
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)

    #: Memoised wire template from the last full (untruncated) encode.
    #: A class attribute rather than a dataclass field so that
    #: ``dataclasses.replace`` and copies never inherit stale bytes.
    #: Mutators (``add_edns``, section edits after encoding) must reset
    #: it to ``None``.
    _wire = None

    @classmethod
    def make_query(
        cls,
        name: Name | str,
        rrtype: RRType,
        rrclass: DNSClass = DNSClass.IN,
        txid: int = 0,
        recursion_desired: bool = True,
    ) -> "Message":
        if isinstance(name, str):
            name = Name.from_text(name)
        return cls(
            id=txid,
            flags=_QUERY_FLAGS_RD if recursion_desired else _QUERY_FLAGS_NO_RD,
            questions=[Question(name, rrtype, rrclass)],
        )

    def make_response(self, rcode: Rcode = Rcode.NOERROR, authoritative: bool = False) -> "Message":
        """Skeleton response echoing id and question."""
        code = int(rcode)
        if code & 0xF == code:
            # Derive the response flags through the cached int round-trip
            # (identical value to a dataclasses.replace, far cheaper on
            # the per-response hot path).
            value = _flags_to_int(self.flags) & ~0x048F
            if authoritative:
                value |= 0x0400
            flags = _flags_from_int(value | 0x8000 | code)
        else:  # extended rcodes keep the general path
            flags = replace(
                self.flags,
                response=True,
                authoritative=authoritative,
                recursion_available=False,
                rcode=rcode,
            )
        return Message(id=self.id, flags=flags, questions=list(self.questions))

    @property
    def question(self) -> Question | None:
        return self.questions[0] if self.questions else None

    @property
    def rcode(self) -> Rcode:
        return self.flags.rcode

    def records(self):
        """All records across the three answer sections."""
        yield from self.answers
        yield from self.authorities
        yield from self.additionals

    def to_wire(self, max_size: int | None = None) -> bytes:
        """Encode; if ``max_size`` is given and exceeded, return a
        truncated message with TC=1 containing only the question.

        Successful full encodes are memoised per message object: a
        retry of the same query or a server re-sending a cached
        response patches the two transaction-id bytes into the stored
        wire instead of re-serialising every section.  Equal-but-distinct
        objects share templates through :func:`_small_wire_template`
        (answerless shapes) and the bounded, self-disabling
        ``_TEMPLATE_MEMO`` (response shapes)."""
        global _template_memo_enabled, _template_memo_probes, _template_memo_hits
        CODEC_STATS["encode_calls"] += 1
        wire = self._wire
        if wire is not None and (max_size is None or len(wire) <= max_size):
            head = _U16.pack(self.id & 0xFFFF)
            if wire[:2] != head:
                wire = head + wire[2:]
            return wire
        if not self.answers and not self.authorities:
            try:
                template = _small_wire_template(
                    _flags_to_int(self.flags), tuple(self.questions), tuple(self.additionals)
                )
            except TypeError:  # unhashable question/record content
                template = None
            if template is not None and (max_size is None or len(template) <= max_size):
                return _U16.pack(self.id & 0xFFFF) + template[2:]
        template = None
        key = None
        if _template_memo_enabled:
            _template_memo_probes += 1
            try:
                key = (
                    _flags_to_int(self.flags),
                    tuple(self.questions),
                    tuple(self.answers),
                    tuple(self.authorities),
                    tuple(self.additionals),
                )
                template = _TEMPLATE_MEMO.get(key)
            except TypeError:  # unhashable question/record content
                key = None
            if template is not None:
                _template_memo_hits += 1
            elif (
                _template_memo_probes >= _TEMPLATE_MEMO_PROBATION
                and _template_memo_hits
                < _template_memo_probes * _TEMPLATE_MEMO_MIN_HIT_RATE
            ):
                # response shapes are not repeating: stop paying for the memo
                _template_memo_enabled = False
                _TEMPLATE_MEMO.clear()
                key = None
        if template is None:
            template = _serialise_template(
                _flags_to_int(self.flags),
                self.questions,
                self.answers,
                self.authorities,
                self.additionals,
            )
            if key is not None and len(_TEMPLATE_MEMO) < _TEMPLATE_MEMO_MAX:
                _TEMPLATE_MEMO[key] = template
        if max_size is not None and len(template) > max_size:
            truncated = Message(
                id=self.id,
                flags=_flags_from_int(_flags_to_int(self.flags) | 0x0200),
                questions=list(self.questions),
            )
            return truncated.to_wire()
        wire = _U16.pack(self.id & 0xFFFF) + template[2:]
        self._wire = wire
        return wire

    def invalidate_wire(self) -> None:
        """Drop the memoised encoding after mutating a section in place."""
        self._wire = None

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        global _decode_memo_q_enabled, _decode_memo_q_probes, _decode_memo_q_hits
        global _decode_memo_r_enabled, _decode_memo_r_probes, _decode_memo_r_hits
        stats = CODEC_STATS
        stats["decode_calls"] += 1
        if type(data) is not bytes:
            # one normalising copy up front: lazy views must reference
            # an immutable private buffer, never the caller's bytearray
            data = bytes(data)
        if len(data) < 12:
            raise WireError(f"message shorter than header: {len(data)} bytes")
        tail = None
        memo = None
        if len(data) <= _DECODE_MEMO_WIRE_MAX:
            # ANCOUNT/NSCOUNT zero -> query-shaped: the structurally hot
            # side of the split memo (same query decoded at every hop)
            if data[6:10] == b"\x00\x00\x00\x00":
                if _decode_memo_q_enabled:
                    memo = _DECODE_MEMO_Q
                    tail = data[2:]
                    hit = memo.get(tail)
                    _decode_memo_q_probes += 1
                    if hit is None and (
                        _decode_memo_q_probes >= _MEMO_PROBATION
                        and _decode_memo_q_hits
                        < _decode_memo_q_probes * _MEMO_Q_MIN_HIT_RATE
                    ):
                        _decode_memo_q_enabled = False
                        memo.clear()
                        tail = memo = None
                    elif hit is None and len(memo) >= _DECODE_MEMO_Q_MAX:
                        memo.clear()
            elif _decode_memo_r_enabled:
                memo = _DECODE_MEMO_R
                tail = data[2:]
                hit = memo.get(tail)
                _decode_memo_r_probes += 1
                if hit is None and (
                    _decode_memo_r_probes >= _MEMO_PROBATION
                    and _decode_memo_r_hits
                    < _decode_memo_r_probes * _MEMO_MIN_HIT_RATE
                ):
                    # responses are not repeating: stop paying for the
                    # probes and release the pinned record graphs
                    _decode_memo_r_enabled = False
                    memo.clear()
                    tail = memo = None
                elif hit is None and len(memo) >= _DECODE_MEMO_R_MAX:
                    # stop-insert: keep the frozen hot set, no churn
                    tail = memo = None
            if tail is not None and hit is not None:
                if memo is _DECODE_MEMO_Q:
                    _decode_memo_q_hits += 1
                else:
                    _decode_memo_r_hits += 1
                flags, questions, answers, authorities, additionals = hit
                return cls(
                    id=(data[0] << 8) | data[1],
                    flags=flags,
                    questions=list(questions),
                    answers=list(answers),
                    authorities=list(authorities),
                    additionals=list(additionals),
                )
        stats["decode_scans"] += 1
        msg_id, raw_flags, questions, answers, authorities, additionals, names = _scan(
            data
        )
        flags = _flags_from_int(raw_flags)
        if memo is not None and TAINT_KEY not in names:
            # tuples, not the live lists: callers may mutate the message
            memo[tail] = (
                flags,
                tuple(questions),
                tuple(answers),
                tuple(authorities),
                tuple(additionals),
            )
        return cls(
            id=msg_id,
            flags=flags,
            questions=questions,
            answers=answers,
            authorities=authorities,
            additionals=additionals,
        )

    def to_text(self) -> str:
        """dig-style presentation, used by tests and debugging."""
        lines = [
            f";; opcode: {self.flags.opcode}, status: {self.rcode}, id: {self.id}",
            ";; QUESTION SECTION:",
        ]
        lines.extend(f";{q}" for q in self.questions)
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title} SECTION:")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)
