"""Domain name handling.

Names are held as tuples of label byte-strings, excluding the root label.
Comparisons are case-insensitive per RFC 1035 section 2.3.3, but the
original spelling is preserved for output.
"""

from __future__ import annotations

from typing import Iterable, Iterator

MAX_NAME_LENGTH = 255
MAX_LABEL_LENGTH = 63


class NameError_(ValueError):
    """Raised for syntactically invalid domain names."""


class Name:
    """An absolute DNS domain name.

    >>> Name.from_text("WWW.Example.COM") == Name.from_text("www.example.com")
    True
    """

    __slots__ = ("labels", "_key", "_hash", "_text")

    def __init__(self, labels: Iterable[bytes]):
        labels = tuple(labels)
        total = 1  # trailing root byte
        for label in labels:
            if not label:
                raise NameError_("empty label")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {len(label)} bytes")
            total += len(label) + 1
        if total > MAX_NAME_LENGTH:
            raise NameError_(f"name too long: {total} bytes")
        self.labels = labels
        self._key = tuple(label.lower() for label in labels)
        self._hash = hash(self._key)
        self._text: str | None = None  # memoised presentation form

    @classmethod
    def root(cls) -> "Name":
        return _ROOT

    @classmethod
    def from_text(cls, text: str | bytes) -> "Name":
        """Parse a presentation-format name (``\\.`` escapes supported)."""
        if isinstance(text, str):
            text = text.encode("ascii", errors="strict")
        if text in (b"", b"."):
            return _ROOT
        if text.endswith(b"."):
            text = text[:-1]
        labels: list[bytes] = []
        current = bytearray()
        i = 0
        while i < len(text):
            char = text[i : i + 1]
            if char == b"\\":
                if i + 1 >= len(text):
                    raise NameError_("trailing escape")
                nxt = text[i + 1 : i + 2]
                if nxt.isdigit():
                    if i + 3 >= len(text):
                        raise NameError_("truncated decimal escape")
                    current.append(int(text[i + 1 : i + 4]))
                    i += 4
                else:
                    current += nxt
                    i += 2
                continue
            if char == b".":
                if not current:
                    raise NameError_(f"empty label in {text!r}")
                labels.append(bytes(current))
                current = bytearray()
            else:
                current += char
            i += 1
        if not current:
            raise NameError_(f"empty trailing label in {text!r}")
        labels.append(bytes(current))
        return cls(labels)

    def to_text(self, omit_final_dot: bool = False) -> str:
        if not self.labels:
            return "" if omit_final_dot else "."
        if self._text is None:
            parts = []
            for label in self.labels:
                out = []
                for byte in label:
                    char = bytes((byte,))
                    if char in b".\\":
                        out.append("\\" + char.decode())
                    elif 0x21 <= byte <= 0x7E:
                        out.append(char.decode("ascii"))
                    else:
                        out.append(f"\\{byte:03d}")
                parts.append("".join(out))
            self._text = ".".join(parts) + "."
        return self._text[:-1] if omit_final_dot else self._text

    @property
    def is_root(self) -> bool:
        return not self.labels

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self.labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._key == other._key

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering: compare label sequences right to left.
        return self._key[::-1] < other._key[::-1]

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    def parent(self) -> "Name":
        """The name with its leftmost label removed.

        >>> Name.from_text("a.b.com").parent()
        Name('b.com.')
        """
        if self.is_root:
            raise NameError_("root has no parent")
        return Name(self.labels[1:])

    def child(self, label: bytes | str) -> "Name":
        if isinstance(label, str):
            label = label.encode("ascii")
        return Name((label,) + self.labels)

    def concatenate(self, suffix: "Name") -> "Name":
        return Name(self.labels + suffix.labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` equals ``other`` or sits beneath it."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key) :] == other._key

    def relativize(self, origin: "Name") -> tuple[bytes, ...]:
        """Labels of ``self`` below ``origin`` (self must be a subdomain)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        count = len(self.labels) - len(origin.labels)
        return self.labels[:count]

    def ancestors(self) -> Iterator["Name"]:
        """Yield self, parent, ..., root."""
        name = self
        while True:
            yield name
            if name.is_root:
                return
            name = name.parent()

    def wire_length(self) -> int:
        """Uncompressed encoded size in bytes."""
        return 1 + sum(len(label) + 1 for label in self.labels)

    def canonical_key(self) -> tuple[bytes, ...]:
        """Lowercased labels; stable dictionary key for case-folded lookups."""
        return self._key


_ROOT = Name(())


def name_from_ipv4_ptr(address: str) -> Name:
    """Reverse-map an IPv4 dotted quad into in-addr.arpa.

    >>> name_from_ipv4_ptr("1.2.3.4").to_text()
    '4.3.2.1.in-addr.arpa.'
    """
    octets = address.split(".")
    if len(octets) != 4 or not all(o.isdigit() and 0 <= int(o) <= 255 for o in octets):
        raise NameError_(f"invalid IPv4 address {address!r}")
    labels = [o.encode("ascii") for o in reversed(octets)]
    labels += [b"in-addr", b"arpa"]
    return Name(labels)
