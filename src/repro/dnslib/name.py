"""Domain name handling.

Names are held as tuples of label byte-strings, excluding the root label.
Comparisons are case-insensitive per RFC 1035 section 2.3.3, but the
original spelling is preserved for output.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterable, Iterator

MAX_NAME_LENGTH = 255
MAX_LABEL_LENGTH = 63

#: Bytes that need escaping in presentation format: anything outside
#: the visible-ASCII range, plus the dot and backslash themselves.
_NEEDS_ESCAPE = re.compile(rb"[^!-~]|[.\\]")


class NameError_(ValueError):
    """Raised for syntactically invalid domain names."""


class Name:
    """An absolute DNS domain name.

    >>> Name.from_text("WWW.Example.COM") == Name.from_text("www.example.com")
    True
    """

    __slots__ = (
        "labels",
        "_key",
        "_hash",
        "_text",
        "_textn",
        "_ktext",
        "_enc",
        "_suffixes",
        "_wlen",
    )

    def __init__(self, labels: Iterable[bytes]):
        labels = tuple(labels)
        total = 1  # trailing root byte
        for label in labels:
            if not label:
                raise NameError_("empty label")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long: {len(label)} bytes")
            total += len(label) + 1
        if total > MAX_NAME_LENGTH:
            raise NameError_(f"name too long: {total} bytes")
        self.labels = labels
        self._key = tuple(label.lower() for label in labels)
        self._hash = hash(self._key)
        self._wlen = total
        self._text: str | None = None  # memoised presentation form
        self._textn: str | None = None  # ... without the final dot
        self._ktext: str | None = None  # ... lowered, for dict keys
        self._enc: tuple[bytes, ...] | None = None  # length-prefixed labels
        self._suffixes: tuple[tuple[bytes, ...], ...] | None = None

    @classmethod
    def root(cls) -> "Name":
        return _ROOT

    @classmethod
    def intern(cls, labels: tuple[bytes, ...]) -> "Name":
        """A shared, validated instance for ``labels``.

        Names are value-immutable, so the wire decoder and the zone
        machinery reuse one instance (with its memoised key/hash/text/
        encoding) instead of re-validating and re-lowercasing the same
        labels millions of times per scan."""
        return _interned(labels)

    @classmethod
    def from_text(cls, text: str | bytes) -> "Name":
        """Parse a presentation-format name (``\\.`` escapes supported).

        Parses are memoised: scan workloads hand the same nameserver
        and infrastructure names to this function constantly."""
        return _from_text(text)

    @classmethod
    def _parse_text(cls, text: str | bytes) -> "Name":
        if isinstance(text, str):
            text = text.encode("ascii", errors="strict")
        if text in (b"", b"."):
            return _ROOT
        if text.endswith(b"."):
            text = text[:-1]
        labels: list[bytes] = []
        current = bytearray()
        i = 0
        while i < len(text):
            char = text[i : i + 1]
            if char == b"\\":
                if i + 1 >= len(text):
                    raise NameError_("trailing escape")
                nxt = text[i + 1 : i + 2]
                if nxt.isdigit():
                    if i + 3 >= len(text):
                        raise NameError_("truncated decimal escape")
                    current.append(int(text[i + 1 : i + 4]))
                    i += 4
                else:
                    current += nxt
                    i += 2
                continue
            if char == b".":
                if not current:
                    raise NameError_(f"empty label in {text!r}")
                labels.append(bytes(current))
                current = bytearray()
            else:
                current += char
            i += 1
        if not current:
            raise NameError_(f"empty trailing label in {text!r}")
        labels.append(bytes(current))
        return cls(labels)

    def to_text(self, omit_final_dot: bool = False) -> str:
        if not self.labels:
            return "" if omit_final_dot else "."
        if self._text is None:
            parts = []
            for label in self.labels:
                if _NEEDS_ESCAPE.search(label) is None:
                    # hostname-style label: decode in one step
                    parts.append(label.decode("ascii"))
                    continue
                out = []
                for byte in label:
                    char = bytes((byte,))
                    if char in b".\\":
                        out.append("\\" + char.decode())
                    elif 0x21 <= byte <= 0x7E:
                        out.append(char.decode("ascii"))
                    else:
                        out.append(f"\\{byte:03d}")
                parts.append("".join(out))
            self._text = ".".join(parts) + "."
        if not omit_final_dot:
            return self._text
        text = self._textn
        if text is None:
            text = self._textn = self._text[:-1]
        return text

    def key_text(self) -> str:
        """Lowercased presentation form without the final dot, memoised —
        the zone synthesiser keys every deterministic draw on this."""
        text = self._ktext
        if text is None:
            text = self._ktext = self.to_text(omit_final_dot=True).lower()
        return text

    @property
    def is_root(self) -> bool:
        return not self.labels

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self.labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._key == other._key

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering: compare label sequences right to left.
        return self._key[::-1] < other._key[::-1]

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    def parent(self) -> "Name":
        """The name with its leftmost label removed.

        >>> Name.from_text("a.b.com").parent()
        Name('b.com.')
        """
        if self.is_root:
            raise NameError_("root has no parent")
        return _interned(self.labels[1:])

    def child(self, label: bytes | str) -> "Name":
        if isinstance(label, str):
            label = label.encode("ascii")
        return Name((label,) + self.labels)

    def concatenate(self, suffix: "Name") -> "Name":
        """``self`` + ``suffix``, memoised: zone parsing joins the same
        relative owner / origin pairs for every line of a bulk load."""
        # keyed on the raw label tuples, not the Names: Name hashing is
        # case-insensitive and the cache must preserve exact spelling
        return _concatenated(self.labels, suffix.labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` equals ``other`` or sits beneath it."""
        if len(other._key) > len(self._key):
            return False
        if not other._key:
            return True
        return self._key[-len(other._key) :] == other._key

    def relativize(self, origin: "Name") -> tuple[bytes, ...]:
        """Labels of ``self`` below ``origin`` (self must be a subdomain)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        count = len(self.labels) - len(origin.labels)
        return self.labels[:count]

    def ancestors(self) -> Iterator["Name"]:
        """Yield self, parent, ..., root."""
        name = self
        while True:
            yield name
            if name.is_root:
                return
            name = name.parent()

    def wire_length(self) -> int:
        """Uncompressed encoded size in bytes (computed on validation)."""
        return self._wlen

    def canonical_key(self) -> tuple[bytes, ...]:
        """Lowercased labels; stable dictionary key for case-folded lookups."""
        return self._key

    def encoded_labels(self) -> tuple[bytes, ...]:
        """Length-prefixed wire encoding of each label, memoised — the
        writer appends these single-pass instead of per-byte."""
        enc = self._enc
        if enc is None:
            enc = tuple(bytes((len(label),)) + label for label in self.labels)
            self._enc = enc
        return enc

    def suffix_keys(self) -> tuple[tuple[bytes, ...], ...]:
        """``canonical_key()[i:]`` for each label position, memoised —
        the compression map probes these without re-slicing per write."""
        suffixes = self._suffixes
        if suffixes is None:
            key = self._key
            suffixes = tuple(key[i:] for i in range(len(key)))
            self._suffixes = suffixes
        return suffixes


_ROOT = Name(())


@lru_cache(maxsize=131_072)
def _interned(labels: tuple[bytes, ...]) -> Name:
    return Name(labels)


@lru_cache(maxsize=65_536)
def _from_text(text: str | bytes) -> Name:
    return Name._parse_text(text)


@lru_cache(maxsize=65_536)
def _concatenated(prefix: tuple[bytes, ...], suffix: tuple[bytes, ...]) -> Name:
    return Name(prefix + suffix)


def name_from_ipv4_ptr(address: str) -> Name:
    """Reverse-map an IPv4 dotted quad into in-addr.arpa.

    >>> name_from_ipv4_ptr("1.2.3.4").to_text()
    '4.3.2.1.in-addr.arpa.'
    """
    octets = address.split(".")
    if len(octets) != 4 or not all(o.isdigit() and 0 <= int(o) <= 255 for o in octets):
        raise NameError_(f"invalid IPv4 address {address!r}")
    labels = [o.encode("ascii") for o in reversed(octets)]
    labels += [b"in-addr", b"arpa"]
    return Name(labels)
