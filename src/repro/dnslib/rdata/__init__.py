"""Record data (RDATA) codecs.

Every record type carries a small dataclass-like ``RData`` subclass that
knows how to encode itself to wire format, decode itself from a packet,
render presentation format, and export the ZDNS-style JSON ``answer``
value.  Unknown types fall back to :class:`GenericRData` (RFC 3597).
"""

from __future__ import annotations

import binascii
from typing import Callable, ClassVar, Type

from ..types import RRType
from ..wire import WireReader, WireWriter

_REGISTRY: dict[int, Type["RData"]] = {}


def register(rrtype: RRType) -> Callable[[Type["RData"]], Type["RData"]]:
    """Class decorator binding an RData subclass to its type code."""

    def bind(cls: Type["RData"]) -> Type["RData"]:
        cls.rrtype = rrtype
        _REGISTRY[int(rrtype)] = cls
        return cls

    return bind


def rdata_class(rrtype: int) -> Type["RData"]:
    """Look up the codec for a type code, falling back to GenericRData."""
    return _REGISTRY.get(int(rrtype), GenericRData)


def registered_types() -> frozenset[int]:
    """Type codes that have a dedicated RDATA codec."""
    return frozenset(_REGISTRY)


class RData:
    """Base class for decoded record data."""

    rrtype: ClassVar[RRType]
    __slots__ = ()

    def to_wire(self, writer: WireWriter) -> None:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "RData":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    def zdns_answer(self) -> object:
        """Value placed in the ``answer`` field of ZDNS JSON output."""
        return self.to_text()

    def _fields(self) -> tuple:
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._fields()))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{slot}={getattr(self, slot)!r}" for slot in self.__slots__)
        return f"{type(self).__name__}({pairs})"


class GenericRData(RData):
    """Opaque RDATA for types without a specific codec (RFC 3597)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes = b""):
        self.data = data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "GenericRData":
        return cls(reader.read(rdlength))

    def to_text(self) -> str:
        if not self.data:
            return r"\# 0"
        return rf"\# {len(self.data)} {binascii.hexlify(self.data).decode()}"


# Populate the registry by importing the codec modules for their side effects.
from . import address, dnssec, mail, misc, names, security, svcb, text  # noqa: E402,F401

__all__ = [
    "RData",
    "GenericRData",
    "register",
    "rdata_class",
    "registered_types",
]
