"""Record data (RDATA) codecs.

Every record type carries a small dataclass-like ``RData`` subclass that
knows how to encode itself to wire format, decode itself from a packet,
render presentation format, and export the ZDNS-style JSON ``answer``
value.  Unknown types fall back to :class:`GenericRData` (RFC 3597).
"""

from __future__ import annotations

import binascii
from typing import Callable, ClassVar, Type

from ..types import RRType
from ..wire import WireReader, WireWriter

_REGISTRY: dict[int, Type["RData"]] = {}


def register(rrtype: RRType) -> Callable[[Type["RData"]], Type["RData"]]:
    """Class decorator binding an RData subclass to its type code."""

    def bind(cls: Type["RData"]) -> Type["RData"]:
        cls.rrtype = rrtype
        _REGISTRY[int(rrtype)] = cls
        return cls

    return bind


def rdata_class(rrtype: int) -> Type["RData"]:
    """Look up the codec for a type code, falling back to GenericRData."""
    return _REGISTRY.get(int(rrtype), GenericRData)


def registered_types() -> frozenset[int]:
    """Type codes that have a dedicated RDATA codec."""
    return frozenset(_REGISTRY)


#: class -> value-field names, in MRO definition order.  ``__slots__`` on
#: the *leaf* class is empty for most registered types (NS, TXT, MX, ...
#: inherit their fields), so equality must walk every class in the MRO
#: rather than read ``self.__slots__`` directly.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    seen: list[str] = []
    for klass in reversed(cls.__mro__):
        for slot in klass.__dict__.get("__slots__", ()):
            if slot != "_hash" and slot not in seen:
                seen.append(slot)
    names = tuple(seen)
    _FIELD_NAMES[cls] = names
    return names


class RData:
    """Base class for decoded record data."""

    rrtype: ClassVar[RRType]
    #: Value-immutable by convention, so the hash is computed once and
    #: cached (encode templates hash whole record tuples per message).
    __slots__ = ("_hash",)

    def to_wire(self, writer: WireWriter) -> None:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "RData":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    def zdns_answer(self) -> object:
        """Value placed in the ``answer`` field of ZDNS JSON output."""
        return self.to_text()

    def _fields(self) -> tuple:
        cls = type(self)
        names = _FIELD_NAMES.get(cls)
        if names is None:
            names = _field_names(cls)
        return tuple(getattr(self, name) for name in names)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = self._hash = hash((type(self).__name__, self._fields()))
            return value

    def __repr__(self) -> str:
        cls = type(self)
        names = _FIELD_NAMES.get(cls)
        if names is None:
            names = _field_names(cls)
        pairs = ", ".join(f"{name}={getattr(self, name)!r}" for name in names)
        return f"{cls.__name__}({pairs})"


class GenericRData(RData):
    """Opaque RDATA for types without a specific codec (RFC 3597)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes = b""):
        self.data = data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "GenericRData":
        return cls(reader.read(rdlength))

    def to_text(self) -> str:
        if not self.data:
            return r"\# 0"
        return rf"\# {len(self.data)} {binascii.hexlify(self.data).decode()}"


# Populate the registry by importing the codec modules for their side effects.
from . import address, dnssec, mail, misc, names, security, svcb, text  # noqa: E402,F401

__all__ = [
    "RData",
    "GenericRData",
    "register",
    "rdata_class",
    "registered_types",
]
