"""Shared helpers for RDATA codecs."""

from __future__ import annotations

import base64
import binascii
import ipaddress
from functools import lru_cache

from ..wire import WireError, WireReader, WireWriter

# Address conversions are memoised: a scan touches the same server and
# glue addresses millions of times, and ``ipaddress`` object churn was a
# measurable slice of encode/decode profiles.


#: Every canonical octet spelling; probing this rejects leading zeros,
#: signs, whitespace, and out-of-range values in one dict hit.
_OCTETS = {str(i): i for i in range(256)}


@lru_cache(maxsize=65_536)
def ipv4_to_bytes(text: str) -> bytes:
    # Fast strict parse for the canonical dotted quads the simulator
    # generates; anything unusual (shorthand, leading zeros, garbage)
    # falls through to ipaddress for identical validation errors.
    parts = text.split(".")
    if len(parts) == 4:
        octets = _OCTETS
        try:
            return bytes(
                (octets[parts[0]], octets[parts[1]], octets[parts[2]], octets[parts[3]])
            )
        except KeyError:
            pass
    return ipaddress.IPv4Address(text).packed


@lru_cache(maxsize=65_536)
def bytes_to_ipv4(data: bytes) -> str:
    if len(data) != 4:
        raise WireError(f"A record rdata must be 4 bytes, got {len(data)}")
    return "%d.%d.%d.%d" % (data[0], data[1], data[2], data[3])


@lru_cache(maxsize=65_536)
def normalize_ipv4(text: str) -> str:
    """Canonical presentation of ``text`` (one cache probe on the A/L32
    construction path instead of a parse + format pair)."""
    return bytes_to_ipv4(ipv4_to_bytes(text))


@lru_cache(maxsize=16_384)
def ipv6_to_bytes(text: str) -> bytes:
    return ipaddress.IPv6Address(text).packed


@lru_cache(maxsize=16_384)
def normalize_ipv6(text: str) -> str:
    return bytes_to_ipv6(ipv6_to_bytes(text))


@lru_cache(maxsize=16_384)
def bytes_to_ipv6(data: bytes) -> str:
    if len(data) != 16:
        raise WireError(f"AAAA record rdata must be 16 bytes, got {len(data)}")
    return str(ipaddress.IPv6Address(data))


def write_character_string(writer: WireWriter, value: bytes) -> None:
    """Write a <character-string>: one length octet then the bytes."""
    if len(value) > 255:
        raise ValueError(f"character-string too long: {len(value)}")
    writer.write_u8(len(value))
    writer.write(value)


def read_character_string(reader: WireReader) -> bytes:
    return reader.read(reader.read_u8())


def quote_text(value: bytes) -> str:
    """Render a character-string in presentation format with quotes."""
    out = ['"']
    for byte in value:
        char = bytes((byte,))
        if char in b'"\\':
            out.append("\\" + char.decode())
        elif 0x20 <= byte <= 0x7E:
            out.append(char.decode("ascii"))
        else:
            out.append(f"\\{byte:03d}")
    out.append('"')
    return "".join(out)


def encode_type_bitmap(types: tuple[int, ...]) -> bytes:
    """RFC 4034 section 4.1.2 windowed type bitmap."""
    out = bytearray()
    windows: dict[int, bytearray] = {}
    for rrtype in sorted(set(int(t) for t in types)):
        window, low = divmod(rrtype, 256)
        bitmap = windows.setdefault(window, bytearray())
        byte_index, bit = divmod(low, 8)
        while len(bitmap) <= byte_index:
            bitmap.append(0)
        bitmap[byte_index] |= 0x80 >> bit
    for window in sorted(windows):
        bitmap = windows[window]
        out.append(window)
        out.append(len(bitmap))
        out += bitmap
    return bytes(out)


def decode_type_bitmap(data: bytes) -> tuple[int, ...]:
    types: list[int] = []
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise WireError("truncated type bitmap header")
        window = data[offset]
        length = data[offset + 1]
        offset += 2
        if length == 0 or length > 32 or offset + length > len(data):
            raise WireError("invalid type bitmap block")
        for byte_index in range(length):
            byte = data[offset + byte_index]
            for bit in range(8):
                if byte & (0x80 >> bit):
                    types.append(window * 256 + byte_index * 8 + bit)
        offset += length
    return tuple(types)


def b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def unb64(text: str) -> bytes:
    return base64.b64decode(text)


def hexlify(data: bytes) -> str:
    return binascii.hexlify(data).decode("ascii").upper()
