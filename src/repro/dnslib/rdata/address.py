"""Address-carrying record types: A, AAAA, and the ILNP family
(NID/L32/L64/LP), plus EUI48/EUI64, ATMA, and EID."""

from __future__ import annotations

import binascii
from functools import lru_cache

from ..name import Name
from ..types import RRType
from ..wire import WireError, WireReader, WireWriter
from . import RData, register
from ._util import (
    bytes_to_ipv4,
    bytes_to_ipv6,
    ipv4_to_bytes,
    ipv6_to_bytes,
    normalize_ipv4,
    normalize_ipv6,
)


@register(RRType.A)
class A(RData):
    """IPv4 host address (RFC 1035)."""

    __slots__ = ("address",)

    def __init__(self, address: str):
        self.address = normalize_ipv4(address)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(ipv4_to_bytes(self.address))

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "A":
        if rdlength != 4:
            raise WireError(f"A rdlength {rdlength} != 4")
        # scans see the same server/glue addresses constantly; rdata is
        # value-immutable, so share one instance per address
        return _a_instance(reader.read(4))

    def to_text(self) -> str:
        return self.address


@lru_cache(maxsize=65_536)
def _a_instance(data: bytes) -> "A":
    return A(bytes_to_ipv4(data))


@register(RRType.AAAA)
class AAAA(RData):
    """IPv6 host address (RFC 3596)."""

    __slots__ = ("address",)

    def __init__(self, address: str):
        self.address = normalize_ipv6(address)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(ipv6_to_bytes(self.address))

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise WireError(f"AAAA rdlength {rdlength} != 16")
        return cls(bytes_to_ipv6(reader.read(16)))

    def to_text(self) -> str:
        return self.address


@register(RRType.NID)
class NID(RData):
    """ILNP node identifier (RFC 6742)."""

    __slots__ = ("preference", "node_id")

    def __init__(self, preference: int, node_id: bytes):
        if len(node_id) != 8:
            raise ValueError("NID node_id must be 8 bytes")
        self.preference = preference
        self.node_id = node_id

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write(self.node_id)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NID":
        if rdlength != 10:
            raise WireError(f"NID rdlength {rdlength} != 10")
        return cls(reader.read_u16(), reader.read(8))

    def to_text(self) -> str:
        groups = binascii.hexlify(self.node_id).decode()
        formatted = ":".join(groups[i : i + 4] for i in range(0, 16, 4))
        return f"{self.preference} {formatted}"


@register(RRType.L32)
class L32(RData):
    """ILNP 32-bit locator (RFC 6742)."""

    __slots__ = ("preference", "locator")

    def __init__(self, preference: int, locator: str):
        self.preference = preference
        self.locator = normalize_ipv4(locator)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write(ipv4_to_bytes(self.locator))

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "L32":
        if rdlength != 6:
            raise WireError(f"L32 rdlength {rdlength} != 6")
        return cls(reader.read_u16(), bytes_to_ipv4(reader.read(4)))

    def to_text(self) -> str:
        return f"{self.preference} {self.locator}"


@register(RRType.L64)
class L64(RData):
    """ILNP 64-bit locator (RFC 6742)."""

    __slots__ = ("preference", "locator")

    def __init__(self, preference: int, locator: bytes):
        if len(locator) != 8:
            raise ValueError("L64 locator must be 8 bytes")
        self.preference = preference
        self.locator = locator

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write(self.locator)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "L64":
        if rdlength != 10:
            raise WireError(f"L64 rdlength {rdlength} != 10")
        return cls(reader.read_u16(), reader.read(8))

    def to_text(self) -> str:
        groups = binascii.hexlify(self.locator).decode()
        formatted = ":".join(groups[i : i + 4] for i in range(0, 16, 4))
        return f"{self.preference} {formatted}"


@register(RRType.LP)
class LP(RData):
    """ILNP locator pointer (RFC 6742)."""

    __slots__ = ("preference", "fqdn")

    def __init__(self, preference: int, fqdn: Name):
        self.preference = preference
        self.fqdn = fqdn

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write_name(self.fqdn, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "LP":
        return cls(reader.read_u16(), reader.read_name())

    def to_text(self) -> str:
        return f"{self.preference} {self.fqdn.to_text()}"


@register(RRType.EUI48)
class EUI48(RData):
    """48-bit extended unique identifier (RFC 7043)."""

    __slots__ = ("eui",)

    def __init__(self, eui: bytes):
        if len(eui) != 6:
            raise ValueError("EUI48 must be 6 bytes")
        self.eui = eui

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.eui)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "EUI48":
        if rdlength != 6:
            raise WireError(f"EUI48 rdlength {rdlength} != 6")
        return cls(reader.read(6))

    def to_text(self) -> str:
        return "-".join(f"{b:02x}" for b in self.eui)


@register(RRType.EUI64)
class EUI64(RData):
    """64-bit extended unique identifier (RFC 7043)."""

    __slots__ = ("eui",)

    def __init__(self, eui: bytes):
        if len(eui) != 8:
            raise ValueError("EUI64 must be 8 bytes")
        self.eui = eui

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.eui)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "EUI64":
        if rdlength != 8:
            raise WireError(f"EUI64 rdlength {rdlength} != 8")
        return cls(reader.read(8))

    def to_text(self) -> str:
        return "-".join(f"{b:02x}" for b in self.eui)


@register(RRType.ATMA)
class ATMA(RData):
    """ATM address (AF-DANS-0152)."""

    __slots__ = ("format", "address")

    def __init__(self, format: int, address: bytes):
        self.format = format
        self.address = address

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(self.format)
        writer.write(self.address)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "ATMA":
        if rdlength < 1:
            raise WireError("ATMA rdata empty")
        return cls(reader.read_u8(), reader.read(rdlength - 1))

    def to_text(self) -> str:
        return binascii.hexlify(self.address).decode()


@register(RRType.EID)
class EID(RData):
    """Nimrod endpoint identifier (draft; opaque hex payload)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "EID":
        return cls(reader.read(rdlength))

    def to_text(self) -> str:
        return binascii.hexlify(self.data).decode()


@register(RRType.NIMLOC)
class NIMLOC(RData):
    """Nimrod locator (draft; opaque hex payload)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NIMLOC":
        return cls(reader.read(rdlength))

    def to_text(self) -> str:
        return binascii.hexlify(self.data).decode()
