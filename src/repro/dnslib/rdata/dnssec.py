"""DNSSEC-related record types: DNSKEY/CDNSKEY/KEY, DS/CDS, RRSIG/SIG,
NSEC, NSEC3, NSEC3PARAM, NXT and CSYNC."""

from __future__ import annotations

import base64
import binascii

from ..name import Name
from ..types import RRType
from ..wire import WireError, WireReader, WireWriter
from . import RData, register
from ._util import decode_type_bitmap, encode_type_bitmap


def _type_names(codes: tuple[int, ...]) -> str:
    names = []
    for code in codes:
        try:
            names.append(RRType(code).name)
        except ValueError:
            names.append(f"TYPE{code}")
    return " ".join(names)


class KeyRData(RData):
    """DNSKEY-shaped records: flags, protocol, algorithm, key bytes."""

    __slots__ = ("flags", "protocol", "algorithm", "public_key")

    def __init__(self, flags: int, protocol: int, algorithm: int, public_key: bytes):
        self.flags = flags
        self.protocol = protocol
        self.algorithm = algorithm
        self.public_key = public_key

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.flags)
        writer.write_u8(self.protocol)
        writer.write_u8(self.algorithm)
        writer.write(self.public_key)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        if rdlength < 4:
            raise WireError("key rdata too short")
        return cls(reader.read_u16(), reader.read_u8(), reader.read_u8(), reader.read(rdlength - 4))

    def to_text(self) -> str:
        key = base64.b64encode(self.public_key).decode("ascii")
        return f"{self.flags} {self.protocol} {self.algorithm} {key}"

    def zdns_answer(self) -> object:
        return {
            "flags": self.flags,
            "protocol": self.protocol,
            "algorithm": self.algorithm,
            "public_key": base64.b64encode(self.public_key).decode("ascii"),
        }


@register(RRType.DNSKEY)
class DNSKEY(KeyRData):
    """DNS public key (RFC 4034)."""

    __slots__ = ()


@register(RRType.CDNSKEY)
class CDNSKEY(KeyRData):
    """Child copy of DNSKEY for delegation maintenance (RFC 7344)."""

    __slots__ = ()


@register(RRType.KEY)
class KEY(KeyRData):
    """Legacy security key (RFC 2535)."""

    __slots__ = ()


class DelegationSignerRData(RData):
    """DS-shaped records: key tag, algorithm, digest type, digest."""

    __slots__ = ("key_tag", "algorithm", "digest_type", "digest")

    def __init__(self, key_tag: int, algorithm: int, digest_type: int, digest: bytes):
        self.key_tag = key_tag
        self.algorithm = algorithm
        self.digest_type = digest_type
        self.digest = digest

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.key_tag)
        writer.write_u8(self.algorithm)
        writer.write_u8(self.digest_type)
        writer.write(self.digest)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        if rdlength < 4:
            raise WireError("DS rdata too short")
        return cls(reader.read_u16(), reader.read_u8(), reader.read_u8(), reader.read(rdlength - 4))

    def to_text(self) -> str:
        return (
            f"{self.key_tag} {self.algorithm} {self.digest_type} "
            f"{binascii.hexlify(self.digest).decode().upper()}"
        )


@register(RRType.DS)
class DS(DelegationSignerRData):
    """Delegation signer (RFC 4034)."""

    __slots__ = ()


@register(RRType.CDS)
class CDS(DelegationSignerRData):
    """Child copy of DS (RFC 7344)."""

    __slots__ = ()


class SignatureRData(RData):
    """RRSIG/SIG shape (RFC 4034 section 3)."""

    __slots__ = (
        "type_covered",
        "algorithm",
        "labels",
        "original_ttl",
        "expiration",
        "inception",
        "key_tag",
        "signer",
        "signature",
    )

    def __init__(
        self,
        type_covered: int,
        algorithm: int,
        labels: int,
        original_ttl: int,
        expiration: int,
        inception: int,
        key_tag: int,
        signer: Name,
        signature: bytes,
    ):
        self.type_covered = type_covered
        self.algorithm = algorithm
        self.labels = labels
        self.original_ttl = original_ttl
        self.expiration = expiration
        self.inception = inception
        self.key_tag = key_tag
        self.signer = signer
        self.signature = signature

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.type_covered)
        writer.write_u8(self.algorithm)
        writer.write_u8(self.labels)
        writer.write_u32(self.original_ttl)
        writer.write_u32(self.expiration)
        writer.write_u32(self.inception)
        writer.write_u16(self.key_tag)
        writer.write_name(self.signer, compress=False)
        writer.write(self.signature)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        end = reader.offset + rdlength
        type_covered = reader.read_u16()
        algorithm = reader.read_u8()
        labels = reader.read_u8()
        original_ttl = reader.read_u32()
        expiration = reader.read_u32()
        inception = reader.read_u32()
        key_tag = reader.read_u16()
        signer = reader.read_name()
        if reader.offset > end:
            raise WireError("RRSIG signer overruns rdlength")
        signature = reader.read(end - reader.offset)
        return cls(
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer,
            signature,
        )

    def to_text(self) -> str:
        covered = _type_names((self.type_covered,))
        sig = base64.b64encode(self.signature).decode("ascii")
        return (
            f"{covered} {self.algorithm} {self.labels} {self.original_ttl} "
            f"{self.expiration} {self.inception} {self.key_tag} "
            f"{self.signer.to_text()} {sig}"
        )


@register(RRType.RRSIG)
class RRSIG(SignatureRData):
    """Resource record signature (RFC 4034)."""

    __slots__ = ()


@register(RRType.SIG)
class SIG(SignatureRData):
    """Legacy signature (RFC 2535)."""

    __slots__ = ()


@register(RRType.NSEC)
class NSEC(RData):
    """Authenticated denial of existence (RFC 4034)."""

    __slots__ = ("next_name", "types")

    def __init__(self, next_name: Name, types: tuple[int, ...]):
        self.next_name = next_name
        self.types = tuple(sorted(set(int(t) for t in types)))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.next_name, compress=False)
        writer.write(encode_type_bitmap(self.types))

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NSEC":
        end = reader.offset + rdlength
        next_name = reader.read_name()
        if reader.offset > end:
            raise WireError("NSEC name overruns rdlength")
        types = decode_type_bitmap(reader.read(end - reader.offset))
        return cls(next_name, types)

    def to_text(self) -> str:
        return f"{self.next_name.to_text()} {_type_names(self.types)}".rstrip()


@register(RRType.NSEC3)
class NSEC3(RData):
    """Hashed authenticated denial of existence (RFC 5155)."""

    __slots__ = ("hash_algorithm", "flags", "iterations", "salt", "next_hashed", "types")

    def __init__(
        self,
        hash_algorithm: int,
        flags: int,
        iterations: int,
        salt: bytes,
        next_hashed: bytes,
        types: tuple[int, ...],
    ):
        self.hash_algorithm = hash_algorithm
        self.flags = flags
        self.iterations = iterations
        self.salt = salt
        self.next_hashed = next_hashed
        self.types = tuple(sorted(set(int(t) for t in types)))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(self.hash_algorithm)
        writer.write_u8(self.flags)
        writer.write_u16(self.iterations)
        writer.write_u8(len(self.salt))
        writer.write(self.salt)
        writer.write_u8(len(self.next_hashed))
        writer.write(self.next_hashed)
        writer.write(encode_type_bitmap(self.types))

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NSEC3":
        end = reader.offset + rdlength
        hash_algorithm = reader.read_u8()
        flags = reader.read_u8()
        iterations = reader.read_u16()
        salt = reader.read(reader.read_u8())
        next_hashed = reader.read(reader.read_u8())
        if reader.offset > end:
            raise WireError("NSEC3 fields overrun rdlength")
        types = decode_type_bitmap(reader.read(end - reader.offset))
        return cls(hash_algorithm, flags, iterations, salt, next_hashed, types)

    def to_text(self) -> str:
        salt = binascii.hexlify(self.salt).decode().upper() if self.salt else "-"
        nxt = base64.b32encode(self.next_hashed).decode("ascii").rstrip("=")
        return (
            f"{self.hash_algorithm} {self.flags} {self.iterations} {salt} "
            f"{nxt} {_type_names(self.types)}".rstrip()
        )


@register(RRType.NSEC3PARAM)
class NSEC3PARAM(RData):
    """NSEC3 zone parameters (RFC 5155)."""

    __slots__ = ("hash_algorithm", "flags", "iterations", "salt")

    def __init__(self, hash_algorithm: int, flags: int, iterations: int, salt: bytes):
        self.hash_algorithm = hash_algorithm
        self.flags = flags
        self.iterations = iterations
        self.salt = salt

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(self.hash_algorithm)
        writer.write_u8(self.flags)
        writer.write_u16(self.iterations)
        writer.write_u8(len(self.salt))
        writer.write(self.salt)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NSEC3PARAM":
        return cls(reader.read_u8(), reader.read_u8(), reader.read_u16(), reader.read(reader.read_u8()))

    def to_text(self) -> str:
        salt = binascii.hexlify(self.salt).decode().upper() if self.salt else "-"
        return f"{self.hash_algorithm} {self.flags} {self.iterations} {salt}"


@register(RRType.NXT)
class NXT(RData):
    """Legacy denial of existence (RFC 2535); bitmap kept opaque."""

    __slots__ = ("next_name", "bitmap")

    def __init__(self, next_name: Name, bitmap: bytes):
        self.next_name = next_name
        self.bitmap = bitmap

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.next_name, compress=False)
        writer.write(self.bitmap)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NXT":
        end = reader.offset + rdlength
        next_name = reader.read_name()
        if reader.offset > end:
            raise WireError("NXT name overruns rdlength")
        return cls(next_name, reader.read(end - reader.offset))

    def to_text(self) -> str:
        return f"{self.next_name.to_text()} {binascii.hexlify(self.bitmap).decode()}"


@register(RRType.CSYNC)
class CSYNC(RData):
    """Child-to-parent synchronisation (RFC 7477)."""

    __slots__ = ("serial", "flags", "types")

    def __init__(self, serial: int, flags: int, types: tuple[int, ...]):
        self.serial = serial
        self.flags = flags
        self.types = tuple(sorted(set(int(t) for t in types)))

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u32(self.serial)
        writer.write_u16(self.flags)
        writer.write(encode_type_bitmap(self.types))

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "CSYNC":
        end = reader.offset + rdlength
        serial = reader.read_u32()
        flags = reader.read_u16()
        if reader.offset > end:
            raise WireError("CSYNC fields overrun rdlength")
        types = decode_type_bitmap(reader.read(end - reader.offset))
        return cls(serial, flags, types)

    def to_text(self) -> str:
        return f"{self.serial} {self.flags} {_type_names(self.types)}".rstrip()
