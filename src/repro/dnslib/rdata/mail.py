"""Mail-routing and preference+name record types: MX, RT, KX, AFSDB, PX,
RP, MINFO, SRV and NAPTR."""

from __future__ import annotations

from ..name import Name
from ..types import RRType
from ..wire import WireReader, WireWriter
from . import RData, register
from ._util import quote_text, read_character_string, write_character_string


class PreferenceNameRData(RData):
    """Common shape: 16-bit preference followed by a domain name."""

    __slots__ = ("preference", "exchange")
    _compressible = False

    def __init__(self, preference: int, exchange: Name):
        self.preference = preference
        self.exchange = exchange

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write_name(self.exchange, compress=self._compressible)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        return cls(reader.read_u16(), reader.read_name())

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"


@register(RRType.MX)
class MX(PreferenceNameRData):
    """Mail exchange (RFC 1035)."""

    __slots__ = ()
    _compressible = True

    def zdns_answer(self) -> object:
        return {
            "preference": self.preference,
            "exchange": self.exchange.to_text(omit_final_dot=True),
        }


@register(RRType.RT)
class RT(PreferenceNameRData):
    """Route through (RFC 1183)."""

    __slots__ = ()


@register(RRType.KX)
class KX(PreferenceNameRData):
    """Key exchanger (RFC 2230)."""

    __slots__ = ()


@register(RRType.AFSDB)
class AFSDB(PreferenceNameRData):
    """AFS database location (RFC 1183); preference is the subtype."""

    __slots__ = ()


@register(RRType.PX)
class PX(RData):
    """X.400 mail mapping (RFC 2163)."""

    __slots__ = ("preference", "map822", "mapx400")

    def __init__(self, preference: int, map822: Name, mapx400: Name):
        self.preference = preference
        self.map822 = map822
        self.mapx400 = mapx400

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write_name(self.map822, compress=False)
        writer.write_name(self.mapx400, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "PX":
        return cls(reader.read_u16(), reader.read_name(), reader.read_name())

    def to_text(self) -> str:
        return f"{self.preference} {self.map822.to_text()} {self.mapx400.to_text()}"


@register(RRType.RP)
class RP(RData):
    """Responsible person (RFC 1183)."""

    __slots__ = ("mbox", "txt")

    def __init__(self, mbox: Name, txt: Name):
        self.mbox = mbox
        self.txt = txt

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.mbox, compress=False)
        writer.write_name(self.txt, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "RP":
        return cls(reader.read_name(), reader.read_name())

    def to_text(self) -> str:
        return f"{self.mbox.to_text()} {self.txt.to_text()}"


@register(RRType.MINFO)
class MINFO(RData):
    """Mailbox information (RFC 1035, experimental)."""

    __slots__ = ("rmailbx", "emailbx")

    def __init__(self, rmailbx: Name, emailbx: Name):
        self.rmailbx = rmailbx
        self.emailbx = emailbx

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.rmailbx, compress=True)
        writer.write_name(self.emailbx, compress=True)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "MINFO":
        return cls(reader.read_name(), reader.read_name())

    def to_text(self) -> str:
        return f"{self.rmailbx.to_text()} {self.emailbx.to_text()}"


@register(RRType.SRV)
class SRV(RData):
    """Service location (RFC 2782)."""

    __slots__ = ("priority", "weight", "port", "target")

    def __init__(self, priority: int, weight: int, port: int, target: Name):
        self.priority = priority
        self.weight = weight
        self.port = port
        self.target = target

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.priority)
        writer.write_u16(self.weight)
        writer.write_u16(self.port)
        writer.write_name(self.target, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SRV":
        return cls(reader.read_u16(), reader.read_u16(), reader.read_u16(), reader.read_name())

    def to_text(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target.to_text()}"

    def zdns_answer(self) -> object:
        return {
            "priority": self.priority,
            "weight": self.weight,
            "port": self.port,
            "target": self.target.to_text(omit_final_dot=True),
        }


@register(RRType.NAPTR)
class NAPTR(RData):
    """Naming authority pointer (RFC 3403)."""

    __slots__ = ("order", "preference", "flags", "service", "regexp", "replacement")

    def __init__(
        self,
        order: int,
        preference: int,
        flags: bytes,
        service: bytes,
        regexp: bytes,
        replacement: Name,
    ):
        self.order = order
        self.preference = preference
        self.flags = flags
        self.service = service
        self.regexp = regexp
        self.replacement = replacement

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.order)
        writer.write_u16(self.preference)
        write_character_string(writer, self.flags)
        write_character_string(writer, self.service)
        write_character_string(writer, self.regexp)
        writer.write_name(self.replacement, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NAPTR":
        return cls(
            reader.read_u16(),
            reader.read_u16(),
            read_character_string(reader),
            read_character_string(reader),
            read_character_string(reader),
            reader.read_name(),
        )

    def to_text(self) -> str:
        return (
            f"{self.order} {self.preference} {quote_text(self.flags)} "
            f"{quote_text(self.service)} {quote_text(self.regexp)} "
            f"{self.replacement.to_text()}"
        )
