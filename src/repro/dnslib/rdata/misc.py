"""Remaining record types: LOC."""

from __future__ import annotations

from ..types import RRType
from ..wire import WireError, WireReader, WireWriter
from . import RData, register

_POWERS_OF_TEN = [10**i for i in range(10)]


def _size_to_text(value: int) -> str:
    """Decode RFC 1876 exponent/mantissa size encoding into metres."""
    mantissa = (value >> 4) & 0x0F
    exponent = value & 0x0F
    if exponent >= len(_POWERS_OF_TEN):
        raise WireError(f"LOC size exponent {exponent} out of range")
    centimetres = mantissa * _POWERS_OF_TEN[exponent]
    metres, rem = divmod(centimetres, 100)
    return f"{metres}.{rem:02d}m" if rem else f"{metres}m"


def _angle_to_text(value: int, positive: str, negative: str) -> str:
    """Render a thousandths-of-arcsecond angle relative to 2**31."""
    value -= 2**31
    hemisphere = positive if value >= 0 else negative
    value = abs(value)
    msec = value % 1000
    value //= 1000
    seconds = value % 60
    value //= 60
    minutes = value % 60
    degrees = value // 60
    return f"{degrees} {minutes} {seconds}.{msec:03d} {hemisphere}"


@register(RRType.LOC)
class LOC(RData):
    """Geographic location (RFC 1876).

    Latitude/longitude are stored in thousandths of an arcsecond offset
    by 2**31; altitude in centimetres offset by 100 000 m.
    """

    __slots__ = ("version", "size", "horiz_pre", "vert_pre", "latitude", "longitude", "altitude")

    def __init__(
        self,
        latitude: int,
        longitude: int,
        altitude: int,
        size: int = 0x12,
        horiz_pre: int = 0x16,
        vert_pre: int = 0x13,
        version: int = 0,
    ):
        self.version = version
        self.size = size
        self.horiz_pre = horiz_pre
        self.vert_pre = vert_pre
        self.latitude = latitude
        self.longitude = longitude
        self.altitude = altitude

    @classmethod
    def from_degrees(cls, lat_degrees: float, lon_degrees: float, altitude_m: float = 0.0) -> "LOC":
        return cls(
            latitude=int(lat_degrees * 3600_000) + 2**31,
            longitude=int(lon_degrees * 3600_000) + 2**31,
            altitude=int(altitude_m * 100) + 100_000_00,
        )

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(self.version)
        writer.write_u8(self.size)
        writer.write_u8(self.horiz_pre)
        writer.write_u8(self.vert_pre)
        writer.write_u32(self.latitude)
        writer.write_u32(self.longitude)
        writer.write_u32(self.altitude)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "LOC":
        if rdlength != 16:
            raise WireError(f"LOC rdlength {rdlength} != 16")
        version = reader.read_u8()
        size = reader.read_u8()
        horiz_pre = reader.read_u8()
        vert_pre = reader.read_u8()
        latitude = reader.read_u32()
        longitude = reader.read_u32()
        altitude = reader.read_u32()
        return cls(latitude, longitude, altitude, size, horiz_pre, vert_pre, version)

    def to_text(self) -> str:
        alt_cm = self.altitude - 100_000_00
        metres, rem = divmod(abs(alt_cm), 100)
        sign = "-" if alt_cm < 0 else ""
        alt = f"{sign}{metres}.{rem:02d}m" if rem else f"{sign}{metres}m"
        return (
            f"{_angle_to_text(self.latitude, 'N', 'S')} "
            f"{_angle_to_text(self.longitude, 'E', 'W')} {alt} "
            f"{_size_to_text(self.size)} {_size_to_text(self.horiz_pre)} "
            f"{_size_to_text(self.vert_pre)}"
        )
