"""Record types whose RDATA is (mostly) a single domain name, plus SOA."""

from __future__ import annotations

from functools import lru_cache

from ..name import Name
from ..types import RRType
from ..wire import WireReader, WireWriter
from . import RData, register


@lru_cache(maxsize=65_536)
def _single_name_instance(cls: type, target: Name) -> "SingleNameRData":
    return cls(target)


class SingleNameRData(RData):
    """Common implementation for types carrying one domain name."""

    __slots__ = ("target",)
    _compressible = False

    def __init__(self, target: Name):
        self.target = target

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.target, compress=self._compressible)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        # rdata is value-immutable, so decoders share one instance per
        # (type, target) — NS/CNAME targets repeat endlessly in referrals
        return _single_name_instance(cls, reader.read_name())

    def to_text(self) -> str:
        return self.target.to_text()


@register(RRType.NS)
class NS(SingleNameRData):
    """Authoritative name server (RFC 1035)."""

    __slots__ = ()
    _compressible = True


@register(RRType.CNAME)
class CNAME(SingleNameRData):
    """Canonical name alias (RFC 1035)."""

    __slots__ = ()
    _compressible = True


@register(RRType.PTR)
class PTR(SingleNameRData):
    """Domain name pointer, e.g. reverse DNS (RFC 1035)."""

    __slots__ = ()
    _compressible = True


@register(RRType.DNAME)
class DNAME(SingleNameRData):
    """Subtree redirection (RFC 6672); never compressed."""

    __slots__ = ()


@register(RRType.MB)
class MB(SingleNameRData):
    """Mailbox domain name (RFC 1035, experimental)."""

    __slots__ = ()
    _compressible = True


@register(RRType.MD)
class MD(SingleNameRData):
    """Mail destination (RFC 1035, obsolete)."""

    __slots__ = ()
    _compressible = True


@register(RRType.MF)
class MF(SingleNameRData):
    """Mail forwarder (RFC 1035, obsolete)."""

    __slots__ = ()
    _compressible = True


@register(RRType.MG)
class MG(SingleNameRData):
    """Mail group member (RFC 1035, experimental)."""

    __slots__ = ()
    _compressible = True


@register(RRType.MR)
class MR(SingleNameRData):
    """Mail rename (RFC 1035, experimental)."""

    __slots__ = ()
    _compressible = True


@register(RRType.NSAPPTR)
class NSAPPTR(SingleNameRData):
    """NSAP pointer (RFC 1348)."""

    __slots__ = ()


@register(RRType.TALINK)
class TALINK(RData):
    """Trust anchor link (draft-ietf-dnsop-dnssec-trust-history)."""

    __slots__ = ("previous", "next")

    def __init__(self, previous: Name, next: Name):
        self.previous = previous
        self.next = next

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.previous, compress=False)
        writer.write_name(self.next, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "TALINK":
        return cls(reader.read_name(), reader.read_name())

    def to_text(self) -> str:
        return f"{self.previous.to_text()} {self.next.to_text()}"


@register(RRType.SOA)
class SOA(RData):
    """Start of authority (RFC 1035)."""

    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")

    def __init__(
        self,
        mname: Name,
        rname: Name,
        serial: int,
        refresh: int = 7200,
        retry: int = 900,
        expire: int = 1209600,
        minimum: int = 3600,
    ):
        self.mname = mname
        self.rname = rname
        self.serial = serial
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.mname, compress=True)
        writer.write_name(self.rname, compress=True)
        for value in (self.serial, self.refresh, self.retry, self.expire, self.minimum):
            writer.write_u32(value)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SOA":
        mname = reader.read_name()
        rname = reader.read_name()
        return cls(
            mname,
            rname,
            reader.read_u32(),
            reader.read_u32(),
            reader.read_u32(),
            reader.read_u32(),
            reader.read_u32(),
        )

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    def zdns_answer(self) -> object:
        return {
            "mname": self.mname.to_text(omit_final_dot=True),
            "rname": self.rname.to_text(omit_final_dot=True),
            "serial": self.serial,
            "refresh": self.refresh,
            "retry": self.retry,
            "expire": self.expire,
            "min_ttl": self.minimum,
        }
