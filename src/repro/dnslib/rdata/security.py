"""Security and certificate record types: CAA, URI, CERT, SSHFP, TLSA,
SMIMEA, OPENPGPKEY, HIP, DHCID and TKEY."""

from __future__ import annotations

import base64
import binascii

from ..name import Name
from ..types import RRType
from ..wire import WireError, WireReader, WireWriter
from . import RData, register
from ._util import quote_text


@register(RRType.CAA)
class CAA(RData):
    """Certification Authority Authorization (RFC 8659)."""

    #: Tags RFC 8659 defines; anything else is flagged by the CAA module.
    KNOWN_TAGS = frozenset({b"issue", b"issuewild", b"iodef"})

    __slots__ = ("flags", "tag", "value")

    def __init__(self, flags: int, tag: bytes | str, value: bytes | str):
        if isinstance(tag, str):
            tag = tag.encode("ascii")
        if isinstance(value, str):
            value = value.encode("utf-8")
        if not tag:
            raise ValueError("CAA tag must be non-empty")
        self.flags = flags
        self.tag = tag
        self.value = value

    @property
    def critical(self) -> bool:
        return bool(self.flags & 0x80)

    def tag_is_valid(self) -> bool:
        """RFC 8659 restricts tags to ASCII letters and digits."""
        return bool(self.tag) and all(
            0x30 <= b <= 0x39 or 0x41 <= b <= 0x5A or 0x61 <= b <= 0x7A for b in self.tag
        )

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(self.flags)
        writer.write_u8(len(self.tag))
        writer.write(self.tag)
        writer.write(self.value)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "CAA":
        end = reader.offset + rdlength
        flags = reader.read_u8()
        tag = reader.read(reader.read_u8())
        if reader.offset > end:
            raise WireError("CAA tag overruns rdlength")
        return cls(flags, tag, reader.read(end - reader.offset))

    def to_text(self) -> str:
        return f"{self.flags} {self.tag.decode('ascii', 'replace')} {quote_text(self.value)}"

    def zdns_answer(self) -> object:
        return {
            "flag": self.flags,
            "tag": self.tag.decode("ascii", "replace"),
            "value": self.value.decode("utf-8", "replace"),
        }


@register(RRType.URI)
class URI(RData):
    """Uniform resource identifier record (RFC 7553)."""

    __slots__ = ("priority", "weight", "target")

    def __init__(self, priority: int, weight: int, target: bytes | str):
        if isinstance(target, str):
            target = target.encode("utf-8")
        self.priority = priority
        self.weight = weight
        self.target = target

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.priority)
        writer.write_u16(self.weight)
        writer.write(self.target)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "URI":
        if rdlength < 4:
            raise WireError("URI rdata too short")
        return cls(reader.read_u16(), reader.read_u16(), reader.read(rdlength - 4))

    def to_text(self) -> str:
        return f"{self.priority} {self.weight} {quote_text(self.target)}"


@register(RRType.CERT)
class CERT(RData):
    """Certificate record (RFC 4398)."""

    __slots__ = ("cert_type", "key_tag", "algorithm", "certificate")

    def __init__(self, cert_type: int, key_tag: int, algorithm: int, certificate: bytes):
        self.cert_type = cert_type
        self.key_tag = key_tag
        self.algorithm = algorithm
        self.certificate = certificate

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.cert_type)
        writer.write_u16(self.key_tag)
        writer.write_u8(self.algorithm)
        writer.write(self.certificate)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "CERT":
        if rdlength < 5:
            raise WireError("CERT rdata too short")
        return cls(reader.read_u16(), reader.read_u16(), reader.read_u8(), reader.read(rdlength - 5))

    def to_text(self) -> str:
        cert = base64.b64encode(self.certificate).decode("ascii")
        return f"{self.cert_type} {self.key_tag} {self.algorithm} {cert}"


@register(RRType.SSHFP)
class SSHFP(RData):
    """SSH public-key fingerprint (RFC 4255)."""

    __slots__ = ("algorithm", "fp_type", "fingerprint")

    def __init__(self, algorithm: int, fp_type: int, fingerprint: bytes):
        self.algorithm = algorithm
        self.fp_type = fp_type
        self.fingerprint = fingerprint

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(self.algorithm)
        writer.write_u8(self.fp_type)
        writer.write(self.fingerprint)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SSHFP":
        if rdlength < 2:
            raise WireError("SSHFP rdata too short")
        return cls(reader.read_u8(), reader.read_u8(), reader.read(rdlength - 2))

    def to_text(self) -> str:
        return f"{self.algorithm} {self.fp_type} {binascii.hexlify(self.fingerprint).decode().upper()}"


class TLSARData(RData):
    """TLSA/SMIMEA shape (RFC 6698 / RFC 8162)."""

    __slots__ = ("usage", "selector", "matching_type", "certificate_data")

    def __init__(self, usage: int, selector: int, matching_type: int, certificate_data: bytes):
        self.usage = usage
        self.selector = selector
        self.matching_type = matching_type
        self.certificate_data = certificate_data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(self.usage)
        writer.write_u8(self.selector)
        writer.write_u8(self.matching_type)
        writer.write(self.certificate_data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        if rdlength < 3:
            raise WireError("TLSA rdata too short")
        return cls(reader.read_u8(), reader.read_u8(), reader.read_u8(), reader.read(rdlength - 3))

    def to_text(self) -> str:
        return (
            f"{self.usage} {self.selector} {self.matching_type} "
            f"{binascii.hexlify(self.certificate_data).decode().upper()}"
        )


@register(RRType.TLSA)
class TLSA(TLSARData):
    """DANE TLS association (RFC 6698)."""

    __slots__ = ()


@register(RRType.SMIMEA)
class SMIMEA(TLSARData):
    """S/MIME certificate association (RFC 8162)."""

    __slots__ = ()


@register(RRType.OPENPGPKEY)
class OPENPGPKEY(RData):
    """OpenPGP public key (RFC 7929)."""

    __slots__ = ("key",)

    def __init__(self, key: bytes):
        self.key = key

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.key)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "OPENPGPKEY":
        return cls(reader.read(rdlength))

    def to_text(self) -> str:
        return base64.b64encode(self.key).decode("ascii")


@register(RRType.HIP)
class HIP(RData):
    """Host identity protocol (RFC 8005)."""

    __slots__ = ("pk_algorithm", "hit", "public_key", "servers")

    def __init__(self, pk_algorithm: int, hit: bytes, public_key: bytes, servers: tuple[Name, ...] = ()):
        self.pk_algorithm = pk_algorithm
        self.hit = hit
        self.public_key = public_key
        self.servers = tuple(servers)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u8(len(self.hit))
        writer.write_u8(self.pk_algorithm)
        writer.write_u16(len(self.public_key))
        writer.write(self.hit)
        writer.write(self.public_key)
        for server in self.servers:
            writer.write_name(server, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "HIP":
        end = reader.offset + rdlength
        hit_length = reader.read_u8()
        pk_algorithm = reader.read_u8()
        pk_length = reader.read_u16()
        hit = reader.read(hit_length)
        public_key = reader.read(pk_length)
        servers = []
        while reader.offset < end:
            servers.append(reader.read_name())
        if reader.offset != end:
            raise WireError("HIP servers overrun rdlength")
        return cls(pk_algorithm, hit, public_key, tuple(servers))

    def to_text(self) -> str:
        parts = [
            str(self.pk_algorithm),
            binascii.hexlify(self.hit).decode().upper(),
            base64.b64encode(self.public_key).decode("ascii"),
        ]
        parts.extend(server.to_text() for server in self.servers)
        return " ".join(parts)


@register(RRType.DHCID)
class DHCID(RData):
    """DHCP identifier (RFC 4701)."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "DHCID":
        return cls(reader.read(rdlength))

    def to_text(self) -> str:
        return base64.b64encode(self.data).decode("ascii")


@register(RRType.TKEY)
class TKEY(RData):
    """Transaction key establishment (RFC 2930)."""

    __slots__ = ("algorithm", "inception", "expiration", "mode", "error", "key_data", "other_data")

    def __init__(
        self,
        algorithm: Name,
        inception: int,
        expiration: int,
        mode: int,
        error: int,
        key_data: bytes = b"",
        other_data: bytes = b"",
    ):
        self.algorithm = algorithm
        self.inception = inception
        self.expiration = expiration
        self.mode = mode
        self.error = error
        self.key_data = key_data
        self.other_data = other_data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.algorithm, compress=False)
        writer.write_u32(self.inception)
        writer.write_u32(self.expiration)
        writer.write_u16(self.mode)
        writer.write_u16(self.error)
        writer.write_u16(len(self.key_data))
        writer.write(self.key_data)
        writer.write_u16(len(self.other_data))
        writer.write(self.other_data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "TKEY":
        algorithm = reader.read_name()
        inception = reader.read_u32()
        expiration = reader.read_u32()
        mode = reader.read_u16()
        error = reader.read_u16()
        key_data = reader.read(reader.read_u16())
        other_data = reader.read(reader.read_u16())
        return cls(algorithm, inception, expiration, mode, error, key_data, other_data)

    def to_text(self) -> str:
        return (
            f"{self.algorithm.to_text()} {self.inception} {self.expiration} "
            f"{self.mode} {self.error} "
            f"{base64.b64encode(self.key_data).decode('ascii')}"
        )
