"""SVCB and HTTPS records (RFC 9460) — service bindings.

Not in the paper's 2022 footnote, but supported by ZDNS today and
increasingly central to how browsers discover endpoints; included for
forward compatibility."""

from __future__ import annotations

import binascii
import struct

from ..name import Name
from ..types import RRType
from ..wire import WireError, WireReader, WireWriter
from . import RData, register

# SvcParam keys (RFC 9460 section 14.3.2)
KEY_MANDATORY = 0
KEY_ALPN = 1
KEY_NO_DEFAULT_ALPN = 2
KEY_PORT = 3
KEY_IPV4HINT = 4
KEY_ECH = 5
KEY_IPV6HINT = 6

_KEY_NAMES = {
    KEY_MANDATORY: "mandatory",
    KEY_ALPN: "alpn",
    KEY_NO_DEFAULT_ALPN: "no-default-alpn",
    KEY_PORT: "port",
    KEY_IPV4HINT: "ipv4hint",
    KEY_ECH: "ech",
    KEY_IPV6HINT: "ipv6hint",
}


def _key_name(key: int) -> str:
    return _KEY_NAMES.get(key, f"key{key}")


def _render_value(key: int, value: bytes) -> str:
    if key == KEY_PORT and len(value) == 2:
        return str(struct.unpack("!H", value)[0])
    if key == KEY_ALPN:
        protocols = []
        offset = 0
        while offset < len(value):
            length = value[offset]
            protocols.append(value[offset + 1 : offset + 1 + length].decode("utf-8", "replace"))
            offset += 1 + length
        return ",".join(protocols)
    if key == KEY_IPV4HINT and len(value) % 4 == 0:
        return ",".join(
            ".".join(str(b) for b in value[i : i + 4]) for i in range(0, len(value), 4)
        )
    return binascii.hexlify(value).decode()


def alpn_value(*protocols: str) -> bytes:
    """Encode an ALPN SvcParam value (length-prefixed protocol ids)."""
    out = bytearray()
    for protocol in protocols:
        encoded = protocol.encode("utf-8")
        if not 0 < len(encoded) < 256:
            raise ValueError(f"bad ALPN id {protocol!r}")
        out.append(len(encoded))
        out += encoded
    return bytes(out)


def port_value(port: int) -> bytes:
    """Encode a port SvcParam value."""
    return struct.pack("!H", port)


def ipv4hint_value(*addresses: str) -> bytes:
    """Encode an ipv4hint SvcParam value."""
    out = bytearray()
    for address in addresses:
        parts = [int(p) for p in address.split(".")]
        if len(parts) != 4 or not all(0 <= p <= 255 for p in parts):
            raise ValueError(f"bad IPv4 address {address!r}")
        out += bytes(parts)
    return bytes(out)


class ServiceBindingRData(RData):
    """Common SVCB/HTTPS shape: priority, target, sorted SvcParams."""

    __slots__ = ("priority", "target", "params")

    def __init__(self, priority: int, target: Name, params: tuple[tuple[int, bytes], ...] = ()):
        self.priority = priority
        self.target = target
        # RFC 9460: params MUST be sorted by key and keys unique
        seen = set()
        for key, _ in params:
            if key in seen:
                raise ValueError(f"duplicate SvcParam key {key}")
            seen.add(key)
        self.params = tuple(sorted(params))

    @property
    def is_alias_mode(self) -> bool:
        """Priority 0 = AliasMode (no params allowed per RFC 9460)."""
        return self.priority == 0

    def param(self, key: int) -> bytes | None:
        for param_key, value in self.params:
            if param_key == key:
                return value
        return None

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.priority)
        writer.write_name(self.target, compress=False)
        for key, value in self.params:
            writer.write_u16(key)
            writer.write_u16(len(value))
            writer.write(value)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        end = reader.offset + rdlength
        priority = reader.read_u16()
        target = reader.read_name()
        params = []
        previous_key = -1
        while reader.offset < end:
            key = reader.read_u16()
            if key <= previous_key:
                raise WireError("SvcParams out of order or duplicated")
            previous_key = key
            length = reader.read_u16()
            if reader.offset + length > end:
                raise WireError("SvcParam overruns rdata")
            params.append((key, reader.read(length)))
        return cls(priority, target, tuple(params))

    def to_text(self) -> str:
        parts = [str(self.priority), self.target.to_text()]
        for key, value in self.params:
            if key == KEY_NO_DEFAULT_ALPN:
                parts.append(_key_name(key))
            else:
                parts.append(f"{_key_name(key)}={_render_value(key, value)}")
        return " ".join(parts)

    def zdns_answer(self) -> object:
        return {
            "priority": self.priority,
            "target": self.target.to_text(omit_final_dot=True),
            "params": {
                _key_name(key): _render_value(key, value) for key, value in self.params
            },
        }


@register(RRType.SVCB)
class SVCB(ServiceBindingRData):
    """General service binding (RFC 9460)."""

    __slots__ = ()


@register(RRType.HTTPS)
class HTTPS(ServiceBindingRData):
    """HTTPS-specific service binding (RFC 9460)."""

    __slots__ = ()
