"""Text-carrying record types: TXT, SPF, AVC, NINFO, HINFO, ISDN, X25,
GPOS, plus the legacy opaque UINFO/UID/GID/UNSPEC and NULL types."""

from __future__ import annotations

import binascii

from ..types import RRType
from ..wire import WireError, WireReader, WireWriter
from . import RData, register
from ._util import quote_text, read_character_string, write_character_string


class TextRData(RData):
    """One or more <character-string>s (RFC 1035 TXT shape)."""

    __slots__ = ("strings",)

    def __init__(self, strings):
        normalized = []
        for item in strings:
            if isinstance(item, str):
                item = item.encode("utf-8")
            if len(item) > 255:
                raise ValueError("character-string longer than 255 bytes")
            normalized.append(item)
        self.strings = tuple(normalized)

    @classmethod
    def from_string(cls, text: str | bytes):
        """Build from one logical string, splitting at 255-byte boundaries."""
        if isinstance(text, str):
            text = text.encode("utf-8")
        return cls([text[i : i + 255] for i in range(0, max(len(text), 1), 255)])

    def joined(self) -> bytes:
        return b"".join(self.strings)

    def to_wire(self, writer: WireWriter) -> None:
        for chunk in self.strings:
            write_character_string(writer, chunk)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        end = reader.offset + rdlength
        strings = []
        while reader.offset < end:
            strings.append(read_character_string(reader))
        if reader.offset != end:
            raise WireError("TXT strings overrun rdlength")
        return cls(strings)

    def to_text(self) -> str:
        return " ".join(quote_text(chunk) for chunk in self.strings)

    def zdns_answer(self) -> object:
        return self.joined().decode("utf-8", errors="replace")


@register(RRType.TXT)
class TXT(TextRData):
    """Arbitrary text (RFC 1035)."""

    __slots__ = ()


@register(RRType.SPF)
class SPF(TextRData):
    """Sender Policy Framework (RFC 4408; type 99, now deprecated in
    favour of TXT but still queried by measurement tools)."""

    __slots__ = ()


@register(RRType.AVC)
class AVC(TextRData):
    """Application visibility and control (Cisco)."""

    __slots__ = ()


@register(RRType.NINFO)
class NINFO(TextRData):
    """Zone status information (draft)."""

    __slots__ = ()


@register(RRType.HINFO)
class HINFO(RData):
    """Host information: CPU and OS strings (RFC 1035)."""

    __slots__ = ("cpu", "os")

    def __init__(self, cpu: bytes, os: bytes):
        self.cpu = cpu
        self.os = os

    def to_wire(self, writer: WireWriter) -> None:
        write_character_string(writer, self.cpu)
        write_character_string(writer, self.os)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "HINFO":
        return cls(read_character_string(reader), read_character_string(reader))

    def to_text(self) -> str:
        return f"{quote_text(self.cpu)} {quote_text(self.os)}"


@register(RRType.ISDN)
class ISDN(RData):
    """ISDN address and optional subaddress (RFC 1183)."""

    __slots__ = ("address", "subaddress")

    def __init__(self, address: bytes, subaddress: bytes | None = None):
        self.address = address
        self.subaddress = subaddress

    def to_wire(self, writer: WireWriter) -> None:
        write_character_string(writer, self.address)
        if self.subaddress is not None:
            write_character_string(writer, self.subaddress)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "ISDN":
        end = reader.offset + rdlength
        address = read_character_string(reader)
        subaddress = read_character_string(reader) if reader.offset < end else None
        return cls(address, subaddress)

    def to_text(self) -> str:
        if self.subaddress is None:
            return quote_text(self.address)
        return f"{quote_text(self.address)} {quote_text(self.subaddress)}"


@register(RRType.X25)
class X25(RData):
    """X.25 PSDN address (RFC 1183)."""

    __slots__ = ("address",)

    def __init__(self, address: bytes):
        self.address = address

    def to_wire(self, writer: WireWriter) -> None:
        write_character_string(writer, self.address)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "X25":
        return cls(read_character_string(reader))

    def to_text(self) -> str:
        return quote_text(self.address)


@register(RRType.GPOS)
class GPOS(RData):
    """Geographical position (RFC 1712)."""

    __slots__ = ("longitude", "latitude", "altitude")

    def __init__(self, longitude: bytes, latitude: bytes, altitude: bytes):
        self.longitude = longitude
        self.latitude = latitude
        self.altitude = altitude

    def to_wire(self, writer: WireWriter) -> None:
        write_character_string(writer, self.longitude)
        write_character_string(writer, self.latitude)
        write_character_string(writer, self.altitude)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "GPOS":
        return cls(
            read_character_string(reader),
            read_character_string(reader),
            read_character_string(reader),
        )

    def to_text(self) -> str:
        return (
            f"{self.longitude.decode('ascii', 'replace')} "
            f"{self.latitude.decode('ascii', 'replace')} "
            f"{self.altitude.decode('ascii', 'replace')}"
        )


class OpaqueRData(RData):
    """Reserved/legacy types carried as opaque bytes."""

    __slots__ = ("data",)

    def __init__(self, data: bytes = b""):
        self.data = data

    def to_wire(self, writer: WireWriter) -> None:
        writer.write(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int):
        return cls(reader.read(rdlength))

    def to_text(self) -> str:
        return binascii.hexlify(self.data).decode()


@register(RRType.UINFO)
class UINFO(OpaqueRData):
    """User info (reserved, IANA)."""

    __slots__ = ()


@register(RRType.UID)
class UID(OpaqueRData):
    """User ID (reserved, IANA)."""

    __slots__ = ()


@register(RRType.GID)
class GID(OpaqueRData):
    """Group ID (reserved, IANA)."""

    __slots__ = ()


@register(RRType.UNSPEC)
class UNSPEC(OpaqueRData):
    """Unspecified (reserved, IANA)."""

    __slots__ = ()


@register(RRType.NULL)
class NULL(OpaqueRData):
    """Null record (RFC 1035, experimental)."""

    __slots__ = ()
