"""Presentation-format (zone file) parsing.

Covers the record types that appear in practice in master files, plus
RFC 3597 ``\\# n hex`` generic syntax for everything else.  Used by the
zone-file loader and handy for constructing records in tests/tools.
"""

from __future__ import annotations

import base64
import binascii
import shlex
from functools import lru_cache

from .name import Name
from .rdata import GenericRData, RData
from .rdata.address import A, AAAA
from .rdata.dnssec import DNSKEY, DS, NSEC3PARAM
from .rdata.mail import AFSDB, KX, MX, NAPTR, RT, SRV
from .rdata.names import CNAME, DNAME, MB, MG, MR, NS, PTR, SOA
from .rdata.security import CAA, SSHFP, TLSA, URI
from .rdata.text import HINFO, SPF, TXT
from .types import RRTYPE_BY_INT, RRType, type_from_text


class TextParseError(ValueError):
    """Raised when presentation-format rdata cannot be parsed."""


#: Characters that force the full shlex pass: quoting, escapes,
#: comments.  The overwhelming majority of rdata strings (addresses,
#: names, integers) contain none of them and split on whitespace.
_NEEDS_LEXER = frozenset("\"'\\;")


def _tokens(text: str) -> list[str]:
    if not _NEEDS_LEXER.intersection(text):
        return text.split()
    lexer = shlex.shlex(text, posix=True)
    lexer.whitespace_split = True
    lexer.commenters = ";"
    try:
        return list(lexer)
    except ValueError as error:
        raise TextParseError(f"bad rdata {text!r}: {error}") from None


def _name(token: str, origin: Name | None) -> Name:
    if token == "@":
        if origin is None:
            raise TextParseError("@ used without an origin")
        return origin
    if token.endswith("."):
        return Name.from_text(token)
    if origin is None:
        raise TextParseError(f"relative name {token!r} without an origin")
    return Name.from_text(token).concatenate(origin)


def _int(token: str, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise TextParseError(f"bad {what}: {token!r}") from None


def rdata_from_text(rrtype: RRType | str, text: str, origin: Name | None = None) -> RData:
    """Parse one record's presentation-format RDATA.

    Results are memoised on ``(type, text, origin)``: rdata objects are
    value-immutable, and synthesised/loaded zones repeat the same
    handful of rdata strings (shared nameservers, glue addresses)
    across thousands of lines.

    >>> rdata_from_text("MX", "10 mail.example.com.").exchange.to_text()
    'mail.example.com.'
    """
    if isinstance(rrtype, str):
        rrtype = type_from_text(rrtype)
    return _rdata_from_text(int(rrtype), text, origin)


@lru_cache(maxsize=65_536)
def _rdata_from_text(rrtype: int, text: str, origin: Name | None) -> RData:
    tokens = _tokens(text)
    # posix lexing strips the backslash escape from the RFC 3597 marker
    if tokens and tokens[0] in (r"\#", "#"):
        # RFC 3597 generic syntax works for any type
        if len(tokens) < 2:
            raise TextParseError("generic rdata needs a length")
        length = _int(tokens[1], "generic length")
        data = binascii.unhexlify("".join(tokens[2:]))
        if len(data) != length:
            raise TextParseError(f"generic rdata length {length} != {len(data)} bytes")
        return GenericRData(data)

    try:
        parser = _PARSERS[rrtype]
    except KeyError:
        label = RRTYPE_BY_INT.get(rrtype, rrtype)
        raise TextParseError(f"no presentation parser for {label!s}") from None
    return parser(tokens, origin)


def _need(tokens: list[str], count: int, rrtype: str) -> None:
    if len(tokens) < count:
        raise TextParseError(f"{rrtype} needs {count} fields, got {len(tokens)}")


def _parse_a(tokens, origin):
    _need(tokens, 1, "A")
    return A(tokens[0])


def _parse_aaaa(tokens, origin):
    _need(tokens, 1, "AAAA")
    return AAAA(tokens[0])


def _single_name(cls, label):
    def parse(tokens, origin):
        _need(tokens, 1, label)
        return cls(_name(tokens[0], origin))

    return parse


def _pref_name(cls, label):
    def parse(tokens, origin):
        _need(tokens, 2, label)
        return cls(_int(tokens[0], "preference"), _name(tokens[1], origin))

    return parse


def _parse_soa(tokens, origin):
    _need(tokens, 7, "SOA")
    return SOA(
        _name(tokens[0], origin),
        _name(tokens[1], origin),
        *(_int(tokens[i], "SOA field") for i in range(2, 7)),
    )


def _parse_txt_like(cls):
    def parse(tokens, origin):
        if not tokens:
            raise TextParseError("TXT needs at least one string")
        return cls([token.encode("utf-8") for token in tokens])

    return parse


def _parse_hinfo(tokens, origin):
    _need(tokens, 2, "HINFO")
    return HINFO(tokens[0].encode(), tokens[1].encode())


def _parse_srv(tokens, origin):
    _need(tokens, 4, "SRV")
    return SRV(
        _int(tokens[0], "priority"),
        _int(tokens[1], "weight"),
        _int(tokens[2], "port"),
        _name(tokens[3], origin),
    )


def _parse_caa(tokens, origin):
    _need(tokens, 3, "CAA")
    return CAA(_int(tokens[0], "flags"), tokens[1].encode(), tokens[2].encode())


def _parse_ds(tokens, origin):
    _need(tokens, 4, "DS")
    return DS(
        _int(tokens[0], "key tag"),
        _int(tokens[1], "algorithm"),
        _int(tokens[2], "digest type"),
        binascii.unhexlify("".join(tokens[3:])),
    )


def _parse_dnskey(tokens, origin):
    _need(tokens, 4, "DNSKEY")
    return DNSKEY(
        _int(tokens[0], "flags"),
        _int(tokens[1], "protocol"),
        _int(tokens[2], "algorithm"),
        base64.b64decode("".join(tokens[3:])),
    )


def _parse_tlsa(tokens, origin):
    _need(tokens, 4, "TLSA")
    return TLSA(
        _int(tokens[0], "usage"),
        _int(tokens[1], "selector"),
        _int(tokens[2], "matching type"),
        binascii.unhexlify("".join(tokens[3:])),
    )


def _parse_sshfp(tokens, origin):
    _need(tokens, 3, "SSHFP")
    return SSHFP(
        _int(tokens[0], "algorithm"),
        _int(tokens[1], "fp type"),
        binascii.unhexlify("".join(tokens[2:])),
    )


def _parse_naptr(tokens, origin):
    _need(tokens, 6, "NAPTR")
    return NAPTR(
        _int(tokens[0], "order"),
        _int(tokens[1], "preference"),
        tokens[2].encode(),
        tokens[3].encode(),
        tokens[4].encode(),
        _name(tokens[5], origin),
    )


def _parse_uri(tokens, origin):
    _need(tokens, 3, "URI")
    return URI(_int(tokens[0], "priority"), _int(tokens[1], "weight"), tokens[2].encode())


def _parse_nsec3param(tokens, origin):
    _need(tokens, 4, "NSEC3PARAM")
    salt = b"" if tokens[3] == "-" else binascii.unhexlify(tokens[3])
    return NSEC3PARAM(
        _int(tokens[0], "algorithm"), _int(tokens[1], "flags"), _int(tokens[2], "iterations"), salt
    )


_PARSERS = {
    int(RRType.A): _parse_a,
    int(RRType.AAAA): _parse_aaaa,
    int(RRType.NS): _single_name(NS, "NS"),
    int(RRType.CNAME): _single_name(CNAME, "CNAME"),
    int(RRType.DNAME): _single_name(DNAME, "DNAME"),
    int(RRType.PTR): _single_name(PTR, "PTR"),
    int(RRType.MB): _single_name(MB, "MB"),
    int(RRType.MG): _single_name(MG, "MG"),
    int(RRType.MR): _single_name(MR, "MR"),
    int(RRType.MX): _pref_name(MX, "MX"),
    int(RRType.RT): _pref_name(RT, "RT"),
    int(RRType.KX): _pref_name(KX, "KX"),
    int(RRType.AFSDB): _pref_name(AFSDB, "AFSDB"),
    int(RRType.SOA): _parse_soa,
    int(RRType.TXT): _parse_txt_like(TXT),
    int(RRType.SPF): _parse_txt_like(SPF),
    int(RRType.HINFO): _parse_hinfo,
    int(RRType.SRV): _parse_srv,
    int(RRType.CAA): _parse_caa,
    int(RRType.DS): _parse_ds,
    int(RRType.DNSKEY): _parse_dnskey,
    int(RRType.TLSA): _parse_tlsa,
    int(RRType.SSHFP): _parse_sshfp,
    int(RRType.NAPTR): _parse_naptr,
    int(RRType.URI): _parse_uri,
    int(RRType.NSEC3PARAM): _parse_nsec3param,
}

#: Types with a dedicated presentation parser.
PARSEABLE_TYPES = frozenset(_PARSERS)
