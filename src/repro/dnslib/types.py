"""DNS record type, class, opcode and rcode constants."""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource-record type codes (every type the paper's footnote lists,
    plus the infrastructure types needed to implement them)."""

    A = 1
    NS = 2
    MD = 3
    MF = 4
    CNAME = 5
    SOA = 6
    MB = 7
    MG = 8
    MR = 9
    NULL = 10
    PTR = 12
    HINFO = 13
    MINFO = 14
    MX = 15
    TXT = 16
    RP = 17
    AFSDB = 18
    X25 = 19
    ISDN = 20
    RT = 21
    NSAPPTR = 23
    SIG = 24
    KEY = 25
    PX = 26
    GPOS = 27
    AAAA = 28
    LOC = 29
    NXT = 30
    EID = 31
    NIMLOC = 32
    SRV = 33
    ATMA = 34
    NAPTR = 35
    KX = 36
    CERT = 37
    DNAME = 39
    OPT = 41
    DS = 43
    SSHFP = 44
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    DHCID = 49
    NSEC3 = 50
    NSEC3PARAM = 51
    TLSA = 52
    SMIMEA = 53
    HIP = 55
    NINFO = 56
    TALINK = 58
    CDS = 59
    CDNSKEY = 60
    OPENPGPKEY = 61
    CSYNC = 62
    SVCB = 64
    HTTPS = 65
    SPF = 99
    UINFO = 100
    UID = 101
    GID = 102
    UNSPEC = 103
    NID = 104
    L32 = 105
    L64 = 106
    LP = 107
    EUI48 = 108
    EUI64 = 109
    TKEY = 249
    TSIG = 250
    IXFR = 251
    AXFR = 252
    ANY = 255
    URI = 256
    CAA = 257
    AVC = 258

    def __str__(self) -> str:  # "A", not "RRType.A"
        return self.name


#: Query-only types that never appear as stored RRsets.
QUERY_ONLY_TYPES = frozenset({RRType.AXFR, RRType.IXFR, RRType.ANY, RRType.TKEY, RRType.TSIG})


class DNSClass(enum.IntEnum):
    """DNS class codes (RFC 1035; CH for version.bind queries)."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255

    def __str__(self) -> str:
        return self.name


class Opcode(enum.IntEnum):
    """Message opcodes (RFC 1035 / 1996 / 2136)."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5

    def __str__(self) -> str:
        return self.name


class Rcode(enum.IntEnum):
    """Response codes (RFC 1035 and extensions)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9
    NOTZONE = 10
    BADVERS = 16

    def __str__(self) -> str:
        return self.name


#: Known-value lookups; a plain dict probe replaces the try/except
#: ``Enum(value)`` dance (an exception on every unknown code, a __call__
#: on every hit) on the decode hot path.  Unknown codes survive as raw
#: integers wherever these are consulted with ``.get(code, code)``.
RRTYPE_BY_INT = {int(t): t for t in RRType}
CLASS_BY_INT = {int(c): c for c in DNSClass}
OPCODE_BY_INT = {int(o): o for o in Opcode}
RCODE_BY_INT = {int(r): r for r in Rcode}


def type_from_text(text: str) -> RRType:
    """Parse a record type from its mnemonic or ``TYPExx`` form."""
    text = text.strip().upper()
    if text.startswith("TYPE") and text[4:].isdigit():
        return RRType(int(text[4:]))
    try:
        return RRType[text]
    except KeyError:
        raise ValueError(f"unknown record type {text!r}") from None
