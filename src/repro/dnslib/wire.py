"""Low-level wire format primitives: cursor-based reading and writing with
RFC 1035 section 4.1.4 name compression."""

from __future__ import annotations

import struct

from .name import MAX_NAME_LENGTH, Name

#: A compression pointer is two bytes whose top two bits are set.
_POINTER_MASK = 0xC0
_MAX_POINTER = 0x3FFF


class WireError(ValueError):
    """Raised when a packet cannot be decoded."""


class WireWriter:
    """Accumulates a DNS message, tracking name offsets for compression."""

    def __init__(self, enable_compression: bool = True):
        self._buf = bytearray()
        self._offsets: dict[tuple[bytes, ...], int] = {}
        self._compress = enable_compression

    def __len__(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def write(self, data: bytes) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_u16(self, value: int) -> None:
        self._buf += struct.pack("!H", value & 0xFFFF)

    def write_u32(self, value: int) -> None:
        self._buf += struct.pack("!I", value & 0xFFFFFFFF)

    def write_u48(self, value: int) -> None:
        self._buf += struct.pack("!HI", (value >> 32) & 0xFFFF, value & 0xFFFFFFFF)

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a previously written 16-bit field (e.g. RDLENGTH)."""
        self._buf[offset : offset + 2] = struct.pack("!H", value & 0xFFFF)

    def write_name(self, name: Name, compress: bool | None = None) -> None:
        """Write ``name``, emitting a compression pointer for any suffix
        already present in the message."""
        use_compression = self._compress if compress is None else compress
        key = name.canonical_key()
        index = 0
        while index < len(key):
            suffix = key[index:]
            target = self._offsets.get(suffix)
            if use_compression and target is not None:
                self.write_u16(_POINTER_MASK << 8 | target)
                return
            offset = len(self._buf)
            if target is None and offset <= _MAX_POINTER:
                self._offsets[suffix] = offset
            label = name.labels[index]
            self.write_u8(len(label))
            self.write(label)
            index += 1
        self.write_u8(0)


class WireReader:
    """Cursor over a received packet with pointer-chasing name decoding."""

    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def at_end(self) -> bool:
        return self.offset >= len(self.data)

    def _need(self, count: int) -> None:
        if self.offset + count > len(self.data):
            raise WireError(
                f"truncated packet: need {count} bytes at offset {self.offset}, "
                f"have {len(self.data) - self.offset}"
            )

    def read(self, count: int) -> bytes:
        self._need(count)
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def read_u8(self) -> int:
        self._need(1)
        value = self.data[self.offset]
        self.offset += 1
        return value

    def read_u16(self) -> int:
        self._need(2)
        (value,) = struct.unpack_from("!H", self.data, self.offset)
        self.offset += 2
        return value

    def read_u32(self) -> int:
        self._need(4)
        (value,) = struct.unpack_from("!I", self.data, self.offset)
        self.offset += 4
        return value

    def read_u48(self) -> int:
        high, low = struct.unpack_from("!HI", self.data, self.read_and_keep(6))
        return high << 32 | low

    def read_and_keep(self, count: int) -> int:
        """Advance past ``count`` bytes, returning the prior offset."""
        self._need(count)
        start = self.offset
        self.offset += count
        return start

    def read_name(self) -> Name:
        """Decode a possibly compressed name, guarding against pointer loops."""
        labels: list[bytes] = []
        total = 1
        jumps = 0
        cursor = self.offset
        resume: int | None = None
        while True:
            if cursor >= len(self.data):
                raise WireError("name runs off end of packet")
            length = self.data[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                if cursor + 1 >= len(self.data):
                    raise WireError("truncated compression pointer")
                target = (length & ~_POINTER_MASK) << 8 | self.data[cursor + 1]
                if resume is None:
                    resume = cursor + 2
                if target >= cursor:
                    raise WireError("forward compression pointer")
                jumps += 1
                if jumps > 64:
                    raise WireError("compression pointer loop")
                cursor = target
            elif length & _POINTER_MASK:
                raise WireError(f"reserved label type 0x{length & _POINTER_MASK:02x}")
            elif length == 0:
                cursor += 1
                break
            else:
                if cursor + 1 + length > len(self.data):
                    raise WireError("label runs off end of packet")
                labels.append(bytes(self.data[cursor + 1 : cursor + 1 + length]))
                total += length + 1
                if total > MAX_NAME_LENGTH:
                    raise WireError("decoded name too long")
                cursor += 1 + length
        self.offset = resume if resume is not None else cursor
        return Name(labels)
