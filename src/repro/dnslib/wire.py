"""Low-level wire format primitives: cursor-based reading and writing with
RFC 1035 section 4.1.4 name compression.

Hot-path notes: fixed-width fields go through prebound
:class:`struct.Struct` pack/unpack (no per-call format parsing), names
are written from their memoised length-prefixed label encodings in one
buffer append per label, and decoded names are interned so repeated
owners share one validated instance."""

from __future__ import annotations

import struct

from .name import MAX_NAME_LENGTH, Name

#: A compression pointer is two bytes whose top two bits are set.
_POINTER_MASK = 0xC0
_MAX_POINTER = 0x3FFF

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U48 = struct.Struct("!HI")
_pack_u16 = _U16.pack
_pack_u32 = _U32.pack
_unpack_u16 = _U16.unpack_from
_unpack_u32 = _U32.unpack_from
_intern_name = Name.intern


class WireError(ValueError):
    """Raised when a packet cannot be decoded."""


class WireWriter:
    """Accumulates a DNS message, tracking name offsets for compression."""

    def __init__(self, enable_compression: bool = True):
        self._buf = bytearray()
        self._offsets: dict[tuple[bytes, ...], int] = {}
        self._compress = enable_compression

    def __len__(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def write(self, data: bytes) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_u16(self, value: int) -> None:
        self._buf += _pack_u16(value & 0xFFFF)

    def write_u32(self, value: int) -> None:
        self._buf += _pack_u32(value & 0xFFFFFFFF)

    def write_u48(self, value: int) -> None:
        self._buf += _U48.pack((value >> 32) & 0xFFFF, value & 0xFFFFFFFF)

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a previously written 16-bit field (e.g. RDLENGTH)."""
        self._buf[offset : offset + 2] = _pack_u16(value & 0xFFFF)

    def write_name(self, name: Name, compress: bool | None = None) -> None:
        """Write ``name``, emitting a compression pointer for any suffix
        already present in the message."""
        use_compression = self._compress if compress is None else compress
        buf = self._buf
        labels = name.labels
        if not labels:
            buf.append(0)
            return
        offsets = self._offsets
        offsets_get = offsets.get
        encoded = name.encoded_labels()
        suffixes = name.suffix_keys()
        index = 0
        count = len(labels)
        while index < count:
            suffix = suffixes[index]
            target = offsets_get(suffix)
            if target is not None:
                if use_compression:
                    buf += _pack_u16(0xC000 | target)
                    return
            else:
                position = len(buf)
                if position <= _MAX_POINTER:
                    offsets[suffix] = position
            buf += encoded[index]
            index += 1
        buf.append(0)


class WireReader:
    """Cursor over a received packet with pointer-chasing name decoding."""

    def __init__(self, data: bytes, offset: int = 0):
        if not isinstance(data, bytes):
            data = bytes(data)  # one normalising copy beats per-label copies
        self.data = data
        self.offset = offset
        #: start offset -> (decoded Name, offset after it).  Compression
        #: makes every record owner a two-byte pointer at the question
        #: name, so one packet decodes the same name dozens of times.
        self._names: dict[int, tuple[Name, int]] = {}

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def at_end(self) -> bool:
        return self.offset >= len(self.data)

    def _need(self, count: int) -> None:
        if self.offset + count > len(self.data):
            raise WireError(
                f"truncated packet: need {count} bytes at offset {self.offset}, "
                f"have {len(self.data) - self.offset}"
            )

    def read(self, count: int) -> bytes:
        offset = self.offset
        end = offset + count
        if end > len(self.data):
            self._need(count)  # raises with the standard message
        self.offset = end
        return self.data[offset:end]

    def read_u8(self) -> int:
        offset = self.offset
        if offset >= len(self.data):
            self._need(1)
        self.offset = offset + 1
        return self.data[offset]

    def read_u16(self) -> int:
        offset = self.offset
        if offset + 2 > len(self.data):
            self._need(2)
        self.offset = offset + 2
        return (self.data[offset] << 8) | self.data[offset + 1]

    def read_u32(self) -> int:
        offset = self.offset
        if offset + 4 > len(self.data):
            self._need(4)
        (value,) = _unpack_u32(self.data, offset)
        self.offset = offset + 4
        return value

    def read_u48(self) -> int:
        high, low = _U48.unpack_from(self.data, self.read_and_keep(6))
        return high << 32 | low

    def read_and_keep(self, count: int) -> int:
        """Advance past ``count`` bytes, returning the prior offset."""
        self._need(count)
        start = self.offset
        self.offset += count
        return start

    def read_name(self) -> Name:
        """Decode a possibly compressed name, guarding against pointer loops."""
        names = self._names
        start = self.offset
        cached = names.get(start)
        if cached is not None:
            self.offset = cached[1]
            return cached[0]
        data = self.data
        size = len(data)
        labels: list[bytes] = []
        total = 1
        jumps = 0
        cursor = start
        resume: int | None = None
        name: Name | None = None
        while True:
            if cursor >= size:
                raise WireError("name runs off end of packet")
            length = data[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                if cursor + 1 >= size:
                    raise WireError("truncated compression pointer")
                target = (length & ~_POINTER_MASK) << 8 | data[cursor + 1]
                if resume is None:
                    resume = cursor + 2
                if target >= cursor:
                    raise WireError("forward compression pointer")
                hit = names.get(target)
                if hit is not None:
                    # The tail from here was already decoded (and its walk
                    # validated) — splice it instead of re-chasing.
                    tail = hit[0]
                    total += tail._wlen - 1
                    if total > MAX_NAME_LENGTH:
                        raise WireError("decoded name too long")
                    if labels:
                        labels.extend(tail.labels)
                    else:
                        name = tail
                    break
                jumps += 1
                if jumps > 64:
                    raise WireError("compression pointer loop")
                cursor = target
            elif length & _POINTER_MASK:
                raise WireError(f"reserved label type 0x{length & _POINTER_MASK:02x}")
            elif length == 0:
                cursor += 1
                break
            else:
                if cursor + 1 + length > size:
                    raise WireError("label runs off end of packet")
                labels.append(data[cursor + 1 : cursor + 1 + length])
                total += length + 1
                if total > MAX_NAME_LENGTH:
                    raise WireError("decoded name too long")
                cursor += 1 + length
        end = resume if resume is not None else cursor
        self.offset = end
        if name is None:
            name = _intern_name(tuple(labels))
        names[start] = (name, end)
        return name
