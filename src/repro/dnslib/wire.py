"""Low-level wire format primitives: cursor-based reading and writing with
RFC 1035 section 4.1.4 name compression.

Hot-path notes: fixed-width fields go through prebound
:class:`struct.Struct` pack/unpack (no per-call format parsing), names
are written from their memoised length-prefixed label encodings in one
buffer append per label, and decoded names are interned so repeated
owners share one validated instance.

Name decoding lives in the module-level :func:`decode_name_at` so the
flat message scanner in :mod:`repro.dnslib.message` and the cursor
:class:`WireReader` share one pointer-target memo format
(``start offset -> (Name, end offset)``) and one validated walk."""

from __future__ import annotations

import struct

from .name import MAX_NAME_LENGTH, Name

#: A compression pointer is two bytes whose top two bits are set.
_POINTER_MASK = 0xC0
_MAX_POINTER = 0x3FFF

#: Sentinel key set in a name memo when any pointer targeted the
#: transaction-id bytes (offsets 0-1).  Such a decode depends on the
#: txid, so the packet must not enter txid-agnostic decode memos.
#: Real entries are keyed on non-negative start offsets, so the
#: sentinel can never collide with a pointer target.
TAINT_KEY = -1
_TAINT_ENTRY = (None, -1)

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U48 = struct.Struct("!HI")
_HEADER = struct.Struct("!HHHHHH")
_pack_u16 = _U16.pack
_pack_u32 = _U32.pack
_unpack_u16 = _U16.unpack_from
_unpack_u32 = _U32.unpack_from
_intern_name = Name.intern


class WireError(ValueError):
    """Raised when a packet cannot be decoded."""


def peek_txid(data) -> int:
    """The transaction id of a packet without decoding anything else.

    Reply matching uses this to discard wrong-txid datagrams (cross-talk,
    late retransmissions) without paying for a full message decode."""
    if len(data) < 2:
        raise WireError(f"packet shorter than a transaction id: {len(data)} bytes")
    return (data[0] << 8) | data[1]


def peek_header(data) -> tuple[int, int, int, int, int, int]:
    """Decode only the fixed 12-byte header.

    Returns ``(id, flags_int, qdcount, ancount, nscount, arcount)``; the
    flags stay a raw integer so this never touches the enum layer."""
    if len(data) < 12:
        raise WireError(f"message shorter than header: {len(data)} bytes")
    return _HEADER.unpack_from(data, 0)


def decode_name_at(
    data: bytes, start: int, names: dict[int, tuple[Name, int]]
) -> tuple[Name, int]:
    """Decode a possibly compressed name at ``start``, guarding against
    pointer loops.  Returns ``(name, offset after the name at start)``
    and memoises the result in ``names`` keyed on ``start``."""
    cached = names.get(start)
    if cached is not None:
        return cached
    size = len(data)
    labels: list[bytes] = []
    total = 1
    jumps = 0
    cursor = start
    resume: int | None = None
    name: Name | None = None
    while True:
        if cursor >= size:
            raise WireError("name runs off end of packet")
        length = data[cursor]
        if length & _POINTER_MASK == _POINTER_MASK:
            if cursor + 1 >= size:
                raise WireError("truncated compression pointer")
            target = (length & ~_POINTER_MASK) << 8 | data[cursor + 1]
            if resume is None:
                resume = cursor + 2
            if target >= cursor:
                raise WireError("forward compression pointer")
            if target < 2:
                names[TAINT_KEY] = _TAINT_ENTRY
            hit = names.get(target)
            if hit is not None:
                # The tail from here was already decoded (and its walk
                # validated) — splice it instead of re-chasing.
                tail = hit[0]
                total += tail._wlen - 1
                if total > MAX_NAME_LENGTH:
                    raise WireError("decoded name too long")
                if labels:
                    labels.extend(tail.labels)
                else:
                    name = tail
                break
            jumps += 1
            if jumps > 64:
                raise WireError("compression pointer loop")
            cursor = target
        elif length & _POINTER_MASK:
            raise WireError(f"reserved label type 0x{length & _POINTER_MASK:02x}")
        elif length == 0:
            cursor += 1
            break
        else:
            if cursor + 1 + length > size:
                raise WireError("label runs off end of packet")
            labels.append(data[cursor + 1 : cursor + 1 + length])
            total += length + 1
            if total > MAX_NAME_LENGTH:
                raise WireError("decoded name too long")
            cursor += 1 + length
    end = resume if resume is not None else cursor
    if name is None:
        name = _intern_name(tuple(labels))
    entry = (name, end)
    names[start] = entry
    return entry


class WireWriter:
    """Accumulates a DNS message, tracking name offsets for compression."""

    def __init__(self, enable_compression: bool = True):
        self._buf = bytearray()
        self._offsets: dict[tuple[bytes, ...], int] = {}
        self._compress = enable_compression

    def __len__(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def write(self, data: bytes) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def write_u16(self, value: int) -> None:
        self._buf += _pack_u16(value & 0xFFFF)

    def write_u32(self, value: int) -> None:
        self._buf += _pack_u32(value & 0xFFFFFFFF)

    def write_u48(self, value: int) -> None:
        self._buf += _U48.pack((value >> 32) & 0xFFFF, value & 0xFFFFFFFF)

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a previously written 16-bit field (e.g. RDLENGTH)."""
        self._buf[offset : offset + 2] = _pack_u16(value & 0xFFFF)

    def write_name(self, name: Name, compress: bool | None = None) -> None:
        """Write ``name``, emitting a compression pointer for any suffix
        already present in the message."""
        use_compression = self._compress if compress is None else compress
        buf = self._buf
        labels = name.labels
        if not labels:
            buf.append(0)
            return
        offsets = self._offsets
        offsets_get = offsets.get
        suffixes = name.suffix_keys()
        if use_compression:
            # whole-name hit first: repeated owners (every answer in a
            # section, glue matching an NS target) collapse to one probe
            # and a two-byte pointer
            target = offsets_get(suffixes[0])
            if target is not None:
                buf += _pack_u16(0xC000 | target)
                return
        encoded = name.encoded_labels()
        index = 0
        count = len(labels)
        while index < count:
            suffix = suffixes[index]
            target = offsets_get(suffix)
            if target is not None:
                if use_compression:
                    buf += _pack_u16(0xC000 | target)
                    return
            else:
                position = len(buf)
                if position <= _MAX_POINTER:
                    offsets[suffix] = position
            buf += encoded[index]
            index += 1
        buf.append(0)


class WireReader:
    """Cursor over a received packet with pointer-chasing name decoding."""

    def __init__(self, data: bytes, offset: int = 0):
        if not isinstance(data, bytes):
            data = bytes(data)  # one normalising copy beats per-label copies
        self.data = data
        self.offset = offset
        #: start offset -> (decoded Name, offset after it).  Compression
        #: makes every record owner a two-byte pointer at the question
        #: name, so one packet decodes the same name dozens of times.
        self._names: dict[int, tuple[Name, int]] = {}

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def at_end(self) -> bool:
        return self.offset >= len(self.data)

    def _need(self, count: int) -> None:
        if self.offset + count > len(self.data):
            raise WireError(
                f"truncated packet: need {count} bytes at offset {self.offset}, "
                f"have {len(self.data) - self.offset}"
            )

    def read(self, count: int) -> bytes:
        offset = self.offset
        end = offset + count
        if end > len(self.data):
            self._need(count)  # raises with the standard message
        self.offset = end
        return self.data[offset:end]

    def read_u8(self) -> int:
        offset = self.offset
        if offset >= len(self.data):
            self._need(1)
        self.offset = offset + 1
        return self.data[offset]

    def read_u16(self) -> int:
        offset = self.offset
        if offset + 2 > len(self.data):
            self._need(2)
        self.offset = offset + 2
        return (self.data[offset] << 8) | self.data[offset + 1]

    def read_u32(self) -> int:
        offset = self.offset
        if offset + 4 > len(self.data):
            self._need(4)
        (value,) = _unpack_u32(self.data, offset)
        self.offset = offset + 4
        return value

    def read_u48(self) -> int:
        high, low = _U48.unpack_from(self.data, self.read_and_keep(6))
        return high << 32 | low

    def read_and_keep(self, count: int) -> int:
        """Advance past ``count`` bytes, returning the prior offset."""
        self._need(count)
        start = self.offset
        self.offset += count
        return start

    def read_name(self) -> Name:
        """Decode a possibly compressed name, guarding against pointer loops."""
        name, end = decode_name_at(self.data, self.offset, self._names)
        self.offset = end
        return name
