"""Master-file (zone file) loading (RFC 1035 section 5).

Supports ``$ORIGIN`` / ``$TTL`` directives, relative and ``@`` owner
names, owner inheritance from the previous record, optional TTL/class
fields in either order, parenthesised multi-line records, and comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .message import ResourceRecord
from .name import Name
from .text_format import TextParseError, rdata_from_text
from .types import DNSClass, RRType, type_from_text

_CLASSES = {"IN", "CH", "HS"}


class ZoneParseError(ValueError):
    """Raised for malformed zone files, with line information."""


@dataclass
class Zone:
    """A parsed zone: origin plus its records in file order."""

    origin: Name
    records: list[ResourceRecord] = field(default_factory=list)

    def find(self, name: Name | str, rrtype: RRType | None = None) -> list[ResourceRecord]:
        if isinstance(name, str):
            name = Name.from_text(name) if name.endswith(".") else (
                Name.from_text(name).concatenate(self.origin)
            )
        return [
            record
            for record in self.records
            if record.name == name and (rrtype is None or int(record.rrtype) == int(rrtype))
        ]

    def names(self) -> set[Name]:
        return {record.name for record in self.records}


def _logical_lines(text: str):
    """Join parenthesised continuations; yield (line_number, line)."""
    pending = ""
    pending_start = 0
    depth = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if depth == 0:
            pending = line
            pending_start = number
        else:
            pending += " " + line.strip()
        depth += line.count("(") - line.count(")")
        if depth < 0:
            raise ZoneParseError(f"line {number}: unbalanced ')'")
        if depth == 0 and pending.strip():
            yield pending_start, pending.replace("(", " ").replace(")", " ")
    if depth != 0:
        raise ZoneParseError(f"line {pending_start}: unclosed '('")


def _strip_comment(line: str) -> str:
    if ";" not in line:
        return line  # fast path: nothing to strip, no escape scan needed
    if '"' not in line and "\\" not in line:
        return line[: line.index(";")]
    out = []
    in_quotes = False
    escaped = False
    for char in line:
        if escaped:
            out.append(char)
            escaped = False
            continue
        if char == "\\":
            out.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == ";" and not in_quotes:
            break
        out.append(char)
    return "".join(out)


def parse_zone(text: str, origin: Name | str | None = None, default_ttl: int = 3600) -> Zone:
    """Parse zone-file text into a :class:`Zone`."""
    return parse_zone_lines(_logical_lines(text), origin=origin, default_ttl=default_ttl)


def parse_zone_lines(
    lines, origin: Name | str | None = None, default_ttl: int = 3600
) -> Zone:
    """Bulk-parse presentation-format records from an iterable of
    logical lines — either plain strings or ``(line_number, line)``
    pairs.  Zone synthesis that already holds clean generated lines
    feeds them here directly, skipping the comment-stripping and
    parenthesis-joining passes of :func:`parse_zone`; rdata parsing is
    memoised in :func:`repro.dnslib.text_format.rdata_from_text`, so
    repeated rdata strings cost one parse for the whole batch."""
    if isinstance(origin, str):
        origin = Name.from_text(origin)
    current_origin = origin
    current_ttl = default_ttl
    last_owner: Name | None = None
    records: list[ResourceRecord] = []

    for entry in _numbered(lines):
        number, line = entry
        starts_with_space = line[:1] in (" ", "\t")
        fields = line.split()
        if not fields:
            continue

        if fields[0].startswith("$"):
            directive = fields[0].upper()
            if directive == "$ORIGIN":
                if len(fields) != 2:
                    raise ZoneParseError(f"line {number}: $ORIGIN needs one argument")
                current_origin = Name.from_text(fields[1])
            elif directive == "$TTL":
                if len(fields) != 2 or not fields[1].isdigit():
                    raise ZoneParseError(f"line {number}: $TTL needs an integer")
                current_ttl = int(fields[1])
            else:
                raise ZoneParseError(f"line {number}: unknown directive {fields[0]}")
            continue

        # owner: explicit unless the line starts with whitespace
        if starts_with_space:
            owner = last_owner
            if owner is None:
                raise ZoneParseError(f"line {number}: no previous owner to inherit")
        else:
            owner = _owner_name(fields.pop(0), current_origin, number)
            last_owner = owner

        ttl = current_ttl
        rrclass = DNSClass.IN
        # optional TTL and class, in either order, before the type
        for _ in range(2):
            if fields and fields[0].isdigit():
                ttl = int(fields.pop(0))
            elif fields and fields[0].upper() in _CLASSES:
                rrclass = DNSClass[fields.pop(0).upper()]
        if not fields:
            raise ZoneParseError(f"line {number}: missing record type")
        try:
            rrtype = type_from_text(fields.pop(0))
        except ValueError as error:
            raise ZoneParseError(f"line {number}: {error}") from None

        # everything after the type token is rdata
        remainder = " ".join(fields)
        try:
            rdata = rdata_from_text(rrtype, remainder, origin=current_origin)
        except TextParseError as error:
            raise ZoneParseError(f"line {number}: {error}") from None

        records.append(ResourceRecord(owner, rrtype, rrclass, ttl, rdata))

    if current_origin is None:
        if not records:
            raise ZoneParseError("empty zone and no origin")
        current_origin = records[0].name
    return Zone(origin=current_origin, records=records)


def _numbered(lines):
    """Normalise a line iterable to (number, line) pairs."""
    for index, item in enumerate(lines, start=1):
        if isinstance(item, tuple):
            yield item
        else:
            yield index, item


def _owner_name(token: str, origin: Name | None, number: int) -> Name:
    if token == "@":
        if origin is None:
            raise ZoneParseError(f"line {number}: @ without $ORIGIN")
        return origin
    if token.endswith("."):
        return Name.from_text(token)
    if origin is None:
        raise ZoneParseError(f"line {number}: relative owner without $ORIGIN")
    return Name.from_text(token).concatenate(origin)


def load_zone(path: str, origin: Name | str | None = None) -> Zone:
    """Parse a zone from a file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_zone(handle.read(), origin=origin)


def zone_to_text(zone: Zone) -> str:
    """Serialise a zone back to master-file format.

    Output parses back to an equivalent zone (``parse_zone`` of the
    result yields the same records).
    """
    lines = [f"$ORIGIN {zone.origin.to_text()}"]
    for record in zone.records:
        rrtype = record.rrtype
        type_text = rrtype.name if hasattr(rrtype, "name") else f"TYPE{int(rrtype)}"
        lines.append(
            f"{record.name.to_text()} {record.ttl} "
            f"{DNSClass(int(record.rrclass)).name} {type_text} {record.rdata.to_text()}"
        )
    return "\n".join(lines) + "\n"
