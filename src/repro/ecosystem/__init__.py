"""repro.ecosystem — the simulated global DNS.

Procedurally synthesised zones (root → TLD → provider-hosted domains,
plus the in-addr.arpa hierarchy), authoritative server models with the
paper's observed misbehaviours, and public recursive resolver models.
"""

from .deltas import ZoneDelta, publish_zone_delta
from .dnssec import EPOCH_BASE
from .params import (
    CLOUDFLARE_RESOLVER_IP,
    GOOGLE_RESOLVER_IP,
    ROOT_SERVER_IPS,
    EcosystemParams,
    ProviderProfile,
    all_tlds,
    tld_class,
)
from .publicresolver import PublicResolver
from .servers import (
    ArpaServer,
    InfraServer,
    ProviderAuthServer,
    RdnsOperatorServer,
    RootServer,
    TLDServer,
)
from .universe import SimInternet, build_internet
from .zonegen import CAAProfile, DnssecProfile, DomainProfile, NameserverInfo, ZoneSynthesizer

__all__ = [
    "ArpaServer",
    "CAAProfile",
    "CLOUDFLARE_RESOLVER_IP",
    "DnssecProfile",
    "DomainProfile",
    "EPOCH_BASE",
    "EcosystemParams",
    "GOOGLE_RESOLVER_IP",
    "InfraServer",
    "NameserverInfo",
    "ProviderAuthServer",
    "ProviderProfile",
    "PublicResolver",
    "ROOT_SERVER_IPS",
    "RdnsOperatorServer",
    "RootServer",
    "SimInternet",
    "TLDServer",
    "ZoneDelta",
    "ZoneSynthesizer",
    "all_tlds",
    "build_internet",
    "publish_zone_delta",
    "tld_class",
]
