"""Authoritative record synthesis shared by the provider authoritative
servers and the public recursive resolver models."""

from __future__ import annotations

from functools import lru_cache

from ..dnslib import DNSClass, Flags, Message, Name, Rcode, ResourceRecord, RRType
from ..dnslib.rdata.address import A, AAAA
from ..dnslib.rdata.mail import MX
from ..dnslib.rdata.names import CNAME, NS, SOA
from ..dnslib.rdata.security import CAA
from ..dnslib.rdata.text import TXT
from . import rand
from .dnssec import make_dnskey, make_ds, make_nsec, sign_rrset
from .zonegen import DnssecProfile, DomainProfile, NameserverInfo, ZoneSynthesizer

REFERRAL_TTL = 172_800
ANSWER_TTL = 300
SOA_TTL = 900

_MAIL_LABELS = [Name.from_text(f"mail{i}") for i in (1, 2, 3)]
_CAA_LABEL = Name.from_text("_caa")


def rr(name: Name, rrtype: RRType, ttl: int, rdata) -> ResourceRecord:
    return ResourceRecord(name, rrtype, DNSClass.IN, ttl, rdata)


@lru_cache(maxsize=8192)
def soa_for(zone: Name) -> ResourceRecord:
    return rr(
        zone,
        RRType.SOA,
        SOA_TTL,
        SOA(
            mname=Name.from_text("ns1").concatenate(zone),
            rname=Name.from_text("hostmaster").concatenate(zone),
            serial=2022_10_25,
        ),
    )


def nxdomain(query: Message, zone: Name) -> Message:
    response = query.make_response(rcode=Rcode.NXDOMAIN, authoritative=True)
    response.authorities.append(soa_for(zone))
    return response


def nodata(query: Message, zone: Name) -> Message:
    response = query.make_response(authoritative=True)
    response.authorities.append(soa_for(zone))
    return response


def sign_sections(response: Message, zone: Name, dp: DnssecProfile) -> None:
    """Append an RRSIG per (owner, type) RRset in answers/authorities."""
    for section in (response.answers, response.authorities):
        groups: dict[tuple, list] = {}
        for record in section:
            groups.setdefault((record.name, int(record.rrtype)), []).append(record)
        for records in groups.values():
            section.append(sign_rrset(records, zone, dp.key, dp.inception, dp.expiration))


def ds_answer(synth: ZoneSynthesizer, query: Message, parent: Name, child: Name) -> Message:
    """The parent-side authoritative answer for a DS query (DO set).

    DS lives only at the parent: a signed, non-island child gets its DS
    RRset (digest deliberately wrong for ``broken_ds`` zones); unsigned
    and island children get an authenticated denial — signed NSEC proof
    that no DS exists, which is what lets a validator conclude
    *Insecure* rather than *Bogus*.
    """
    parent_dp = synth.dnssec_profile(parent)
    child_dp = synth.dnssec_profile(child)
    response = query.make_response(authoritative=True)
    if child_dp.signed and not child_dp.island:
        response.answers.append(make_ds(child, child_dp.key, broken=child_dp.broken_ds))
    else:
        response.authorities.append(soa_for(parent))
        response.authorities.append(make_nsec(child, parent, (int(RRType.NS),)))
    if parent_dp.signed:
        sign_sections(response, parent, parent_dp)
    return response


def apex_answer(
    synth: ZoneSynthesizer, query: Message, zone: Name, do: bool
) -> Message | None:
    """DNSSEC-aware apex answer for infrastructure zones (root, TLDs).

    Returns a DNSKEY answer or a signed nodata when DO is set and the
    zone is signed; ``None`` means the caller should fall back to its
    pre-DNSSEC behaviour (plain nodata) — the byte-identical path.
    """
    if not do:
        return None
    dp = synth.dnssec_profile(zone)
    if not dp.signed:
        return None
    qtype = int(query.question.rrtype)
    response = query.make_response(authoritative=True)
    if qtype in (int(RRType.DNSKEY), int(RRType.ANY)):
        response.answers.append(make_dnskey(zone, dp.key))
    else:
        response.authorities.append(soa_for(zone))
        response.authorities.append(
            make_nsec(query.question.name, zone, (int(RRType.SOA), int(RRType.NS)))
        )
    sign_sections(response, zone, dp)
    return response


def signed_nxdomain(synth: ZoneSynthesizer, query: Message, zone: Name, do: bool) -> Message:
    """NXDOMAIN from ``zone``, with NSEC denial when DO and signed."""
    response = nxdomain(query, zone)
    if do:
        dp = synth.dnssec_profile(zone)
        if dp.signed:
            response.authorities.append(make_nsec(query.question.name, zone, ()))
            sign_sections(response, zone, dp)
    return response


def build_answer(
    synth: ZoneSynthesizer,
    query: Message,
    profile: DomainProfile,
    ns: NameserverInfo | None = None,
    protocol: str = "udp",
    do: bool = False,
) -> Message:
    """The authoritative answer for a question about an existing domain.

    ``ns`` is the responding nameserver, used to produce per-nameserver
    inconsistent answers for providers that have them (Section 5);
    ``None`` means the canonical (consistent) answer.  ``do`` is the
    query's EDNS DO bit: when set and the zone is signed, answers gain
    RRSIGs, denials gain NSEC, and DNSKEY is served at the apex —
    queries without DO get pre-DNSSEC bytes, unconditionally.
    """
    question = query.question
    name = question.name
    qtype = int(question.rrtype)
    dp = synth.dnssec_profile(profile.base) if do else None
    if dp is not None and not dp.signed:
        dp = None

    if not synth.subdomain_exists(name, profile):
        response = nxdomain(query, profile.base)
        if dp is not None:
            response.authorities.append(make_nsec(name, profile.base, ()))
            sign_sections(response, profile.base, dp)
        return response

    if profile.truncates and qtype == int(RRType.A) and protocol == "udp" and ns is not None:
        # Oversized response (0.4% in the paper): TC bit forces TCP retry.
        response = query.make_response(authoritative=True)
        response.flags = Flags.from_int(response.flags.to_int() | 0x0200)  # TC=1
        return response

    response = query.make_response(authoritative=True)
    apex = name == profile.base

    if qtype in (int(RRType.A), int(RRType.ANY)):
        _add_a_records(synth, response, name, profile, ns)
    if qtype in (int(RRType.AAAA), int(RRType.ANY)) and _uniform(synth, name, "has-aaaa") < 0.35:
        value = rand.h64(synth.params.seed, _key(name), "aaaa-host") % 0xFFFF
        response.answers.append(rr(name, RRType.AAAA, ANSWER_TTL, AAAA(f"2001:db8::{value:x}")))
    if qtype in (int(RRType.NS), int(RRType.ANY)) and apex:
        for info in profile.nameservers:
            response.answers.append(rr(name, RRType.NS, REFERRAL_TTL, NS(info.name)))
    if qtype == int(RRType.SOA) and apex:
        response.answers.append(soa_for(profile.base))
    if qtype in (int(RRType.MX), int(RRType.ANY)) and apex and profile.has_mx:
        count = 1 + rand.h64(synth.params.seed, _key(name), "mxcount") % 3
        for i in range(count):
            exchange = _MAIL_LABELS[i].concatenate(profile.base)
            response.answers.append(rr(name, RRType.MX, ANSWER_TTL, MX((i + 1) * 10, exchange)))
    if qtype in (int(RRType.TXT), int(RRType.ANY)):
        _add_txt_records(response, name, profile)
    if qtype == int(RRType.CAA):
        _add_caa_records(response, name, profile)
    if qtype == int(RRType.HTTPS):
        _add_https_records(synth, response, name, profile)
    if dp is not None and apex and qtype in (int(RRType.DNSKEY), int(RRType.ANY)):
        response.answers.append(make_dnskey(profile.base, dp.key))

    if not response.answers:
        response = nodata(query, profile.base)
        if dp is not None:
            response.authorities.append(make_nsec(name, profile.base, ()))
            sign_sections(response, profile.base, dp)
        return response
    if dp is not None:
        sign_sections(response, profile.base, dp)
    return response


def _add_a_records(synth, response, name, profile, ns):
    is_www = len(name.labels) == len(profile.base.labels) + 1 and name.labels[0].lower() == b"www"
    if is_www and profile.www_is_cname:
        response.answers.append(rr(name, RRType.CNAME, ANSWER_TTL, CNAME(profile.base)))
        # Canonical answers (resolver view) also chase the chain.
        if ns is None:
            for address in synth.host_addresses(profile.base, "a"):
                response.answers.append(rr(profile.base, RRType.A, ANSWER_TTL, A(address)))
        return
    salt = "a"
    if ns is not None and not profile.consistent_answers:
        salt = f"a-ns-{ns.name.to_text()}"  # Section 5's inconsistent providers
    for address in synth.host_addresses(name, salt):
        response.answers.append(rr(name, RRType.A, ANSWER_TTL, A(address)))


def _add_https_records(synth, response, name, profile):
    """Modern CDN-hosted domains publish HTTPS service bindings; the
    big consistent providers (Cloudflare-like) are the main adopters."""
    from ..dnslib.rdata.svcb import HTTPS, KEY_ALPN, KEY_IPV4HINT, alpn_value, ipv4hint_value

    if not profile.provider.consistent_answers or profile.provider.ns_pool < 6:
        return  # only the large managed providers publish these
    if _uniform(synth, name, "https-rr") >= 0.5:
        return
    hints = ipv4hint_value(*synth.host_addresses(name, "a")[:2])
    response.answers.append(
        rr(
            name,
            RRType.HTTPS,
            ANSWER_TTL,
            HTTPS(1, Name.root(), ((KEY_ALPN, alpn_value("h2", "h3")), (KEY_IPV4HINT, hints))),
        )
    )


def _add_txt_records(response, name, profile):
    apex = name == profile.base
    if apex and profile.has_spf:
        response.answers.append(
            rr(name, RRType.TXT, ANSWER_TTL, TXT.from_string("v=spf1 include:_spf.example -all"))
        )
    is_dmarc = (
        len(name.labels) == len(profile.base.labels) + 1 and name.labels[0].lower() == b"_dmarc"
    )
    if is_dmarc and profile.has_dmarc:
        response.answers.append(
            rr(name, RRType.TXT, ANSWER_TTL, TXT.from_string("v=DMARC1; p=none;"))
        )


def _add_caa_records(response, name, profile):
    """CAA at the apex; via_cname domains answer with a CNAME whose
    ``_caa.<base>`` target carries the records (RFC 8659 chasing)."""
    caa = profile.caa
    if caa is None:
        return
    apex = name == profile.base
    cname_target = _CAA_LABEL.concatenate(profile.base)
    if caa.via_cname:
        if apex:
            response.answers.append(rr(name, RRType.CNAME, ANSWER_TTL, CNAME(cname_target)))
        elif name == cname_target:
            _emit_caa(response, name, caa)
        return
    if apex:
        _emit_caa(response, name, caa)


def _emit_caa(response, owner, caa):
    for issuer in caa.issue:
        response.answers.append(rr(owner, RRType.CAA, ANSWER_TTL, CAA(0, "issue", issuer)))
    for issuer in caa.issuewild:
        response.answers.append(rr(owner, RRType.CAA, ANSWER_TTL, CAA(0, "issuewild", issuer)))
    for target in caa.iodef:
        response.answers.append(rr(owner, RRType.CAA, ANSWER_TTL, CAA(0, "iodef", target)))
    for bad in caa.invalid_tags:
        response.answers.append(rr(owner, RRType.CAA, ANSWER_TTL, CAA(0, bad, "")))


def _key(name: Name) -> str:
    return name.key_text()


def _uniform(synth, name, tag) -> float:
    return rand.uniform(synth.params.seed, _key(name), tag)
