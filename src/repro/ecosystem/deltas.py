"""Zone-delta publication: in-place mutation of the simulated Internet.

A long-lived resolver service faces a moving target: zones re-delegate,
records change, and a cache built yesterday is partially wrong today.
This module gives the simulated universe that behaviour without
breaking its two load-bearing properties:

* **Determinism.**  A base domain's zone is a pure function of
  ``(seed, name, generation)``; publishing a delta just advances the
  generation counter in the :class:`~repro.ecosystem.zonegen.ZoneSynthesizer`,
  so two runs that publish the same deltas at the same virtual times see
  byte-identical universes.  Batch scans never publish, their generation
  map stays empty, and the synthesiser's hot path is untouched.
* **Memo transparency.**  Authoritative servers memoise fully built
  responses (:class:`~repro.ecosystem.servers.ResponseMemo`).  Those
  memos are pure performance caches, so clearing them is always safe —
  and after a delta it is *required*, or the old generation's referrals
  and answers would keep being served.  ``publish_zone_delta`` clears
  every registered server's memo; selective clearing would save a few
  rebuilds but risks missing a holder (glue in additionals, CNAME
  chases into the mutated zone), and correctness wins.

What a delta changes: the domain's delegation (provider, NS set,
per-server flakiness), its leaf content (host addresses, MX/SPF/DMARC
posture, CAA, www-CNAME shape) — everything except its *registration*:
an existing domain stays existing, so a delta models a zone update or
transfer, not a takedown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dnslib import Name

__all__ = ["ZoneDelta", "publish_zone_delta"]


@dataclass(frozen=True)
class ZoneDelta:
    """One published mutation, as recorded in service event logs."""

    seq: int
    #: Virtual-clock time of publication.
    time: float
    #: The mutated base domain (presentation text, no final dot).
    base: str
    #: The zone's generation after this delta (1 = first mutation).
    generation: int

    def to_row(self) -> dict:
        return {
            "event": "zone_delta",
            "seq": self.seq,
            "t": round(self.time, 6),
            "base": self.base,
            "generation": self.generation,
        }


def publish_zone_delta(internet, base: Name | str) -> int:
    """Mutate one base domain's zone in place.

    Advances the zone's generation in the universe's synthesiser (the
    next ``profile()``/``host_addresses()`` calls re-derive delegation
    and content under the new generation) and clears the response memo
    of every registered server, so no pre-delta response survives.
    Returns the new generation number.

    The caller decides *when* (virtual time) and *what* (which base);
    this function is pure bookkeeping, so it is equally usable by the
    resolver service, the differential oracle's mirror
    (:meth:`repro.oracle.DifferentialOracle.note_zone_change`), and
    tests.
    """
    if isinstance(base, str):
        base = Name.from_text(base)
    synth = internet.synth
    registrable = synth.base_domain_of(base)
    if registrable is None:
        raise ValueError(f"{base.to_text()} is not under a known TLD")
    generation = synth.bump_generation(registrable)
    for server in internet.network.servers():
        memo = getattr(server, "memo", None)
        if memo is not None:
            memo._entries.clear()
    return generation
