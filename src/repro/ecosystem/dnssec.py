"""Synthetic DNSSEC material for the simulated Internet.

Real public-key cryptography would dominate every signed response, so
the simulated universe uses *hash signatures*: a zone's "private key"
and "public key" are the same seed-derived byte string, and an RRSIG's
signature is a keyed blake2b digest over the canonical RRset.  A
validator holding the DNSKEY recomputes the digest and compares; a
validator without it (or with a rolled key) cannot.  This preserves
every property the resolver-side state machine cares about — DS↔DNSKEY
binding, signature↔key binding, expiry windows, unverifiable data after
stripping or desync — at hash cost, and keeps all material a pure
function of (seed, zone, generation) so the reference oracle can
re-derive it independently.

Algorithm number 253 (PRIVATEDNS, RFC 4034 appendix A.1) marks the
records as deliberately non-standard.
"""

from __future__ import annotations

from hashlib import blake2b

from ..dnslib import DNSClass, Name, ResourceRecord, RRType
from ..dnslib.rdata.dnssec import DNSKEY, DS, NSEC, RRSIG
from . import rand

#: Virtual-clock zero maps to this absolute epoch (2022-10-25, the
#: paper's measurement window) when stamping RRSIG inception/expiration.
EPOCH_BASE = 1_666_656_000

#: RFC 4034 appendix A.1 private algorithm; protocol is always 3.
ALGORITHM = 253
PROTOCOL = 3
#: Digest type is notionally SHA-256-shaped (type 2) but blake2b-based.
DIGEST_TYPE = 2
#: DNSKEY flags: zone key + SEP (one combined KSK/ZSK per zone).
KEY_FLAGS = 257

DNSKEY_TTL = 3600
DS_TTL = 3600
NSEC_TTL = 300


def zone_key_bytes(seed: int, zone: Name, generation: int = 0) -> bytes:
    """The zone's 16-byte key material — pure in (seed, zone, generation).

    Salting with the generation means ``bump_generation`` rolls the key:
    cached RRSIGs made by the old key no longer verify against the new
    DNSKEY, which is exactly the stale-chain hazard the delta machinery
    must flush (and the ``rollover_desync`` fault directive emulates).
    """
    word = rand.h64(seed, "dnskey", zone.key_text(), generation)
    return blake2b(word.to_bytes(8, "little"), digest_size=16).digest()


def key_tag(public_key: bytes) -> int:
    """A stable 16-bit identifier for the key (not the RFC 4034 sum)."""
    return int.from_bytes(blake2b(public_key, digest_size=2).digest(), "big")


def make_dnskey(zone: Name, public_key: bytes) -> ResourceRecord:
    """The zone's apex DNSKEY record."""
    return ResourceRecord(
        zone, RRType.DNSKEY, DNSClass.IN, DNSKEY_TTL,
        DNSKEY(KEY_FLAGS, PROTOCOL, ALGORITHM, public_key),
    )


def ds_digest(child_zone: Name, public_key: bytes) -> bytes:
    """The parent-side digest binding a child zone to its DNSKEY."""
    h = blake2b(digest_size=16)
    h.update(b"ds|")
    h.update(child_zone.key_text().encode("ascii"))
    h.update(b"|")
    h.update(public_key)
    return h.digest()


def make_ds(child_zone: Name, public_key: bytes, broken: bool = False) -> ResourceRecord:
    """The DS record the parent serves for ``child_zone``.

    ``broken=True`` plants a botched-rollover chain: digest bytes are
    flipped, so the DS can never match the child's DNSKEY (Bogus).
    """
    digest = ds_digest(child_zone, public_key)
    if broken:
        digest = bytes(b ^ 0xFF for b in digest)
    return ResourceRecord(
        child_zone, RRType.DS, DNSClass.IN, DS_TTL,
        DS(key_tag(public_key), ALGORITHM, DIGEST_TYPE, digest),
    )


def ds_matches(ds_rdata, public_key: bytes, child_zone: Name) -> bool:
    """Does a parent-side DS bind this child DNSKEY?"""
    return ds_rdata.digest == ds_digest(child_zone, public_key)


def _rrset_digest(public_key: bytes, signer: Name, records, expiration: int, inception: int) -> bytes:
    """Keyed digest over the canonical RRset — the "signature" bytes."""
    first = records[0]
    h = blake2b(digest_size=24)
    h.update(public_key)
    h.update(b"|")
    h.update(signer.key_text().encode("ascii"))
    h.update(b"|")
    h.update(first.name.key_text().encode("ascii"))
    h.update(int(first.rrtype).to_bytes(2, "big"))
    h.update(expiration.to_bytes(4, "big"))
    h.update(inception.to_bytes(4, "big"))
    for wire in sorted(_rdata_wire(record) for record in records):
        h.update(b"|")
        h.update(wire)
    return h.digest()


def _rdata_wire(record: ResourceRecord) -> bytes:
    from ..dnslib.wire import WireWriter

    writer = WireWriter(enable_compression=False)
    record.rdata.to_wire(writer)
    return writer.getvalue()


def sign_rrset(
    records,
    signer: Name,
    public_key: bytes,
    inception: int,
    expiration: int,
) -> ResourceRecord:
    """An RRSIG covering ``records`` (same owner/type), made by ``signer``."""
    first = records[0]
    signature = _rrset_digest(public_key, signer, records, expiration, inception)
    rdata = RRSIG(
        int(first.rrtype),
        ALGORITHM,
        len(first.name.labels),
        first.ttl,
        expiration,
        inception,
        key_tag(public_key),
        signer,
        signature,
    )
    return ResourceRecord(first.name, RRType.RRSIG, DNSClass.IN, first.ttl, rdata)


def verify_rrsig(rrsig_rdata, records, public_key: bytes, now_epoch: int | None = None) -> bool:
    """Does the signature verify against this RRset and key (and time)?"""
    if not records:
        return False
    if now_epoch is not None and not (rrsig_rdata.inception <= now_epoch <= rrsig_rdata.expiration):
        return False
    expected = _rrset_digest(
        public_key, rrsig_rdata.signer, records,
        rrsig_rdata.expiration, rrsig_rdata.inception,
    )
    return rrsig_rdata.signature == expected


def make_nsec(owner: Name, zone: Name, types: tuple[int, ...]) -> ResourceRecord:
    """A single synthetic NSEC proving ``owner``'s type set (or absence).

    The simulated universe has no materialised zone file to walk, so the
    "next name" is a deterministic fiction one label below the owner —
    enough for decode/encode realism and for validators to observe
    authenticated denial, without a full canonical ordering.
    """
    next_name = owner.child(b"\x00")
    return ResourceRecord(
        owner, RRType.NSEC, DNSClass.IN, NSEC_TTL,
        NSEC(next_name, types + (int(RRType.RRSIG), int(RRType.NSEC))),
    )
