"""Calibration parameters for the simulated DNS ecosystem.

Every constant here is tied to a number the paper reports (cited inline)
or is a free parameter chosen to land in a realistic regime.  All the
evaluation benchmarks read these — nothing downstream hard-codes paper
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# TLD population (Appendix A, Table 3): 55% of FQDNs sit in legacy gTLDs,
# 39% in ccTLDs, 6% in new gTLDs.  Weights within each class follow the
# real-world skew (.com dominates; .pl is deliberately prominent among
# ccTLDs because Section 6 finds it holds 25% of ccTLD CAA records).
# --------------------------------------------------------------------------

LEGACY_GTLDS: list[tuple[str, float]] = [
    ("com", 0.66), ("net", 0.16), ("org", 0.13), ("info", 0.03), ("biz", 0.02),
]

CCTLDS: list[tuple[str, float]] = [
    ("de", 0.135), ("uk", 0.105), ("nl", 0.065), ("ru", 0.06), ("br", 0.05),
    ("pl", 0.05), ("jp", 0.045), ("fr", 0.045), ("it", 0.04), ("au", 0.035),
    ("ca", 0.035), ("in", 0.03), ("es", 0.03), ("ch", 0.03), ("se", 0.025),
    ("be", 0.025), ("at", 0.02), ("dk", 0.02), ("cz", 0.02), ("eu", 0.02),
    ("kr", 0.015), ("mx", 0.015), ("ar", 0.015), ("za", 0.015), ("tr", 0.015),
    ("gr", 0.01), ("fi", 0.01), ("vn", 0.01), ("ng", 0.005), ("cn", 0.03),
]

NGTLDS: list[tuple[str, float]] = [
    ("xyz", 0.22), ("top", 0.13), ("online", 0.11), ("site", 0.09), ("shop", 0.08),
    ("app", 0.08), ("dev", 0.06), ("club", 0.06), ("store", 0.05), ("live", 0.04),
    ("icu", 0.03), ("vip", 0.02), ("work", 0.01), ("fun", 0.01), ("space", 0.01),
]

#: FQDN share by TLD class (Table 3).
TLD_CLASS_WEIGHTS: list[tuple[str, float]] = [
    ("legacy", 0.553),
    ("cc", 0.387),
    ("ng", 0.060),
]


# --------------------------------------------------------------------------
# Hosting providers.  Section 5: Cloudflare and GoDaddy each host ~12% of
# domains and are response-consistent; namebrightdns.com accounts for 31%
# of the domains whose nameservers need 10 retries; .vn and .ng ccTLD
# hosting is also disproportionately unavailable.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ProviderProfile:
    """A DNS hosting provider and its operational quirks."""

    name: str
    weight: float
    ns_pool: int = 4  # size of the provider's nameserver fleet
    consistent_answers: bool = True
    flaky_rate: float = 0.0  # chance a hosted domain has a blocking NS
    severe_flaky_rate: float = 0.0  # chance the blocking needs ~10 retries
    lame_rate: float = 0.0  # chance one delegation is lame


PROVIDERS: list[ProviderProfile] = [
    ProviderProfile("cloudflare-dns.example", 0.12, ns_pool=8),
    ProviderProfile("godaddy-dns.example", 0.12, ns_pool=8),
    ProviderProfile("awsdns.example", 0.09, ns_pool=8),
    ProviderProfile("googledomains.example", 0.06, ns_pool=6),
    ProviderProfile("namecheap-dns.example", 0.05, ns_pool=4),
    ProviderProfile("ovh-dns.example", 0.04, ns_pool=4),
    ProviderProfile("hetzner-dns.example", 0.04, ns_pool=4),
    ProviderProfile("wix-dns.example", 0.03, ns_pool=4),
    ProviderProfile("squarespace-dns.example", 0.03, ns_pool=4),
    ProviderProfile("azure-dns.example", 0.03, ns_pool=6),
    ProviderProfile("gandi-dns.example", 0.025, ns_pool=4),
    ProviderProfile("ionos-dns.example", 0.025, ns_pool=4),
    ProviderProfile("hostgator-dns.example", 0.02, ns_pool=4),
    ProviderProfile("bluehost-dns.example", 0.02, ns_pool=4),
    ProviderProfile("dreamhost-dns.example", 0.02, ns_pool=4),
    ProviderProfile(
        "namebrightdns.example", 0.015, ns_pool=2,
        flaky_rate=0.03, severe_flaky_rate=0.10, lame_rate=0.01,
    ),
    ProviderProfile("linode-dns.example", 0.015, ns_pool=4),
    ProviderProfile("digitalocean-dns.example", 0.015, ns_pool=4),
    ProviderProfile("he-dns.example", 0.01, ns_pool=4),
    ProviderProfile("rackspace-dns.example", 0.01, ns_pool=4),
    # long tail of small, self-hosted setups: slightly less reliable and
    # occasionally answer-inconsistent across their nameservers.
    ProviderProfile(
        "selfhosted-a.example", 0.09, ns_pool=2,
        consistent_answers=False, flaky_rate=0.004, lame_rate=0.01,
    ),
    ProviderProfile("selfhosted-b.example", 0.09, ns_pool=2, flaky_rate=0.003, lame_rate=0.008),
    ProviderProfile("selfhosted-c.example", 0.08, ns_pool=3, flaky_rate=0.002, lame_rate=0.005),
]

#: ccTLDs whose hosting is disproportionately unavailable (Section 5
#: attributes 11% / 7% of inconsistent domains to .vn / .ng).
FLAKY_CCTLDS: dict[str, float] = {"vn": 0.02, "ng": 0.022}


@dataclass(frozen=True)
class EcosystemParams:
    """Tunable knobs for zone synthesis, keyed off one global seed."""

    seed: int = 2022

    # -- forward-zone behaviour ------------------------------------------------
    #: Fraction of corpus FQDNs that resolve with records (Appendix A:
    #: "roughly 70% of the domain names successfully resolve").
    p_fqdn_resolves: float = 0.70
    #: Of the non-resolving remainder, most are NXDOMAIN; the rest are
    #: dead/unreachable delegations that time out or SERVFAIL.  Sized so
    #: overall success (NOERROR|NXDOMAIN) lands at Table 1's ~96-97%.
    p_dead_given_unresolved: float = 0.11
    #: Responses intentionally exceeding UDP payload (Section 3.4: 0.4%
    #: of A-record responses come back truncated).
    p_truncated: float = 0.004
    #: Domains whose apex A lookup goes through a CNAME.
    p_cname: float = 0.05
    #: Base-domain probability of a www subdomain existing.
    p_www: float = 0.9

    # -- availability case study (Section 5) ------------------------------------
    #: Baseline chance a (domain, ns) pair exhibits probabilistic
    #: blocking, on top of provider- and ccTLD-specific rates.  Target:
    #: 0.55% of resolvable domains have an NS needing >=2 retries and
    #: 0.01% have one needing 10.
    p_flaky_base: float = 0.0012
    p_severe_given_flaky: float = 0.018
    #: Drop probability while a flaky NS is "blocking".
    flaky_drop_prob: float = 0.55
    severe_drop_prob: float = 0.93

    # -- CAA case study (Section 6) ---------------------------------------------
    #: P(CAA record | NOERROR base domain) for gTLDs; ccTLDs are 20%
    #: more likely (Section 6).
    p_caa_gtld: float = 0.0135
    cctld_caa_multiplier: float = 1.20
    #: .pl alone holds 25% of ccTLD CAA records -> boost its rate
    #: (solves 0.05*m / (1 + 0.05*(m-1)) = 0.25 for .pl's 5% cc weight).
    pl_caa_multiplier: float = 6.3
    #: CAA tag mix (Section 6): issue 96.8%, issuewild 55.27%, iodef
    #: 6.87%, iodef-only ~0.06%, invalid tags 0.04%.
    p_caa_issue: float = 0.968
    p_caa_issuewild: float = 0.5527
    p_caa_iodef: float = 0.0687
    p_caa_iodef_only: float = 0.0006
    p_caa_invalid_tag: float = 0.0004
    #: CAA record reached through a CNAME chain (8000 / 1.08M holders).
    p_caa_via_cname: float = 0.0074
    #: Issuer mix: Let's Encrypt in 92.4% of issue tags; Comodo and
    #: Digicert each in >50% of CAA domains.
    p_issuer_letsencrypt: float = 0.924
    p_issuer_comodo: float = 0.55
    p_issuer_digicert: float = 0.52

    # -- reverse (PTR) zones -----------------------------------------------------
    #: Fraction of the scanned IPv4 space with a PTR record; remainder
    #: splits between NXDOMAIN and dead rDNS servers so that public-
    #: resolver PTR success lands at Table 1's ~93%.
    p_ptr_exists: float = 0.55
    p_rdns_dead: float = 0.055
    #: Distinct simulated rDNS operators (bounds server count; /16 and
    #: /24 zone NS RRsets remain per-zone for cache realism).
    rdns_operators: int = 512

    # -- DNSSEC deployment (atlas-dnssec-style rates) ----------------------------
    #: Fraction of TLD zones that are signed (real-world registries sign
    #: near-universally; a handful of ccTLDs lag).
    p_tld_signed: float = 0.90
    #: Fraction of registrable base domains that are signed.  Real-world
    #: second-level deployment sits in the low single digits.
    p_domain_signed: float = 0.04
    #: Of signed base domains: chance the zone is an *island of trust* —
    #: signed but with no DS in the parent, so a validator can only
    #: reach Insecure, never Secure.
    p_island: float = 0.12
    #: Of signed base domains: chance the parent DS does not match the
    #: child DNSKEY (botched rollover) — validation lands Bogus.
    p_broken_ds: float = 0.02
    #: Of signed base domains: chance the zone's signatures are expired
    #: (unattended signer) — validation lands Bogus.
    p_expired_sig: float = 0.015
    #: RRSIG validity window (seconds of virtual time past the signing
    #: epoch); expired-signature zones instead signed this far *before*
    #: the epoch so their signatures are already stale at scan start.
    dnssec_validity: int = 30 * 86_400

    # -- timing ------------------------------------------------------------------
    #: Authoritative-server RTT medians by tier (seconds).
    root_rtt: float = 0.012
    tld_rtt: float = 0.024
    auth_rtt: float = 0.048
    rdns_rtt: float = 0.055
    #: Ambient one-way packet loss toward authoritative servers.  Kept
    #: low so Section 5's retry statistics are dominated by genuinely
    #: flaky servers, as in the paper.
    auth_loss: float = 0.0003

    # -- public recursive resolvers (Section 4.1) --------------------------------
    public_rtt: float = 0.028
    #: Extra delay when the public resolver must recurse (cache miss).
    public_miss_delay: float = 0.065
    public_miss_rate: float = 0.22
    #: Heavy recursion tail: unique-name lookups whose upstream walk is
    #: slow (lossy authoritatives, resolver-side retries).  This is what
    #: makes the paper's per-thread throughput ~2 lookups/s and places
    #: Figure 1's plateau near 45-50K threads.
    public_slow_rate: float = 0.13
    public_slow_min: float = 0.5
    public_slow_max: float = 2.6
    #: Google's per-client-IP rate limit [2]; calibrated so a /32 scan
    #: loses ~6x vs Cloudflare (Figure 1).  Cloudflare does not limit [1].
    google_rate_limit: float = 22_000.0
    #: Aggregate service capacity one scanner can extract from a public
    #: resolver before it starts shedding load (MassDNS, Table 2).
    public_capacity: float = 200_000.0
    #: How much queueing a resolver tolerates before shedding load with
    #: fast SERVFAILs — small, so abusive senders get refused rather
    #: than queued (the MassDNS failure mode).
    public_max_backlog: float = 0.05

    providers: tuple[ProviderProfile, ...] = field(default_factory=lambda: tuple(PROVIDERS))

    def provider_weights(self) -> list[tuple[ProviderProfile, float]]:
        return [(provider, provider.weight) for provider in self.providers]


#: Well-known simulated addresses.
ROOT_SERVER_IPS = [f"199.7.83.{i + 1}" for i in range(13)]
GOOGLE_RESOLVER_IP = "8.8.8.8"
CLOUDFLARE_RESOLVER_IP = "1.1.1.1"
UNBOUND_RESOLVER_IP = "127.0.0.53"


def all_tlds() -> list[tuple[str, str]]:
    """(tld, class) pairs across the whole population."""
    out = [(tld, "legacy") for tld, _ in LEGACY_GTLDS]
    out += [(tld, "cc") for tld, _ in CCTLDS]
    out += [(tld, "ng") for tld, _ in NGTLDS]
    return out


def tld_class(tld: str) -> str | None:
    """'legacy' | 'cc' | 'ng' for a known TLD, else None."""
    for name, cls in all_tlds():
        if name == tld:
            return cls
    return None
