"""Public recursive resolver models (Google-like and Cloudflare-like).

Both answer from the same procedural zone universe with a warm cache.
The Google model enforces a per-client-IP rate limit [2] — the factor-
of-six /32 success drop in Figure 1 — while Cloudflare does not [1].
Both have finite aggregate service capacity, which is what MassDNS's
open-loop blasting overruns in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dnslib import Flags, Message, Name, Rcode, RRType
from ..dnslib.rdata.names import PTR
from ..net import CapacityQueue, ServerReply, TokenBucket
from . import rand
from .content import ANSWER_TTL, build_answer, nxdomain, rr, soa_for
from .params import EcosystemParams
from .zonegen import ZoneSynthesizer

_IN_ADDR = Name.from_text("in-addr.arpa")

#: Extra delay a recursive resolver eats before SERVFAILing on a dead
#: delegation (it must exhaust its own upstream retries first).
_DEAD_PENALTY = 1.6


@dataclass
class ResolverStats:
    queries: int = 0
    rate_limited: int = 0
    shed: int = 0
    answered: int = 0


class PublicResolver:
    """A warm-cache recursive resolver serving the whole universe."""

    def __init__(
        self,
        synth: ZoneSynthesizer,
        rate_limit_per_ip: float | None = None,
        capacity: float | None = None,
        max_backlog: float | None = None,
    ):
        params = synth.params
        self.synth = synth
        self.rate_limit_per_ip = rate_limit_per_ip
        self._buckets: dict[str, TokenBucket] = {}
        self._capacity = CapacityQueue(
            rate=capacity if capacity is not None else params.public_capacity,
            max_backlog=max_backlog if max_backlog is not None else params.public_max_backlog,
        )
        self.stats = ResolverStats()
        #: Names already recursed once: repeat queries (client retries)
        #: hit the fresh cache and skip the recursion delay tail.
        self._warm: set[str] = set()
        self._cold_query = True

    @classmethod
    def google_like(cls, synth: ZoneSynthesizer) -> "PublicResolver":
        return cls(synth, rate_limit_per_ip=synth.params.google_rate_limit)

    @classmethod
    def cloudflare_like(cls, synth: ZoneSynthesizer) -> "PublicResolver":
        return cls(synth, rate_limit_per_ip=None)

    # ------------------------------------------------------------------

    def handle_query(self, query: Message, client_ip: str, now: float, protocol: str):
        self.stats.queries += 1
        if self.rate_limit_per_ip is not None:
            bucket = self._buckets.get(client_ip)
            if bucket is None:
                bucket = TokenBucket(self.rate_limit_per_ip, burst=self.rate_limit_per_ip / 4)
                self._buckets[client_ip] = bucket
            if not bucket.allow(now):
                self.stats.rate_limited += 1
                return None  # Google drops over-limit queries silently

        queue_delay = self._capacity.admit(now)
        if queue_delay is None:
            # overloaded: refuse quickly without recursing (cheap path)
            self.stats.shed += 1
            return ServerReply(query.make_response(rcode=Rcode.SERVFAIL), delay=0.05)

        response, extra = self._resolve(query)
        response.flags = Flags.from_int((response.flags.to_int() | 0x0080) & ~0x0400)  # RA=1, AA=0
        self.stats.answered += 1
        return ServerReply(response, delay=queue_delay + extra)

    # ------------------------------------------------------------------

    def _resolve(self, query: Message) -> tuple[Message, float]:
        """Answer plus the recursion delay beyond the client RTT."""
        question = query.question
        if question is None:
            return query.make_response(rcode=Rcode.FORMERR), 0.0
        params = self.synth.params
        name = question.name
        key = name.key_text()

        # recursion cost is paid once per name: a client retry finds the
        # resolver's cache freshly filled
        cold = key not in self._warm
        extra = 0.0
        if cold:
            self._warm.add(key)
            if rand.uniform(params.seed, key, "rcache") < params.public_miss_rate:
                extra += params.public_miss_delay
            if rand.uniform(params.seed, key, "slowtail") < params.public_slow_rate:
                # heavy recursion tail (upstream loss / lame servers)
                spread = params.public_slow_max - params.public_slow_min
                extra += params.public_slow_min + spread * rand.uniform(params.seed, key, "slowmag")
        self._cold_query = cold

        if name.is_subdomain_of(_IN_ADDR):
            return self._resolve_ptr(query, name, extra)

        base = self.synth.base_domain_of(name)
        if base is None:
            return nxdomain(query, Name.root()), extra
        profile = self.synth.profile(base)
        if profile.dead:
            # upstream retries exhausted once; the negative result is
            # then served from cache
            penalty = _DEAD_PENALTY if self._cold_query else 0.02
            return query.make_response(rcode=Rcode.SERVFAIL), extra + penalty
        if not profile.exists:
            return nxdomain(query, Name((name.labels[-1],))), extra
        answer = build_answer(self.synth, query, profile, ns=None, protocol=protocol_for(query))
        if answer.rcode == Rcode.NOERROR and answer.answers:
            answer = self._chase_cname(answer, profile)
        return answer, extra

    def _chase_cname(self, answer: Message, profile) -> Message:
        """Recursive resolvers return the full chain for CAA-via-CNAME."""
        last = answer.answers[-1]
        if int(last.rrtype) != int(RRType.CNAME):
            return answer
        qtype = answer.question.rrtype
        if int(qtype) != int(RRType.CAA):
            return answer
        target_query = Message.make_query(last.rdata.target, qtype, txid=answer.id)
        chained = build_answer(self.synth, target_query, profile, ns=None)
        answer.answers.extend(chained.answers)
        return answer

    def _resolve_ptr(self, query: Message, name: Name, extra: float) -> tuple[Message, float]:
        rev = name.relativize(_IN_ADDR)
        octets = []
        for label in reversed(rev):
            try:
                octets.append(int(label))
            except ValueError:
                return nxdomain(query, _IN_ADDR), extra
        if len(octets) != 4 or not all(0 <= o <= 255 for o in octets):
            return nxdomain(query, _IN_ADDR), extra
        ip = ".".join(str(o) for o in octets)
        status = self.synth.ptr_status(ip)
        if status == "dead":
            penalty = _DEAD_PENALTY if self._cold_query else 0.02
            return query.make_response(rcode=Rcode.SERVFAIL), extra + penalty
        if status == "nxdomain" or int(query.question.rrtype) != int(RRType.PTR):
            response = query.make_response(rcode=Rcode.NXDOMAIN)
            response.authorities.append(soa_for(_IN_ADDR))
            return response, extra
        response = query.make_response()
        response.answers.append(rr(name, RRType.PTR, ANSWER_TTL, PTR(self.synth.ptr_target(ip))))
        return response, extra


def protocol_for(query: Message) -> str:
    """Public resolvers answer over whatever transport the client used;
    truncation towards the client is handled by the network layer."""
    return "tcp"
