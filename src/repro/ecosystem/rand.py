"""Deterministic per-name randomness.

Every stochastic property of the simulated Internet (does this domain
exist? which provider hosts it? is this nameserver flaky?) is a pure
function of (global seed, domain name, property tag).  That makes zone
synthesis O(1) in memory — any of 2**64 names has a well-defined zone —
and makes every experiment reproducible.
"""

from __future__ import annotations

import struct
from hashlib import blake2b

_MAX = float(1 << 64)

#: Packed representations of the handful of global seeds in play; the
#: encode is hoisted out of the (very hot) h64 body.
_PACKED_SEEDS: dict[int, bytes] = {}


def h64(seed: int, *parts: object) -> int:
    """A 64-bit hash of (seed, parts).

    Feeds blake2b one pre-joined buffer (identical byte stream to the
    historical per-part ``update`` loop, so every digest — and therefore
    every synthesised zone — is unchanged)."""
    packed = _PACKED_SEEDS.get(seed)
    if packed is None:
        packed = _PACKED_SEEDS[seed] = struct.pack("<q", seed)
    if parts:
        buf = packed + b"\x00".join(
            [part if isinstance(part, bytes) else str(part).encode("utf-8") for part in parts]
        ) + b"\x00"
    else:
        buf = packed
    return int.from_bytes(blake2b(buf, digest_size=8).digest(), "little")


def uniform(seed: int, *parts: object) -> float:
    """Deterministic draw in [0, 1)."""
    return h64(seed, *parts) / _MAX


def randint(seed: int, low: int, high: int, *parts: object) -> int:
    """Deterministic integer in [low, high]."""
    if high < low:
        raise ValueError("empty range")
    return low + h64(seed, *parts) % (high - low + 1)


def choice(seed: int, options: list, *parts: object):
    """Deterministic pick from a non-empty list."""
    return options[h64(seed, *parts) % len(options)]


def weighted_choice(seed: int, weighted: list[tuple[object, float]], *parts: object):
    """Deterministic pick where each option carries a weight."""
    total = sum(weight for _, weight in weighted)
    point = uniform(seed, *parts) * total
    acc = 0.0
    for option, weight in weighted:
        acc += weight
        if point < acc:
            return option
    return weighted[-1][0]
