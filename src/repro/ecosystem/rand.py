"""Deterministic per-name randomness.

Every stochastic property of the simulated Internet (does this domain
exist? which provider hosts it? is this nameserver flaky?) is a pure
function of (global seed, domain name, property tag).  That makes zone
synthesis O(1) in memory — any of 2**64 names has a well-defined zone —
and makes every experiment reproducible.
"""

from __future__ import annotations

import hashlib
import struct

_MAX = float(1 << 64)


def h64(seed: int, *parts: object) -> int:
    """A 64-bit hash of (seed, parts)."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(struct.pack("<q", seed))
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(part)
        else:
            hasher.update(str(part).encode("utf-8"))
        hasher.update(b"\x00")
    return struct.unpack("<Q", hasher.digest())[0]


def uniform(seed: int, *parts: object) -> float:
    """Deterministic draw in [0, 1)."""
    return h64(seed, *parts) / _MAX


def randint(seed: int, low: int, high: int, *parts: object) -> int:
    """Deterministic integer in [low, high]."""
    if high < low:
        raise ValueError("empty range")
    return low + h64(seed, *parts) % (high - low + 1)


def choice(seed: int, options: list, *parts: object):
    """Deterministic pick from a non-empty list."""
    return options[h64(seed, *parts) % len(options)]


def weighted_choice(seed: int, weighted: list[tuple[object, float]], *parts: object):
    """Deterministic pick where each option carries a weight."""
    total = sum(weight for _, weight in weighted)
    point = uniform(seed, *parts) * total
    acc = 0.0
    for option, weight in weighted:
        acc += weight
        if point < acc:
            return option
    return weighted[-1][0]
