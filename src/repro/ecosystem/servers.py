"""Simulated authoritative DNS servers: root, TLD, provider, reverse-DNS
and infrastructure servers, all answering from procedural zone data."""

from __future__ import annotations

import random
from collections import OrderedDict

from ..dnslib import Message, Name, Rcode, RRType
from ..dnslib.rdata.address import A
from ..dnslib.rdata.names import NS, PTR
from ..net import ServerReply
from .content import (
    ANSWER_TTL,
    REFERRAL_TTL,
    apex_answer,
    build_answer,
    ds_answer,
    nodata,
    nxdomain,
    rr,
    signed_nxdomain,
    soa_for,
)
from .zonegen import ZoneSynthesizer

_IN_ADDR = Name.from_text("in-addr.arpa")
_ARPA = Name.from_text("arpa")
_EXAMPLE = Name.from_text("example")
_VERSION_BIND = Name.from_text("version.bind")


class ResponseMemo:
    """Bounded memo of fully built responses, keyed by the question.

    Zone content is a pure function of the question (plus, for provider
    servers, the transport protocol), so identical queries rebuild
    byte-identical responses — dense workloads like the PTR sweeps
    revisit the same owner names hundreds of times.  A hit hands back a
    *clone* sharing the immutable records and the encoded wire template
    (so re-encoding patches two transaction-id bytes), while the clone's
    section lists stay private in case a client sanitises them.

    Probabilistic behaviour must stay outside the memo: the provider
    servers draw their drop-probability sample *before* consulting it,
    keeping the RNG consumption sequence — and thus the simulated
    universe — identical for a given seed.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, Message] = OrderedDict()

    @staticmethod
    def key(query: Message, extra=None) -> tuple:
        question = query.question
        return (
            question.name.labels,  # spelling-preserving: responses echo case
            int(question.rrtype),
            int(question.rrclass),
            query.flags.to_int(),
            extra,
        )

    def get(self, key: tuple, query: Message) -> Message | None:
        stored = self._entries.get(key)
        if stored is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        clone = Message(
            id=query.id,
            flags=stored.flags,
            questions=list(stored.questions),
            answers=list(stored.answers),
            authorities=list(stored.authorities),
            additionals=list(stored.additionals),
        )
        clone._wire = stored._wire  # id is patched on encode
        return clone

    def put(self, key: tuple, message: Message) -> None:
        entries = self._entries
        entries[key] = message
        if len(entries) > self.capacity:
            entries.popitem(last=False)


def _query_do(query: Message) -> bool:
    """The query's EDNS DO bit (False when there is no OPT record)."""
    for record in query.additionals:
        if int(record.rrtype) == int(RRType.OPT):
            return bool(record.ttl & 0x8000)
    return False


class _MemoisedServer:
    """Mixin: cache ``_respond`` results per question.

    Only for handlers whose responses depend on nothing but the query
    (and never return ``None``/a delayed reply)."""

    def _init_memo(self, capacity: int = 8192) -> None:
        self.memo = ResponseMemo(capacity)

    def handle_query(self, query, client_ip, now, protocol):
        question = query.question
        if question is None:
            return ServerReply(_refused(query))
        memo = self.memo
        # DO folds into the memo key only when set, so queries without
        # it keep their pre-DNSSEC key shape (and response bytes).
        do = _query_do(query)
        key = ResponseMemo.key(query, extra=True if do else None)
        cached = memo.get(key, query)
        if cached is not None:
            return ServerReply(cached)
        reply = self._respond(query, client_ip, now, protocol, do)
        if reply is not None and reply.delay == 0.0:
            memo.put(key, reply.message)
        return reply


def _referral(query: Message, zone: Name, ns_pairs: list[tuple[Name, str | None]]) -> Message:
    """A delegation response: NS in authority, glue in additional."""
    response = query.make_response()
    for ns_name, _ in ns_pairs:
        response.authorities.append(rr(zone, RRType.NS, REFERRAL_TTL, NS(ns_name)))
    for ns_name, glue_ip in ns_pairs:
        if glue_ip is not None:
            response.additionals.append(rr(ns_name, RRType.A, REFERRAL_TTL, A(glue_ip)))
    return response


def _refused(query: Message) -> Message:
    return query.make_response(rcode=Rcode.REFUSED)


class RootServer(_MemoisedServer):
    """One of the 13 root servers: delegates TLDs."""

    def __init__(self, synth: ZoneSynthesizer):
        self.synth = synth
        self._tlds = {tld for tld, _ in synth.tlds()}
        # delegation NS/glue sets are static for the life of the zone
        self._arpa_pairs = [
            (Name.from_text(f"ns{k + 1}.rdns-root.example"), ip)
            for k, ip in enumerate(synth.arpa_server_ips())
        ]
        self._infra_pairs = [
            (Name.from_text(f"ns{k + 1}.infra.example"), ip)
            for k, ip in enumerate(synth.infra_server_ips())
        ]
        self._tld_pairs = {
            tld: [(synth.tld_ns_name(tld, k), synth.tld_ns_ip(tld, k)) for k in range(2)]
            for tld in self._tlds
        }
        self._init_memo()

    def _respond(self, query, client_ip, now, protocol, do=False):
        name = query.question.name
        if name.is_root:
            signed = apex_answer(self.synth, query, Name.root(), do)
            if signed is not None:
                return ServerReply(signed)
            return ServerReply(nodata(query, Name.root()))
        tld = name.labels[-1].decode("ascii", "replace").lower()
        if tld == "arpa":
            zone = _IN_ADDR if name.is_subdomain_of(_IN_ADDR) else _ARPA
            return ServerReply(_referral(query, zone, self._arpa_pairs))
        if tld == "example":
            return ServerReply(_referral(query, _EXAMPLE, self._infra_pairs))
        pairs = self._tld_pairs.get(tld)
        if pairs is not None:
            zone = Name((name.labels[-1],))
            if do and len(name.labels) == 1 and int(query.question.rrtype) == int(RRType.DS):
                # DS lives at the parent: the root answers it, not the TLD
                return ServerReply(ds_answer(self.synth, query, Name.root(), zone))
            return ServerReply(_referral(query, zone, pairs))
        return ServerReply(signed_nxdomain(self.synth, query, Name.root(), do))


class TLDServer(_MemoisedServer):
    """Registry server for one TLD: delegates registered base domains."""

    #: Dark address space for dead delegations: routed nowhere.
    DARK_BASE = "203.0.113."

    def __init__(self, synth: ZoneSynthesizer, tld: str):
        self.synth = synth
        self.tld = tld
        self.zone = Name.from_text(tld)
        self._init_memo()

    def _respond(self, query, client_ip, now, protocol, do=False):
        question = query.question
        if not question.name.is_subdomain_of(self.zone):
            return ServerReply(_refused(query))
        if question.name == self.zone:
            signed = apex_answer(self.synth, query, self.zone, do)
            if signed is not None:
                return ServerReply(signed)
            return ServerReply(nodata(query, self.zone))
        base = self.synth.base_domain_of(question.name)
        if base is None:
            return ServerReply(signed_nxdomain(self.synth, query, self.zone, do))
        profile = self.synth.profile(base)
        if not profile.exists and not profile.dead:
            return ServerReply(signed_nxdomain(self.synth, query, self.zone, do))
        if profile.dead:
            # registered, but its nameservers are unreachable
            pairs = [
                (Name.from_text(f"ns{k + 1}.dead-host.example"), f"{self.DARK_BASE}{k + 1}")
                for k in range(2)
            ]
            return ServerReply(_referral(query, base, pairs))
        if do and question.name == base and int(question.rrtype) == int(RRType.DS):
            # parent-side DS for a delegated child, answered here
            return ServerReply(ds_answer(self.synth, query, self.zone, base))
        pairs = [(ns.name, ns.ip) for ns in profile.nameservers]
        return ServerReply(_referral(query, base, pairs))


class InfraServer(_MemoisedServer):
    """Authoritative for the synthetic ``example`` TLD: nameserver host
    records and reverse-pointer targets live here."""

    def __init__(self, synth: ZoneSynthesizer):
        self.synth = synth
        self._init_memo()

    def _respond(self, query, client_ip, now, protocol, do=False):
        question = query.question
        if not question.name.is_subdomain_of(_EXAMPLE):
            return ServerReply(_refused(query))
        name = question.name
        ip = self.synth.infra_a_record(name)
        wants_a = int(question.rrtype) in (int(RRType.A), int(RRType.ANY))
        if ip is not None:
            response = query.make_response(authoritative=True)
            if wants_a:
                response.answers.append(rr(name, RRType.A, ANSWER_TTL, A(ip)))
            else:
                response.authorities.append(soa_for(_EXAMPLE))
            return ServerReply(response)
        text = name.key_text()
        if text.startswith("host-") or ".isp" in text:
            # PTR targets resolve deterministically
            response = query.make_response(authoritative=True)
            if wants_a:
                address = self.synth.host_addresses(name)[0]
                response.answers.append(rr(name, RRType.A, ANSWER_TTL, A(address)))
            else:
                response.authorities.append(soa_for(_EXAMPLE))
            return ServerReply(response)
        return ServerReply(nxdomain(query, _EXAMPLE))


class ProviderAuthServer:
    """One nameserver host of one hosting provider.

    Implements the paper's observed misbehaviours: probabilistic
    blocking (Section 5), lame delegations, inconsistent answers across
    a domain's nameservers, and oversized/truncated responses.
    """

    def __init__(self, synth: ZoneSynthesizer, provider_index: int, pool_slot: int, seed: int = 0):
        self.synth = synth
        self.provider_index = provider_index
        self.pool_slot = pool_slot
        self.ip = synth.provider_ns_ip(provider_index, pool_slot)
        self.rng = random.Random(seed ^ (provider_index << 8) ^ pool_slot)
        self.refused = 0
        self.dropped = 0
        self.memo = ResponseMemo()

    #: Software versions by provider (exposed via version.bind, the
    #: paper's bind.version misc module).
    VERSIONS = ["9.16.1-Ubuntu", "9.11.4-P2-RedHat", "PowerDNS 4.5.3", "NSD 4.3.9", "Knot 3.1.5"]

    def handle_query(self, query, client_ip, now, protocol):
        question = query.question
        if question is None:
            return ServerReply(_refused(query))
        if int(question.rrclass) == 3 and question.name == _VERSION_BIND:
            # CHAOS-class version query
            from ..dnslib.rdata.text import TXT

            response = query.make_response(authoritative=True)
            version = self.VERSIONS[self.provider_index % len(self.VERSIONS)]
            record = rr(question.name, RRType.TXT, 0, TXT.from_string(version))
            response.answers.append(record)
            return ServerReply(response)
        base = self.synth.base_domain_of(question.name)
        if base is None:
            self.refused += 1
            return ServerReply(_refused(query))
        profile = self.synth.profile(base)
        me = next((ns for ns in profile.nameservers if ns.ip == self.ip), None)
        if me is None or not profile.exists:
            self.refused += 1
            return ServerReply(_refused(query))
        if me.lame:
            # lame delegation: listed as authoritative, but isn't
            self.refused += 1
            return ServerReply(_refused(query))
        if me.drop_prob and self.rng.random() < me.drop_prob:
            # probabilistic blocking: silently ignore this query
            self.dropped += 1
            return None
        # Memoised *after* the drop draw so the RNG sequence (and hence
        # the simulated universe) is untouched; answers can differ per
        # protocol (UDP truncation), so the key carries it.  DO widens
        # the key only when set: DO-less keys keep their pre-DNSSEC
        # shape, so those cached responses stay byte-identical.
        do = _query_do(query)
        key = ResponseMemo.key(query, extra=(protocol, True) if do else protocol)
        cached = self.memo.get(key, query)
        if cached is not None:
            return ServerReply(cached)
        response = build_answer(self.synth, query, profile, ns=me, protocol=protocol, do=do)
        self.memo.put(key, response)
        return ServerReply(response)


class ArpaServer(_MemoisedServer):
    """Authoritative for arpa/in-addr.arpa: delegates /8 zones."""

    def __init__(self, synth: ZoneSynthesizer):
        self.synth = synth
        self._init_memo()

    def _respond(self, query, client_ip, now, protocol, do=False):
        question = query.question
        if not question.name.is_subdomain_of(_ARPA):
            return ServerReply(_refused(query))
        name = question.name
        if not name.is_subdomain_of(_IN_ADDR):
            return ServerReply(nxdomain(query, _ARPA))
        rev = name.relativize(_IN_ADDR)
        if not rev:
            return ServerReply(nodata(query, _IN_ADDR))
        octet = _octet(rev[-1])
        if octet is None:
            return ServerReply(nxdomain(query, _IN_ADDR))
        zone = Name((rev[-1],)).concatenate(_IN_ADDR)
        operator = self.synth.rdns_operator((octet,))
        pairs = [
            (self.synth.rdns_ns_name(operator, k), self.synth.rdns_ns_ip(operator, k))
            for k in range(2)
        ]
        return ServerReply(_referral(query, zone, pairs))


class RdnsOperatorServer(_MemoisedServer):
    """One reverse-DNS operator host, authoritative for every /8, /16
    and /24 reverse zone that hashes to its operator id."""

    def __init__(self, synth: ZoneSynthesizer, operator: int, pool_slot: int):
        self.synth = synth
        self.operator = operator
        self.pool_slot = pool_slot
        self._init_memo()

    def _respond(self, query, client_ip, now, protocol, do=False):
        question = query.question
        if not question.name.is_subdomain_of(_IN_ADDR):
            return ServerReply(_refused(query))
        rev = question.name.relativize(_IN_ADDR)
        octets = []
        for label in reversed(rev):
            value = _octet(label)
            if value is None:
                return ServerReply(_refused(query))
            octets.append(value)
        prefix = tuple(octets)
        synth = self.synth

        if (
            len(prefix) >= 3
            and not synth.ptr_zone_dead(prefix[:3])
            and synth.rdns_operator(prefix[:3]) == self.operator
        ):
            return self._answer_leaf(query, prefix)
        if len(prefix) >= 2 and synth.rdns_operator(prefix[:2]) == self.operator:
            return self._refer(query, prefix[:3])
        if synth.rdns_operator(prefix[:1]) == self.operator:
            return self._refer(query, prefix[:2])
        return ServerReply(_refused(query))

    def _refer(self, query: Message, child: tuple[int, ...]) -> ServerReply:
        synth = self.synth
        zone = _rev_zone(child)
        if len(child) == 3 and synth.ptr_zone_dead(child):
            pairs = [
                (Name.from_text(f"ns{k + 1}.dead-rdns.example"), f"203.0.113.{100 + k}")
                for k in range(2)
            ]
            return ServerReply(_referral(query, zone, pairs))
        operator = synth.rdns_operator(child)
        pairs = [
            (synth.rdns_ns_name(operator, k), synth.rdns_ns_ip(operator, k)) for k in range(2)
        ]
        return ServerReply(_referral(query, zone, pairs))

    def _answer_leaf(self, query: Message, octets: tuple[int, ...]) -> ServerReply:
        zone = _rev_zone(octets[:3])
        if len(octets) != 4:
            return ServerReply(nodata(query, zone))
        ip = ".".join(str(o) for o in octets)
        if self.synth.ptr_status(ip) != "noerror":
            return ServerReply(nxdomain(query, zone))
        if int(query.question.rrtype) not in (int(RRType.PTR), int(RRType.ANY)):
            return ServerReply(nodata(query, zone))
        response = query.make_response(authoritative=True)
        response.answers.append(
            rr(query.question.name, RRType.PTR, ANSWER_TTL, PTR(self.synth.ptr_target(ip)))
        )
        return ServerReply(response)


def _rev_zone(octets: tuple[int, ...]) -> Name:
    labels = tuple(str(o).encode() for o in reversed(octets))
    return Name(labels).concatenate(_IN_ADDR)


def _octet(label: bytes) -> int | None:
    try:
        value = int(label)
    except ValueError:
        return None
    return value if 0 <= value <= 255 else None
