"""A static authoritative server backed by a parsed zone file.

Complements the procedural servers: users can load a real master file
(:func:`repro.dnslib.parse_zone`) and serve it — on the simulated
network, or over real UDP via :class:`repro.net.UDPServer`.
"""

from __future__ import annotations

from ..dnslib import Message, Name, Rcode, RRType, Zone
from ..net import ServerReply


class StaticZoneServer:
    """Answers authoritatively from one in-memory zone."""

    def __init__(self, zone: Zone):
        self.zone = zone
        self._by_name: dict[tuple, list] = {}
        for record in zone.records:
            self._by_name.setdefault(record.name.canonical_key(), []).append(record)

    def build_response(self, query: Message) -> Message:
        question = query.question
        if question is None:
            return query.make_response(rcode=Rcode.FORMERR)
        name = question.name
        if not name.is_subdomain_of(self.zone.origin):
            return query.make_response(rcode=Rcode.REFUSED)

        if int(question.rrtype) == int(RRType.AXFR):
            return self._axfr(query)

        records = self._by_name.get(name.canonical_key())
        if records is None:
            response = query.make_response(rcode=Rcode.NXDOMAIN, authoritative=True)
            self._attach_soa(response)
            return response

        qtype = int(question.rrtype)
        response = query.make_response(authoritative=True)
        matched = [
            record
            for record in records
            if int(record.rrtype) == qtype or qtype == int(RRType.ANY)
        ]
        if not matched:
            # CNAME at the name answers any type (except ANY handled above)
            cnames = [r for r in records if int(r.rrtype) == int(RRType.CNAME)]
            if cnames:
                response.answers.extend(cnames)
                target = cnames[0].rdata.target
                for record in self._by_name.get(target.canonical_key(), []):
                    if int(record.rrtype) == qtype:
                        response.answers.append(record)
                return response
            self._attach_soa(response)
            return response
        response.answers.extend(matched)
        return response

    def _axfr(self, query: Message) -> Message:
        """Zone transfer (RFC 5936): SOA, all records, SOA again.

        Only honoured when the question names the zone apex; policy
        hooks (TSIG, allow-lists) are a caller concern.
        """
        if query.question.name != self.zone.origin:
            return query.make_response(rcode=Rcode.REFUSED)
        soa = [
            record
            for record in self._by_name.get(self.zone.origin.canonical_key(), [])
            if int(record.rrtype) == int(RRType.SOA)
        ]
        if not soa:
            return query.make_response(rcode=Rcode.SERVFAIL)
        response = query.make_response(authoritative=True)
        response.answers.extend(soa)
        for record in self.zone.records:
            if int(record.rrtype) != int(RRType.SOA):
                response.answers.append(record)
        response.answers.extend(soa)
        return response

    def _attach_soa(self, response: Message) -> None:
        for record in self._by_name.get(self.zone.origin.canonical_key(), []):
            if int(record.rrtype) == int(RRType.SOA):
                response.authorities.append(record)
                return

    # -- simulated-network server protocol ---------------------------------

    def handle_query(self, query, client_ip, now, protocol):
        return ServerReply(self.build_response(query))

    # -- live UDPServer handler ---------------------------------------------

    def live_handler(self, query: Message, client: tuple) -> Message:
        return self.build_response(query)
