"""Assembly of the simulated Internet: wires every server into a
SimNetwork and exposes the handles experiments need."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net import LatencyModel, LossModel, SimNetwork, Simulator
from .params import (
    CLOUDFLARE_RESOLVER_IP,
    GOOGLE_RESOLVER_IP,
    ROOT_SERVER_IPS,
    EcosystemParams,
)
from .publicresolver import PublicResolver
from .servers import (
    ArpaServer,
    InfraServer,
    ProviderAuthServer,
    RdnsOperatorServer,
    RootServer,
    TLDServer,
)
from .zonegen import ZoneSynthesizer


@dataclass
class SimInternet:
    """A fully wired simulated Internet."""

    sim: Simulator
    network: SimNetwork
    synth: ZoneSynthesizer
    params: EcosystemParams
    root_ips: list[str]
    google: PublicResolver
    cloudflare: PublicResolver
    provider_servers: list[ProviderAuthServer] = field(default_factory=list)

    @property
    def google_ip(self) -> str:
        return GOOGLE_RESOLVER_IP

    @property
    def cloudflare_ip(self) -> str:
        return CLOUDFLARE_RESOLVER_IP


def build_internet(
    sim: Simulator | None = None,
    params: EcosystemParams | None = None,
    wire_mode: str = "always",
    wire_sample: int = 16,
    net_seed: int | None = None,
) -> SimInternet:
    """Construct the whole simulated DNS universe.

    Registers: 13 roots, 2 servers per TLD, every provider nameserver
    host, the ``example`` infrastructure servers, the arpa servers, two
    hosts per reverse-DNS operator, and both public resolvers.

    ``net_seed`` decouples the network RNG (latency/loss draws) from the
    ecosystem seed (zone contents).  The multi-process executor builds
    the *same* universe in every shard (``params.seed``) but gives each
    shard an independent packet-level RNG stream, exactly as disjoint
    slices of one Internet would behave.
    """
    params = params or EcosystemParams()
    sim = sim or Simulator()
    network = SimNetwork(
        sim,
        seed=params.seed if net_seed is None else net_seed,
        wire_mode=wire_mode,
        wire_sample=wire_sample,
    )
    synth = ZoneSynthesizer(params)

    root_latency = LatencyModel(median=params.root_rtt)
    tld_latency = LatencyModel(median=params.tld_rtt)
    auth_latency = LatencyModel(median=params.auth_rtt)
    rdns_latency = LatencyModel(median=params.rdns_rtt)
    auth_loss = LossModel(params.auth_loss)

    root = RootServer(synth)
    for ip in ROOT_SERVER_IPS:
        network.register_server(ip, root, latency=root_latency, loss=LossModel(0.002))

    for tld, _cls in synth.tlds():
        server = TLDServer(synth, tld)
        for k in range(2):
            network.register_server(
                synth.tld_ns_ip(tld, k), server, latency=tld_latency, loss=LossModel(0.004)
            )

    infra = InfraServer(synth)
    for ip in synth.infra_server_ips():
        network.register_server(ip, infra, latency=tld_latency, loss=LossModel(0.004))

    provider_servers: list[ProviderAuthServer] = []
    for index, provider in enumerate(params.providers):
        for slot in range(provider.ns_pool):
            server = ProviderAuthServer(synth, index, slot, seed=params.seed)
            provider_servers.append(server)
            network.register_server(server.ip, server, latency=auth_latency, loss=auth_loss)

    arpa = ArpaServer(synth)
    for ip in synth.arpa_server_ips():
        network.register_server(ip, arpa, latency=root_latency, loss=LossModel(0.002))

    for operator in range(params.rdns_operators):
        for slot in range(2):
            server = RdnsOperatorServer(synth, operator, slot)
            network.register_server(
                synth.rdns_ns_ip(operator, slot), server, latency=rdns_latency, loss=auth_loss
            )

    google = PublicResolver.google_like(synth)
    cloudflare = PublicResolver.cloudflare_like(synth)
    public_latency = LatencyModel(median=params.public_rtt)
    network.register_server(GOOGLE_RESOLVER_IP, google, latency=public_latency, loss=LossModel(0.004))
    network.register_server(CLOUDFLARE_RESOLVER_IP, cloudflare, latency=public_latency, loss=LossModel(0.004))

    return SimInternet(
        sim=sim,
        network=network,
        synth=synth,
        params=params,
        root_ips=list(ROOT_SERVER_IPS),
        google=google,
        cloudflare=cloudflare,
        provider_servers=provider_servers,
    )
