"""Procedural zone synthesis.

Rather than materialising 93M zones, every zone is a pure function of
(seed, name): hash draws decide whether a domain exists, who hosts it,
what records it owns, and how its nameservers misbehave.  Authoritative
servers call into this module to answer any query with O(1) memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..dnslib import Name, RRType
from . import rand
from .dnssec import EPOCH_BASE, zone_key_bytes
from .params import (
    CCTLDS,
    FLAKY_CCTLDS,
    LEGACY_GTLDS,
    NGTLDS,
    EcosystemParams,
    ProviderProfile,
    tld_class,
)

#: First octets used for synthetic "public" host addresses, away from
#: the simulator's infrastructure ranges.
_HOST_OCTETS = [23, 34, 45, 52, 64, 77, 81, 89, 93, 104, 151, 163, 185, 203]

#: CAA issuer population (Section 6).
ISSUER_LETSENCRYPT = "letsencrypt.org"
ISSUER_COMODO = "comodoca.com"
ISSUER_DIGICERT = "digicert.com"
ISSUERS_OTHER = ["pki.goog", "globalsign.com", "amazon.com", "sectigo.com"]

#: Subdomain labels the corpus draws from (certificate-transparency
#: style hostnames).
SUBDOMAIN_LABELS = [
    "www", "mail", "api", "shop", "blog", "dev", "app", "cdn", "m",
    "staging", "vpn", "portal", "webmail", "remote", "cloud", "test",
]


@dataclass(frozen=True)
class CAAProfile:
    """A domain's CAA deployment."""

    issue: tuple[str, ...]
    issuewild: tuple[str, ...]
    iodef: tuple[str, ...]
    invalid_tags: tuple[str, ...]
    via_cname: bool

    @property
    def record_count(self) -> int:
        return len(self.issue) + len(self.issuewild) + len(self.iodef) + len(self.invalid_tags)


@dataclass(frozen=True)
class DnssecProfile:
    """A zone's DNSSEC deployment (or lack of it).

    ``signed`` zones carry a DNSKEY at the apex and RRSIGs over every
    RRset they serve.  The anomaly flags are mutually exclusive and
    model the real-world failure modes a validator distinguishes:
    ``island`` (signed, no DS at the parent → Insecure), ``broken_ds``
    (parent DS mismatches the DNSKEY → Bogus), ``expired`` (signature
    validity window already past → Bogus).
    """

    signed: bool
    island: bool = False
    broken_ds: bool = False
    expired: bool = False
    #: Seed-derived key material; rolls when the zone generation bumps.
    key: bytes = b""
    #: RRSIG validity window, in absolute epoch seconds.
    inception: int = 0
    expiration: int = 0


#: Shared profile for every unsigned zone.
UNSIGNED = DnssecProfile(signed=False)


@dataclass(frozen=True)
class NameserverInfo:
    """One delegated nameserver of a domain."""

    name: Name
    ip: str
    #: retries a client typically needs: 0 = healthy, 1 = flaky,
    #: high values = severe probabilistic blocking (Section 5).
    drop_prob: float = 0.0
    lame: bool = False


@dataclass(frozen=True)
class DomainProfile:
    """Everything the simulation knows about one base domain."""

    base: Name
    tld: str
    tld_cls: str
    exists: bool
    dead: bool  # delegation present but servers never answer
    provider: ProviderProfile
    provider_index: int
    nameservers: tuple[NameserverInfo, ...]
    consistent_answers: bool
    truncates: bool
    has_mx: bool
    has_spf: bool
    has_dmarc: bool
    www_is_cname: bool
    caa: CAAProfile | None

    @property
    def status_class(self) -> str:
        if self.dead:
            return "dead"
        return "noerror" if self.exists else "nxdomain"


class ZoneSynthesizer:
    """Derives domain/IP profiles and answers content queries."""

    def __init__(self, params: EcosystemParams | None = None):
        self.params = params or EcosystemParams()
        self._providers = list(self.params.providers)
        #: Zone-delta generations: base domain -> mutation count.  Empty
        #: for every batch scan (the common case), and the hot-path
        #: guard is a single truthiness check, so profiles and answers
        #: stay byte-identical until someone publishes a delta
        #: (:func:`repro.ecosystem.deltas.publish_zone_delta`).
        self._generations: dict[Name, int] = {}
        self._provider_weights = [(i, p.weight) for i, p in enumerate(self._providers)]
        self._tlds = (
            [(t, "legacy") for t, _ in LEGACY_GTLDS]
            + [(t, "cc") for t, _ in CCTLDS]
            + [(t, "ng") for t, _ in NGTLDS]
        )
        self._tld_index = {t: i for i, (t, _) in enumerate(self._tlds)}

    # ------------------------------------------------------------------
    # address books for infrastructure
    # ------------------------------------------------------------------

    def tlds(self) -> list[tuple[str, str]]:
        return list(self._tlds)

    def tld_ns_name(self, tld: str, k: int) -> Name:
        return Name.from_text(f"ns{k + 1}.nic-{tld}.example")

    def tld_ns_ip(self, tld: str, k: int) -> str:
        return f"192.6.{self._tld_index[tld]}.{k + 1}"

    def provider_ns_name(self, provider_index: int, k: int) -> Name:
        return Name.from_text(f"ns{k + 1}.{self._providers[provider_index].name}")

    def provider_ns_ip(self, provider_index: int, k: int) -> str:
        return f"192.7.{provider_index}.{k + 1}"

    def rdns_operator(self, octets: tuple[int, ...]) -> int:
        return rand.h64(self.params.seed, "rdns-op", *octets) % self.params.rdns_operators

    def rdns_ns_name(self, operator: int, k: int) -> Name:
        return Name.from_text(f"ns{k + 1}.rdns{operator}.example")

    def rdns_ns_ip(self, operator: int, k: int) -> str:
        return f"192.{10 + k}.{operator // 256}.{operator % 256}"

    def infra_server_ips(self) -> list[str]:
        return ["192.8.0.1", "192.8.0.2"]

    def arpa_server_ips(self) -> list[str]:
        return ["192.9.255.1", "192.9.255.2"]

    def infra_a_record(self, name: Name) -> str | None:
        """Resolve an infrastructure hostname (ns*.{...}.example) to its IP."""
        text = name.key_text()
        parts = text.split(".")
        if len(parts) < 3 or parts[-1] != "example" or not parts[0].startswith("ns"):
            return None
        try:
            k = int(parts[0][2:]) - 1
        except ValueError:
            return None
        owner = parts[1]
        if owner.startswith("nic-"):
            tld = owner[4:]
            if tld in self._tld_index and k in (0, 1):
                return self.tld_ns_ip(tld, k)
            return None
        if owner.startswith("rdns"):
            try:
                operator = int(owner[4:])
            except ValueError:
                return None
            if 0 <= operator < self.params.rdns_operators and k in (0, 1):
                return self.rdns_ns_ip(operator, k)
            return None
        full_provider = ".".join(parts[1:])
        for index, provider in enumerate(self._providers):
            if provider.name == full_provider and 0 <= k < provider.ns_pool:
                return self.provider_ns_ip(index, k)
        return None

    # ------------------------------------------------------------------
    # base-domain profiles
    # ------------------------------------------------------------------

    def base_domain_of(self, name: Name) -> Name | None:
        """The registrable domain (TLD + one label), or None if the name
        is not under a known TLD."""
        if len(name.labels) < 2:
            return None
        tld = name.labels[-1].decode("ascii", "replace").lower()
        if tld not in self._tld_index:
            return None
        # interned: profile() is lru-cached on the Name, so handing back
        # the shared instance turns its cache key into a pointer compare
        return Name.intern(name.labels[-2:])

    def generation_of(self, base: Name) -> int:
        """How many zone deltas ``base`` has absorbed (0 = pristine)."""
        return self._generations.get(base, 0) if self._generations else 0

    def bump_generation(self, base: Name) -> int:
        """Advance a base domain's zone generation (one published zone
        delta): delegation and content draws re-roll under the new
        generation while registration (exists/dead) stays fixed, so the
        domain changes hands/records without blinking out of the
        namespace.  Callers normally go through
        :func:`repro.ecosystem.deltas.publish_zone_delta`, which also
        clears the affected servers' response memos."""
        base = Name.intern(base.labels)
        gen = self._generations.get(base, 0) + 1
        self._generations[base] = gen
        return gen

    def dnssec_profile(self, zone: Name) -> DnssecProfile:
        """The zone's DNSSEC deployment at its current generation.

        Root is always signed and clean; TLDs sign at ``p_tld_signed``
        with no anomalies (registries run tight ships); base domains
        sign at ``p_domain_signed`` with islands/broken chains/expired
        signatures planted at their configured rates.  Signed-ness and
        anomaly draws use the *unsalted* key so a zone delta never
        flips a zone's deployment class — but the key material is
        generation-salted, so a delta rolls the keys.
        """
        zone = Name.intern(zone.labels)
        generation = 0
        if self._generations and len(zone.labels) == 2:
            generation = self._generations.get(zone, 0)
        return self._dnssec_profile(zone, generation)

    @lru_cache(maxsize=262_144)
    def _dnssec_profile(self, zone: Name, generation: int) -> DnssecProfile:
        seed = self.params.seed
        p = self.params
        labels = zone.labels
        validity = p.dnssec_validity
        if not labels:
            return DnssecProfile(
                signed=True,
                key=zone_key_bytes(seed, zone, generation),
                inception=EPOCH_BASE - validity,
                expiration=EPOCH_BASE + validity,
            )
        tld = labels[-1].decode("ascii", "replace").lower()
        if tld not in self._tld_index or len(labels) > 2:
            return UNSIGNED
        key = zone.key_text()
        if len(labels) == 1:
            if rand.uniform(seed, key, "dnssec-signed") >= p.p_tld_signed:
                return UNSIGNED
            return DnssecProfile(
                signed=True,
                key=zone_key_bytes(seed, zone, generation),
                inception=EPOCH_BASE - validity,
                expiration=EPOCH_BASE + validity,
            )
        if rand.uniform(seed, key, "dnssec-signed") >= p.p_domain_signed:
            return UNSIGNED
        roll = rand.uniform(seed, key, "dnssec-anomaly")
        island = roll < p.p_island
        broken = not island and roll < p.p_island + p.p_broken_ds
        expired = (
            not island and not broken
            and roll < p.p_island + p.p_broken_ds + p.p_expired_sig
        )
        if expired:
            inception = EPOCH_BASE - validity - 3600
            expiration = EPOCH_BASE - 3600
        else:
            inception = EPOCH_BASE - validity
            expiration = EPOCH_BASE + validity
        return DnssecProfile(
            signed=True,
            island=island,
            broken_ds=broken,
            expired=expired,
            key=zone_key_bytes(seed, zone, generation),
            inception=inception,
            expiration=expiration,
        )

    def profile(self, base: Name) -> DomainProfile:
        """The deterministic profile of a base domain (at its current
        zone generation)."""
        if self._generations:
            return self._profile(base, self._generations.get(base, 0))
        return self._profile(base, 0)

    @lru_cache(maxsize=262_144)
    def _profile(self, base: Name, generation: int) -> DomainProfile:
        seed = self.params.seed
        p = self.params
        key = base.key_text()
        #: Registration draws (exists/dead) stay on the unsalted key —
        #: a zone delta re-delegates and rewrites content, it does not
        #: unregister the domain.  Everything else re-rolls per
        #: generation.
        gkey = key if generation == 0 else f"{key}#gen{generation}"
        tld = base.labels[-1].decode("ascii", "replace").lower()
        cls = tld_class(tld) or "legacy"

        exists = rand.uniform(seed, key, "exists") < self._p_exists()
        dead = False
        if not exists:
            dead = rand.uniform(seed, key, "dead") < p.p_dead_given_unresolved

        provider_index = rand.weighted_choice(seed, self._provider_weights, gkey, "provider")
        provider = self._providers[provider_index]

        ns_count = rand.randint(seed, 2, min(4, provider.ns_pool), gkey, "nscount")
        pool = list(range(provider.ns_pool))
        nameservers = []
        flaky_rate = p.p_flaky_base + provider.flaky_rate + FLAKY_CCTLDS.get(tld, 0.0)
        for slot in range(ns_count):
            k = pool[rand.h64(seed, gkey, "nspick", slot) % len(pool)]
            pool.remove(k)
            drop_prob = 0.0
            lame = False
            if rand.uniform(seed, gkey, "flaky", k) < flaky_rate:
                severe = (
                    rand.uniform(seed, gkey, "severe", k)
                    < p.p_severe_given_flaky + provider.severe_flaky_rate
                )
                drop_prob = p.severe_drop_prob if severe else p.flaky_drop_prob
            elif rand.uniform(seed, gkey, "lame", k) < provider.lame_rate:
                lame = True
            nameservers.append(
                NameserverInfo(
                    name=self.provider_ns_name(provider_index, k),
                    ip=self.provider_ns_ip(provider_index, k),
                    drop_prob=drop_prob,
                    lame=lame,
                )
            )

        caa = self._caa_profile(gkey, tld, cls) if exists else None

        return DomainProfile(
            base=base,
            tld=tld,
            tld_cls=cls,
            exists=exists,
            dead=dead,
            provider=provider,
            provider_index=provider_index,
            nameservers=tuple(nameservers),
            consistent_answers=provider.consistent_answers
            or rand.uniform(seed, gkey, "consistent") < 0.999,
            truncates=rand.uniform(seed, gkey, "trunc") < p.p_truncated,
            has_mx=rand.uniform(seed, gkey, "mx") < 0.72,
            has_spf=rand.uniform(seed, gkey, "spf") < 0.60,
            has_dmarc=rand.uniform(seed, gkey, "dmarc") < 0.42,
            www_is_cname=rand.uniform(seed, gkey, "wwwcname") < 0.5,
            caa=caa,
        )

    def _p_exists(self) -> float:
        # p_fqdn_resolves = p_base_exists * p_sub_exists(=0.9)
        return min(1.0, self.params.p_fqdn_resolves / 0.9)

    def _caa_profile(self, key: str, tld: str, cls: str) -> CAAProfile | None:
        p = self.params
        seed = self.params.seed
        rate = p.p_caa_gtld
        if cls == "cc":
            rate *= p.cctld_caa_multiplier
            if tld == "pl":
                rate *= p.pl_caa_multiplier
        if rand.uniform(seed, key, "caa") >= rate:
            return None

        issue: list[str] = []
        issuewild: list[str] = []
        iodef: list[str] = []
        invalid: list[str] = []

        if rand.uniform(seed, key, "caa-iodef-only") < p.p_caa_iodef_only:
            iodef.append(f"mailto:security@{key}")
        else:
            if rand.uniform(seed, key, "caa-issue") < p.p_caa_issue:
                if rand.uniform(seed, key, "caa-le") < p.p_issuer_letsencrypt:
                    issue.append(ISSUER_LETSENCRYPT)
                if rand.uniform(seed, key, "caa-comodo") < p.p_issuer_comodo:
                    issue.append(ISSUER_COMODO)
                if rand.uniform(seed, key, "caa-digicert") < p.p_issuer_digicert:
                    issue.append(ISSUER_DIGICERT)
                if not issue or rand.uniform(seed, key, "caa-other") < 0.12:
                    issue.append(rand.choice(seed, ISSUERS_OTHER, key, "caa-other-pick"))
            if rand.uniform(seed, key, "caa-wild") < p.p_caa_issuewild:
                issuewild.append(issue[0] if issue else ISSUER_LETSENCRYPT)
            if rand.uniform(seed, key, "caa-iodef") < p.p_caa_iodef:
                iodef.append(f"mailto:hostmaster@{key}")
            if rand.uniform(seed, key, "caa-invalid") < p.p_caa_invalid_tag:
                # the registrar input-validation bug from Section 6
                invalid.append("issue wild")

        return CAAProfile(
            issue=tuple(issue),
            issuewild=tuple(issuewild),
            iodef=tuple(iodef),
            invalid_tags=tuple(invalid),
            via_cname=rand.uniform(seed, key, "caa-cname") < p.p_caa_via_cname,
        )

    # ------------------------------------------------------------------
    # per-host facts
    # ------------------------------------------------------------------

    def subdomain_exists(self, fqdn: Name, profile: DomainProfile) -> bool:
        if not profile.exists:
            return False
        if fqdn == profile.base:
            return True
        key = fqdn.key_text()
        if len(fqdn.labels) == len(profile.base.labels) + 1:
            first = fqdn.labels[0].lower()
            if first == b"www":
                return rand.uniform(self.params.seed, key, "www") < self.params.p_www
            if first == b"_caa":
                # CNAME-chased CAA target (RFC 8659 / Section 6)
                return profile.caa is not None and profile.caa.via_cname
            if first == b"_dmarc":
                return profile.has_dmarc
            if first.startswith(b"mail"):
                return profile.has_mx
        return rand.uniform(self.params.seed, key, "sub") < 0.85

    def host_addresses(self, fqdn: Name, count_tag: str = "a") -> list[str]:
        """Deterministic public IPv4 addresses for a hostname (re-drawn
        when the owning base domain's zone generation advances)."""
        generation = 0
        if self._generations:
            base = self.base_domain_of(fqdn)
            if base is not None:
                generation = self._generations.get(base, 0)
        return self._host_addresses(fqdn, count_tag, generation)

    @lru_cache(maxsize=131_072)
    def _host_addresses(self, fqdn: Name, count_tag: str, generation: int) -> list[str]:
        key = fqdn.key_text()
        if generation:
            key = f"{key}#gen{generation}"
        seed = self.params.seed
        count = 1 + rand.h64(seed, key, count_tag, "count") % 3
        addresses = []
        for i in range(count):
            value = rand.h64(seed, key, count_tag, i)
            octet0 = _HOST_OCTETS[value % len(_HOST_OCTETS)]
            addresses.append(
                f"{octet0}.{(value >> 8) & 255}.{(value >> 16) & 255}.{max(1, (value >> 24) & 255)}"
            )
        return addresses

    # ------------------------------------------------------------------
    # reverse zones
    # ------------------------------------------------------------------

    def ptr_zone_dead(self, octets: tuple[int, int, int]) -> bool:
        """Whether a whole /24 reverse zone is delegated to dead servers."""
        return rand.uniform(self.params.seed, "zone24-dead", *octets) < self.params.p_rdns_dead

    def ptr_status(self, ip: str) -> str:
        """'noerror' | 'nxdomain' | 'dead' for an IPv4 address's PTR."""
        seed = self.params.seed
        octets = tuple(int(x) for x in ip.split("."))
        if self.ptr_zone_dead(octets[:3]):
            return "dead"
        threshold = self.params.p_ptr_exists / (1 - self.params.p_rdns_dead)
        if rand.uniform(seed, ip, "ptr") < threshold:
            return "noerror"
        return "nxdomain"

    def ptr_target(self, ip: str) -> Name:
        value = rand.h64(self.params.seed, ip, "ptrname")
        return Name.from_text(f"host-{value % 100_000}.isp{value % self.params.rdns_operators}.example")
