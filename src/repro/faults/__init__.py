"""repro.faults — deterministic fault injection for the simulated
Internet (chaos engineering for the resolver).

The paper's evaluation leans on failure handling — truncation, lame
delegations, timeouts, retry storms.  This package turns those from
accidents of the zone generator into *scriptable adversity*:

* :mod:`repro.faults.plan` — the :class:`FaultPlan` schema: typed
  directives (loss, burst loss, blackout, brownout, rcode storm,
  truncation, garbage, latency spike, flap) over virtual-time windows,
  loadable from JSON (``--fault-plan``).
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that hooks
  into :class:`repro.net.SimNetwork` and executes a plan from its own
  seeded RNG (``--chaos-seed``), so runs replay bit-identically and an
  empty plan is indistinguishable from no injector.
* :mod:`repro.faults.plans` — the bundled escalating-severity ladder
  the chaos soak harness (``tests/soak/``) climbs.
* ``python -m repro.faults.selfcheck`` — an end-to-end smoke test of
  the whole subsystem, mirroring ``repro.obs.selfcheck``.
"""

from .injector import FaultInjector, SendVerdict
from .plan import (
    Blackout,
    Brownout,
    BurstLoss,
    Directive,
    FaultPlan,
    Flap,
    Garbage,
    LatencySpike,
    Loss,
    PlanError,
    RcodeStorm,
    RolloverDesync,
    StripRrsig,
    Truncate,
    directive_from_json,
)
from .plans import escalation_ladder, plan_by_name, resolve_plan

__all__ = [
    "Blackout",
    "Brownout",
    "BurstLoss",
    "Directive",
    "FaultInjector",
    "FaultPlan",
    "Flap",
    "Garbage",
    "LatencySpike",
    "Loss",
    "PlanError",
    "RcodeStorm",
    "RolloverDesync",
    "SendVerdict",
    "StripRrsig",
    "Truncate",
    "directive_from_json",
    "escalation_ladder",
    "plan_by_name",
    "resolve_plan",
]
