"""The fault injector: executes a :class:`FaultPlan` against the
simulated network.

The injector hangs off :class:`repro.net.SimNetwork` (``attach()``) and
is consulted at three points of every simulated exchange:

* :meth:`on_send` — before the request leaves the client: blackouts,
  flaps, correlated/burst loss, brownout loss, latency spikes;
* :meth:`at_server` — when the request reaches the server: rcode storms
  answer *instead of* the real zone;
* :meth:`on_reply` — before the response is delivered: inbound loss,
  forced truncation, malformed/garbage replies.

Determinism contract: the injector draws from its **own**
``random.Random(chaos_seed)``, never from the network's RNG, so

* the same ``(seed, chaos_seed, plan)`` replays bit-identically, and
* an *empty* plan is byte-for-byte equivalent to no injector at all —
  every hook returns before touching the RNG when no directive matches.

Per-directive activation counts are kept as plain ints (the hooks sit
on the packet hot path) and published one-shot into the PR 2 metrics
registry via :meth:`publish_metrics` (scope ``faults``).
"""

from __future__ import annotations

import random
from dataclasses import replace

from ..dnslib import Flags, Message, Name, Question, Rcode, RRType
from ..dnslib.message import ResourceRecord
from ..net.links import GilbertElliottLoss
from .plan import (
    Blackout,
    Brownout,
    BurstLoss,
    FaultPlan,
    Flap,
    Garbage,
    LatencySpike,
    Loss,
    RcodeStorm,
    RolloverDesync,
    StripRrsig,
    Truncate,
)

__all__ = ["FaultInjector", "SendVerdict"]

_RCODES = {
    "SERVFAIL": Rcode.SERVFAIL,
    "REFUSED": Rcode.REFUSED,
    "NOTIMP": Rcode.NOTIMP,
    "FORMERR": Rcode.FORMERR,
}

#: Owner name echoed by "garbage" replies — never a real query name.
_GARBAGE_NAME = Name.from_text("garbage.invalid.")


class SendVerdict:
    """Outcome of the outbound hook for one packet."""

    __slots__ = ("drop", "extra_delay", "latency_factor")

    def __init__(self, drop: bool = False, extra_delay: float = 0.0,
                 latency_factor: float = 1.0):
        self.drop = drop
        self.extra_delay = extra_delay
        self.latency_factor = latency_factor


class FaultInjector:
    """Evaluates a fault plan over the virtual clock.

    ``sim`` supplies the clock (directive windows and flap phases are
    virtual-time); ``seed`` seeds the injector's private RNG.
    """

    def __init__(self, plan: FaultPlan, sim, seed: int = 0):
        self.plan = plan
        self.sim = sim
        self.rng = random.Random(seed)
        self.seed = seed
        #: per-directive activation counts, keyed by ``kind_index``
        self.counts: dict[str, int] = {}
        self._labels: dict[int, str] = {}
        #: Gilbert–Elliott chain per (directive index, server ip)
        self._chains: dict[tuple[int, str], GilbertElliottLoss] = {}
        self._directives = list(enumerate(plan.directives))
        for index, directive in self._directives:
            key = f"{directive.kind}_{index}"
            self._labels[index] = key
            self.counts[key] = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, network) -> "FaultInjector":
        """Install on a :class:`repro.net.SimNetwork`; returns self."""
        network.fault_injector = self
        return self

    def _hit(self, index: int) -> None:
        self.counts[self._labels[index]] += 1

    def _chain(self, index: int, directive: BurstLoss, ip: str) -> GilbertElliottLoss:
        chain = self._chains.get((index, ip))
        if chain is None:
            chain = GilbertElliottLoss(
                p_enter=directive.p_enter,
                p_exit=directive.p_exit,
                loss_good=directive.loss_good,
                loss_bad=directive.loss_bad,
            )
            self._chains[(index, ip)] = chain
        return chain

    # -- hooks (called by SimNetwork._query) ----------------------------------

    def on_send(self, dst_ip: str, protocol: str) -> SendVerdict | None:
        """Outbound fate of one packet; None = untouched (fast path)."""
        now = self.sim.now
        verdict = None
        for index, directive in self._directives:
            if not (directive.active(now) and directive.matches(dst_ip)):
                continue
            kind = type(directive)
            if kind is Blackout:
                self._hit(index)
                return SendVerdict(drop=True)
            if kind is Flap:
                if directive.down(now):
                    self._hit(index)
                    return SendVerdict(drop=True)
            elif kind is BurstLoss:
                if self._chain(index, directive, dst_ip).dropped(self.rng):
                    self._hit(index)
                    return SendVerdict(drop=True)
            elif kind is Loss:
                if self.rng.random() < directive.probability:
                    self._hit(index)
                    return SendVerdict(drop=True)
            elif kind is Brownout:
                if self.rng.random() < directive.probability:
                    self._hit(index)
                    return SendVerdict(drop=True)
                verdict = verdict or SendVerdict()
                verdict.latency_factor *= directive.latency_factor
            elif kind is LatencySpike:
                self._hit(index)
                verdict = verdict or SendVerdict()
                verdict.extra_delay += directive.extra
                verdict.latency_factor *= directive.factor
        return verdict

    def at_server(self, dst_ip: str, protocol: str, query: Message) -> Message | None:
        """A synthetic reply to use *instead of* the server, or None."""
        now = self.sim.now
        for index, directive in self._directives:
            if type(directive) is not RcodeStorm:
                continue
            if not (directive.active(now) and directive.matches(dst_ip)):
                continue
            if directive.probability < 1.0 and self.rng.random() >= directive.probability:
                continue
            self._hit(index)
            return Message(
                id=query.id,
                flags=Flags(response=True, rcode=_RCODES[directive.rcode]),
                questions=list(query.questions),
            )
        return None

    def on_reply(self, dst_ip: str, protocol: str, query: Message,
                 response: Message) -> Message | None:
        """Inbound fate: the (possibly transformed) response, or None to
        drop it."""
        now = self.sim.now
        for index, directive in self._directives:
            if not (directive.active(now) and directive.matches(dst_ip)):
                continue
            kind = type(directive)
            if kind is Blackout:
                self._hit(index)
                return None
            if kind is Flap:
                if directive.down(now):
                    self._hit(index)
                    return None
            elif kind is BurstLoss:
                if self._chain(index, directive, dst_ip).dropped(self.rng):
                    self._hit(index)
                    return None
            elif kind is Loss:
                if self.rng.random() < directive.probability:
                    self._hit(index)
                    return None
            elif kind is Brownout:
                if self.rng.random() < directive.probability:
                    self._hit(index)
                    return None
            elif kind is Truncate:
                if protocol == "udp" and not response.flags.truncated:
                    if directive.probability >= 1.0 or self.rng.random() < directive.probability:
                        self._hit(index)
                        response = Message(
                            id=response.id,
                            flags=replace(response.flags, truncated=True),
                            questions=list(response.questions),
                        )
            elif kind is StripRrsig:
                # Gate on the reply actually carrying signatures BEFORE
                # drawing: DNSSEC-oblivious traffic must not perturb the
                # RNG stream (byte-identical replays without --dnssec).
                if _carries_rrsig(response):
                    if directive.probability >= 1.0 or self.rng.random() < directive.probability:
                        self._hit(index)
                        response = _strip_rrsigs(response)
            elif kind is RolloverDesync:
                if _carries_rrsig(response):
                    if directive.probability >= 1.0 or self.rng.random() < directive.probability:
                        self._hit(index)
                        response = _desync_rrsigs(response)
            elif kind is Garbage:
                if directive.probability >= 1.0 or self.rng.random() < directive.probability:
                    self._hit(index)
                    response = self._garbage_reply(query)
        return response

    def _garbage_reply(self, query: Message) -> Message:
        """A structurally bogus reply: alternates between echoing the
        wrong question and not being a response at all — both classes
        the validation layer must reject (and the property suite proves
        the codec survives)."""
        if self.rng.random() < 0.5:
            question = query.question
            bad = Question(_GARBAGE_NAME, question.rrtype if question else 1)
            return Message(
                id=query.id, flags=Flags(response=True), questions=[bad]
            )
        return Message(id=query.id, flags=Flags(response=False),
                       questions=list(query.questions))

    # -- reporting ------------------------------------------------------------

    def total_activations(self) -> int:
        return sum(self.counts.values())

    def activations(self) -> dict[str, int]:
        """Per-directive activation counts keyed by ``kind_index``."""
        return dict(self.counts)

    def publish_metrics(self, scope) -> None:
        """One-shot publish into a registry scope (``faults``)."""
        for key, value in self.counts.items():
            scope.gauge(key).set(value)
        scope.gauge("total_activations").set(self.total_activations())
        scope.gauge("directives").set(len(self.plan))


# -- DNSSEC reply transforms ------------------------------------------------

_RRSIG = int(RRType.RRSIG)


def _carries_rrsig(response: Message) -> bool:
    return any(
        int(record.rrtype) == _RRSIG
        for section in (response.answers, response.authorities, response.additionals)
        for record in section
    )


def _strip_rrsigs(response: Message) -> Message:
    """A clone of ``response`` with every RRSIG removed."""

    def keep(section):
        return [r for r in section if int(r.rrtype) != _RRSIG]

    return Message(
        id=response.id,
        flags=response.flags,
        questions=list(response.questions),
        answers=keep(response.answers),
        authorities=keep(response.authorities),
        additionals=keep(response.additionals),
    )


def _desync_rrsigs(response: Message) -> Message:
    """A clone whose RRSIGs were made by a key the zone retired: the
    key tag is flipped and the signature bytes perturbed, so nothing
    verifies under the currently published DNSKEY."""

    def corrupt(section):
        out = []
        for record in section:
            if int(record.rrtype) != _RRSIG:
                out.append(record)
                continue
            rd = record.rdata
            signature = bytes(rd.signature)
            signature = bytes([signature[0] ^ 0xFF]) + signature[1:] if signature else b"\xff"
            out.append(
                ResourceRecord(
                    record.name,
                    record.rrtype,
                    record.rrclass,
                    record.ttl,
                    type(rd)(
                        rd.type_covered,
                        rd.algorithm,
                        rd.labels,
                        rd.original_ttl,
                        rd.expiration,
                        rd.inception,
                        rd.key_tag ^ 0xFFFF,
                        rd.signer,
                        signature,
                    ),
                )
            )
        return out

    return Message(
        id=response.id,
        flags=response.flags,
        questions=list(response.questions),
        answers=corrupt(response.answers),
        authorities=corrupt(response.authorities),
        additionals=corrupt(response.additionals),
    )
