"""Fault-plan schema: typed directives over time windows.

A :class:`FaultPlan` is an ordered list of :class:`Directive` objects,
each describing one adversity the simulated Internet should exhibit —
correlated packet loss, server blackouts/brownouts, rcode storms,
forced truncation, malformed replies, latency spikes, periodic
flapping, or DNSSEC sabotage (RRSIG stripping, rollover desync).  Plans are pure data: deterministic given a chaos seed,
loadable from JSON (``--fault-plan plan.json``), and composable (later
directives stack on earlier ones).

JSON shape::

    {
      "name": "escalation-2",
      "directives": [
        {"kind": "blackout", "servers": ["10.0.0.1"], "start": 5, "end": 25},
        {"kind": "rcode_storm", "servers": ["10.1."], "rcode": "SERVFAIL",
         "probability": 0.6, "start": 0, "end": 60},
        {"kind": "burst_loss", "servers": ["*"], "p_enter": 0.02,
         "p_exit": 0.2, "loss_bad": 0.9}
      ]
    }

Server selectors are exact IPs, prefixes ending in ``.`` (``"10.1."``
matches ``10.1.*.*``), or ``"*"`` for every server.  ``start``/``end``
are virtual-clock seconds (default: always active).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import ClassVar, Iterator

__all__ = [
    "Blackout",
    "Brownout",
    "BurstLoss",
    "Directive",
    "FaultPlan",
    "Flap",
    "Garbage",
    "LatencySpike",
    "Loss",
    "PlanError",
    "RcodeStorm",
    "RolloverDesync",
    "StripRrsig",
    "Truncate",
]

_ALWAYS = float("inf")


class PlanError(ValueError):
    """A fault plan failed to parse or validate."""


@dataclass(frozen=True)
class Directive:
    """Base: which servers, over which virtual-time window."""

    kind: ClassVar[str] = ""
    servers: tuple[str, ...] = ("*",)
    start: float = 0.0
    end: float = _ALWAYS

    def __post_init__(self):
        if self.start < 0 or self.end < self.start:
            raise PlanError(f"{self.kind}: bad window [{self.start}, {self.end})")
        if not self.servers:
            raise PlanError(f"{self.kind}: empty server selector")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def matches(self, ip: str) -> bool:
        for selector in self.servers:
            if selector == "*" or selector == ip:
                return True
            if selector.endswith(".") and ip.startswith(selector):
                return True
        return False

    @property
    def label(self) -> str:
        """Stable human/metrics label: kind plus selector summary."""
        sel = ",".join(self.servers[:2]) + ("…" if len(self.servers) > 2 else "")
        return f"{self.kind}[{sel}]"

    def to_json(self) -> dict:
        out: dict = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "servers":
                value = list(value)
            elif f.name == "end" and value == _ALWAYS:
                continue
            out[f.name] = value
        return out


def _check_probability(kind: str, name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise PlanError(f"{kind}: {name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class Loss(Directive):
    """Extra independent per-packet loss (each direction draws once)."""

    kind: ClassVar[str] = "loss"
    probability: float = 0.1

    def __post_init__(self):
        super().__post_init__()
        _check_probability(self.kind, "probability", self.probability)


@dataclass(frozen=True)
class BurstLoss(Directive):
    """Correlated loss via a Gilbert–Elliott chain per server."""

    kind: ClassVar[str] = "burst_loss"
    p_enter: float = 0.01
    p_exit: float = 0.2
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        for name in ("p_enter", "p_exit", "loss_good", "loss_bad"):
            _check_probability(self.kind, name, getattr(self, name))


@dataclass(frozen=True)
class Blackout(Directive):
    """Total unreachability: every packet to/from the server is lost."""

    kind: ClassVar[str] = "blackout"


@dataclass(frozen=True)
class Brownout(Directive):
    """Degraded service: partial loss plus inflated latency."""

    kind: ClassVar[str] = "brownout"
    probability: float = 0.3
    latency_factor: float = 2.0

    def __post_init__(self):
        super().__post_init__()
        _check_probability(self.kind, "probability", self.probability)
        if self.latency_factor < 1.0:
            raise PlanError("brownout: latency_factor must be >= 1")


@dataclass(frozen=True)
class RcodeStorm(Directive):
    """The server answers with an error rcode instead of its zone."""

    kind: ClassVar[str] = "rcode_storm"
    rcode: str = "SERVFAIL"
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        _check_probability(self.kind, "probability", self.probability)
        if self.rcode not in ("SERVFAIL", "REFUSED", "NOTIMP", "FORMERR"):
            raise PlanError(f"rcode_storm: unsupported rcode {self.rcode!r}")


@dataclass(frozen=True)
class Truncate(Directive):
    """Force the TC bit (answers stripped) on UDP replies."""

    kind: ClassVar[str] = "truncate"
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        _check_probability(self.kind, "probability", self.probability)


@dataclass(frozen=True)
class StripRrsig(Directive):
    """An on-path attacker (or broken middlebox) removing RRSIG records
    from replies.  Only replies that actually carry signatures are
    touched — DNSSEC-oblivious traffic is byte-identically unaffected —
    so a validator must flag the stripped answers Bogus while plain
    resolution sails on none the wiser."""

    kind: ClassVar[str] = "strip_rrsig"
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        _check_probability(self.kind, "probability", self.probability)


@dataclass(frozen=True)
class RolloverDesync(Directive):
    """A botched key rollover: RRSIGs in flight no longer verify under
    the published DNSKEY (signature bytes and key tag are perturbed, as
    if signed by a key the zone already retired).  Signed replies turn
    Bogus; unsigned traffic is untouched."""

    kind: ClassVar[str] = "rollover_desync"
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        _check_probability(self.kind, "probability", self.probability)


@dataclass(frozen=True)
class Garbage(Directive):
    """Structurally invalid replies (wrong question echoed / non-response),
    the malformed-payload class the validation layer must reject."""

    kind: ClassVar[str] = "garbage"
    probability: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        _check_probability(self.kind, "probability", self.probability)


@dataclass(frozen=True)
class LatencySpike(Directive):
    """Added per-exchange delay (seconds) while active."""

    kind: ClassVar[str] = "latency_spike"
    extra: float = 0.5
    factor: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        if self.extra < 0 or self.factor < 1.0:
            raise PlanError("latency_spike: extra >= 0 and factor >= 1 required")


@dataclass(frozen=True)
class Flap(Directive):
    """Periodic blackout: up for ``up_fraction`` of each period."""

    kind: ClassVar[str] = "flap"
    period: float = 20.0
    up_fraction: float = 0.5

    def __post_init__(self):
        super().__post_init__()
        if self.period <= 0:
            raise PlanError("flap: period must be positive")
        _check_probability(self.kind, "up_fraction", self.up_fraction)

    def down(self, now: float) -> bool:
        """Whether the flap is in its down phase at virtual time ``now``
        (phase-locked to the window start, so schedules are scriptable)."""
        phase = (now - self.start) % self.period
        return phase >= self.period * self.up_fraction


_DIRECTIVE_TYPES: dict[str, type[Directive]] = {
    cls.kind: cls
    for cls in (Loss, BurstLoss, Blackout, Brownout, RcodeStorm, Truncate,
                Garbage, LatencySpike, Flap, StripRrsig, RolloverDesync)
}


def directive_from_json(obj: dict) -> Directive:
    """Parse one directive dict; raises :class:`PlanError` on anything
    unknown or ill-typed (unknown keys are errors, not silently dropped:
    a typo'd fault plan must not silently test nothing)."""
    if not isinstance(obj, dict):
        raise PlanError(f"directive must be an object, got {type(obj).__name__}")
    kind = obj.get("kind")
    cls = _DIRECTIVE_TYPES.get(kind)
    if cls is None:
        raise PlanError(
            f"unknown directive kind {kind!r} (known: {sorted(_DIRECTIVE_TYPES)})"
        )
    known = {f.name for f in fields(cls)}
    kwargs = {}
    for key, value in obj.items():
        if key == "kind":
            continue
        if key not in known:
            raise PlanError(f"{kind}: unknown field {key!r} (known: {sorted(known)})")
        if key == "servers":
            if isinstance(value, str):
                value = (value,)
            elif isinstance(value, list):
                value = tuple(value)
            else:
                raise PlanError(f"{kind}: servers must be a string or list")
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise PlanError(f"{kind}: {error}") from error


@dataclass
class FaultPlan:
    """An ordered, composable set of fault directives."""

    directives: list[Directive] = field(default_factory=list)
    name: str = ""

    def __iter__(self) -> Iterator[Directive]:
        return iter(self.directives)

    def __len__(self) -> int:
        return len(self.directives)

    def __bool__(self) -> bool:
        return bool(self.directives)

    @classmethod
    def empty(cls, name: str = "empty") -> "FaultPlan":
        return cls(directives=[], name=name)

    @classmethod
    def from_json(cls, obj: dict) -> "FaultPlan":
        if not isinstance(obj, dict):
            raise PlanError("fault plan must be a JSON object")
        unknown = set(obj) - {"name", "directives"}
        if unknown:
            raise PlanError(f"unknown plan keys {sorted(unknown)}")
        raw = obj.get("directives", [])
        if not isinstance(raw, list):
            raise PlanError("'directives' must be a list")
        return cls(
            directives=[directive_from_json(entry) for entry in raw],
            name=str(obj.get("name", "")),
        )

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                obj = json.load(handle)
            except json.JSONDecodeError as error:
                raise PlanError(f"{path}: invalid JSON ({error})") from error
        return cls.from_json(obj)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "directives": [directive.to_json() for directive in self.directives],
        }
