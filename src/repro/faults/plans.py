"""Bundled fault plans: the escalating-severity ladder the chaos soak
harness climbs.

Severity 0 is the empty plan (must be byte-identical to faults-off);
each later rung injects strictly more adversity against the simulated
topology (providers live at ``192.7.*``, TLD servers at ``192.6.*``,
infra glue at ``192.8.*`` — see ``repro.ecosystem.zonegen``).  The soak
test asserts success rate degrades monotonically-ish down this ladder
while every lookup still terminates with a classified status.
"""

from __future__ import annotations

from .plan import (
    Blackout,
    Brownout,
    BurstLoss,
    FaultPlan,
    Flap,
    Garbage,
    LatencySpike,
    Loss,
    RcodeStorm,
    Truncate,
)

__all__ = ["escalation_ladder", "plan_by_name", "resolve_plan"]


def _mild() -> FaultPlan:
    """Background adversity a healthy Internet always shows: a little
    extra loss and one latency spike window."""
    return FaultPlan(
        name="mild",
        directives=[
            Loss(servers=("192.7.",), probability=0.02),
            LatencySpike(servers=("192.6.",), extra=0.05, start=2.0, end=8.0),
            Truncate(servers=("192.7.0.",), probability=0.05),
        ],
    )


def _moderate() -> FaultPlan:
    """Bursty loss on the provider fleet, an rcode storm on one
    provider, and forced truncation — the 0.4 %-truncation world of the
    paper turned up an order of magnitude."""
    return FaultPlan(
        name="moderate",
        directives=[
            BurstLoss(servers=("192.7.",), p_enter=0.01, p_exit=0.25, loss_bad=0.9),
            RcodeStorm(servers=("192.7.1.",), rcode="SERVFAIL", probability=0.5),
            Truncate(servers=("192.7.",), probability=0.1),
            Garbage(servers=("192.7.2.",), probability=0.15),
            Brownout(servers=("192.6.",), probability=0.05, latency_factor=2.0),
        ],
    )


def _severe() -> FaultPlan:
    """Correlated outages: one provider blacked out, another flapping,
    storms and garbage spread across the fleet."""
    return FaultPlan(
        name="severe",
        directives=[
            Blackout(servers=("192.7.0.",), start=1.0, end=30.0),
            Flap(servers=("192.7.1.",), period=10.0, up_fraction=0.5),
            RcodeStorm(servers=("192.7.",), rcode="SERVFAIL", probability=0.35),
            RcodeStorm(servers=("192.7.3.",), rcode="REFUSED", probability=0.5),
            Garbage(servers=("192.7.",), probability=0.15),
            Truncate(servers=("192.7.",), probability=0.2),
            BurstLoss(servers=("*",), p_enter=0.005, p_exit=0.2, loss_bad=0.8),
        ],
    )


def _extreme() -> FaultPlan:
    """The Internet on fire: wide blackouts, heavy storms, malformed
    replies everywhere, TLD brownouts.  Lookups are expected to fail in
    droves — but to fail *classified*, with no hangs and no crashes."""
    return FaultPlan(
        name="extreme",
        directives=[
            Blackout(servers=("192.7.0.", "192.7.2."), start=0.0, end=60.0),
            Flap(servers=("192.7.",), period=8.0, up_fraction=0.4),
            RcodeStorm(servers=("192.7.",), rcode="SERVFAIL", probability=0.6),
            RcodeStorm(servers=("192.6.",), rcode="REFUSED", probability=0.2),
            Garbage(servers=("192.7.", "192.6."), probability=0.3),
            Truncate(servers=("192.7.",), probability=0.35),
            Brownout(servers=("192.6.",), probability=0.25, latency_factor=3.0),
            BurstLoss(servers=("*",), p_enter=0.02, p_exit=0.15, loss_bad=0.95),
            LatencySpike(servers=("192.8.",), extra=0.25),
        ],
    )


def escalation_ladder() -> list[FaultPlan]:
    """The bundled plans in increasing severity, rung 0 empty."""
    return [FaultPlan.empty("baseline"), _mild(), _moderate(), _severe(), _extreme()]


def plan_by_name(name: str) -> FaultPlan:
    """Fetch one bundled plan (``baseline``/``mild``/``moderate``/
    ``severe``/``extreme``) — also usable as ``--fault-plan NAME``."""
    for plan in escalation_ladder():
        if plan.name == name:
            return plan
    raise KeyError(f"no bundled fault plan named {name!r}")


def resolve_plan(spec: str) -> FaultPlan:
    """A ``--fault-plan`` value: a JSON file path, or a bundled name.

    Shared by the CLI and the multi-process shard workers, which re-load
    the plan from its spec instead of pickling plan objects across the
    process boundary.  Raises :class:`KeyError` when the spec is neither
    a readable file nor a bundled plan name.
    """
    import os

    if os.path.exists(spec):
        return FaultPlan.load(spec)
    try:
        return plan_by_name(spec)
    except KeyError:
        raise KeyError(
            f"--fault-plan {spec!r} is neither a file nor a bundled plan "
            "name (mild, moderate, severe, extreme)"
        ) from None
