"""End-to-end sanity check for the fault-injection stack.

Run as ``python -m repro.faults.selfcheck``.  Exercises the plan
serialisation round-trip, the Gilbert–Elliott loss chain, the injector's
determinism contract (same seed, same plan → identical activation
counts), the empty-plan equivalence guarantee (an attached injector with
no directives must leave a scan byte-identical to no injector at all),
and one small chaos scan under a severe plan — and exits non-zero if
any invariant fails.  Cheap enough (~600 lookups) to run in the verify
loop.
"""

from __future__ import annotations

import json
import random
import sys

from ..net import GilbertElliottLoss
from . import (
    Blackout,
    FaultInjector,
    FaultPlan,
    Loss,
    RcodeStorm,
    directive_from_json,
    plan_by_name,
)


def check_plan_roundtrip() -> None:
    plan = plan_by_name("severe")
    text = json.dumps(plan.to_json(), sort_keys=True)
    again = FaultPlan.from_json(json.loads(text))
    assert json.dumps(again.to_json(), sort_keys=True) == text
    assert len(again) == len(plan)

    directive = directive_from_json(
        {"kind": "rcode_storm", "rcode": "REFUSED", "probability": 0.5}
    )
    assert isinstance(directive, RcodeStorm) and directive.rcode == "REFUSED"
    for bad in (
        {"kind": "no_such_fault"},
        {"kind": "loss", "probability": 2.0},
        {"kind": "loss", "probability": 0.1, "bogus_field": 1},
    ):
        try:
            directive_from_json(bad)
        except ValueError:
            pass
        else:
            raise AssertionError(f"accepted invalid directive {bad}")


def check_gilbert_elliott() -> None:
    chain = GilbertElliottLoss(p_enter=0.1, p_exit=0.5, loss_good=0.0, loss_bad=1.0)
    rng = random.Random(42)
    draws = [chain.dropped(rng) for _ in range(20_000)]
    rate = sum(draws) / len(draws)
    # stationary bad-state share = p_enter / (p_enter + p_exit) = 1/6
    assert 0.12 < rate < 0.21, rate
    # losses must be bursty: mean run length ~ 1/p_exit = 2, so the
    # count of distinct loss runs is well below the count of losses
    runs = sum(
        1 for i, d in enumerate(draws) if d and (i == 0 or not draws[i - 1])
    )
    assert runs < 0.75 * sum(draws), (runs, sum(draws))


def _small_scan(plan: FaultPlan | None, seed: int = 11, names_count: int = 200):
    from ..ecosystem import EcosystemParams, build_internet
    from ..framework import ScanConfig, ScanRunner
    from ..workloads import CorpusConfig, DomainCorpus

    internet = build_internet(params=EcosystemParams(seed=seed))
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, sim=internet.sim, seed=seed)
        injector.attach(internet.network)
    rows: list[dict] = []
    config = ScanConfig(threads=50, seed=seed)
    names = DomainCorpus(CorpusConfig(seed=seed)).fqdns(names_count)
    report = ScanRunner(internet, config, sink=rows.append).run(names)
    return rows, report, injector


def check_empty_plan_equivalence() -> None:
    baseline_rows, baseline_report, _ = _small_scan(None)
    empty_rows, empty_report, injector = _small_scan(FaultPlan.empty())
    assert json.dumps(baseline_rows, sort_keys=True) == json.dumps(
        empty_rows, sort_keys=True
    ), "empty fault plan changed scan output"
    assert baseline_report.stats.duration == empty_report.stats.duration
    assert injector is not None and sum(injector.counts.values()) == 0


def check_determinism() -> None:
    plan = plan_by_name("moderate")
    rows_a, _, injector_a = _small_scan(plan)
    rows_b, _, injector_b = _small_scan(plan)
    assert json.dumps(rows_a, sort_keys=True) == json.dumps(rows_b, sort_keys=True)
    assert injector_a.counts == injector_b.counts
    assert sum(injector_a.counts.values()) > 0, injector_a.counts


def check_degradation() -> None:
    _, baseline, _ = _small_scan(None)
    _, severe, injector = _small_scan(plan_by_name("severe"))
    assert severe.stats.total == baseline.stats.total
    assert severe.stats.successes <= baseline.stats.successes, (
        severe.stats.successes,
        baseline.stats.successes,
    )
    # every lookup still terminates with a classified status
    classified = sum(severe.stats.by_status.values())
    assert classified == severe.stats.total, severe.stats.by_status
    assert sum(injector.counts.values()) > 0


def check_targeting() -> None:
    plan = FaultPlan(
        [
            Blackout(servers=("192.7.",)),
            Loss(probability=1.0, servers=("192.6.3.1",), start=5.0, end=9.0),
        ]
    )

    class _Sim:
        now = 0.0

    sim = _Sim()
    injector = FaultInjector(plan, sim=sim, seed=0)
    assert injector.on_send("192.7.4.2", "udp").drop
    assert injector.on_send("8.8.8.8", "udp") is None
    assert injector.on_send("192.6.3.1", "udp") is None  # window not open
    sim.now = 6.0
    assert injector.on_send("192.6.3.1", "udp").drop
    sim.now = 10.0
    assert injector.on_send("192.6.3.1", "udp") is None  # window closed


def main() -> int:
    checks = [
        check_plan_roundtrip,
        check_gilbert_elliott,
        check_targeting,
        check_empty_plan_equivalence,
        check_determinism,
        check_degradation,
    ]
    for check in checks:
        check()
        print(f"faults selfcheck: {check.__name__} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
