"""repro.framework — scan orchestration: configuration, routine
spawning, input/output encoding, statistics, the multi-process shard
executor with checkpoint/resume and work stealing, and the CLI."""

from .checkpoint import (
    JOURNAL_VERSION,
    CheckpointError,
    CheckpointJournal,
    CheckpointWriter,
    config_fingerprint,
)
from .io import (
    JsonLineSink,
    clean_row,
    encode_row,
    names_digest,
    read_names,
    shard,
    write_rows,
)
from .parallel import DEFAULT_LOGICAL_SHARDS, ParallelReport, run_parallel_scan
from .runner import ScanConfig, ScanReport, ScanRunner, run_scan
from .stats import ScanStats
from .telemetry import DELTA_VERSION, FleetView, ScanView, TelemetryDelta

__all__ = [
    "DEFAULT_LOGICAL_SHARDS",
    "DELTA_VERSION",
    "JOURNAL_VERSION",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointWriter",
    "FleetView",
    "JsonLineSink",
    "ParallelReport",
    "ScanConfig",
    "ScanReport",
    "ScanRunner",
    "ScanStats",
    "ScanView",
    "TelemetryDelta",
    "clean_row",
    "config_fingerprint",
    "encode_row",
    "names_digest",
    "read_names",
    "run_parallel_scan",
    "run_scan",
    "shard",
    "write_rows",
]
