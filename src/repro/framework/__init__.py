"""repro.framework — scan orchestration: configuration, routine
spawning, input/output encoding, statistics, and the CLI."""

from .io import JsonLineSink, clean_row, read_names, shard, write_rows
from .runner import ScanConfig, ScanReport, ScanRunner, run_scan
from .stats import ScanStats

__all__ = [
    "JsonLineSink",
    "ScanConfig",
    "ScanReport",
    "ScanRunner",
    "ScanStats",
    "clean_row",
    "read_names",
    "run_scan",
    "shard",
    "write_rows",
]
