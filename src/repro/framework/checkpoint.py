"""Durable scan state: the ``--checkpoint-dir`` journal and exact resume.

A billion-name scan must survive crashes.  The shard executor
(:mod:`repro.framework.parallel`) decomposes a scan into hermetic
*tasks* — ``(shard, segment)`` slices of the corpus, each resolved in
its own simulated Internet with RNG streams derived from the scan seed —
so the unit of durability is the task: once a task's output rows are on
disk and its mergeable payload is journaled, a future run never needs to
repeat it.  This module owns that on-disk state.

Layout of a checkpoint directory::

    journal.jsonl          append-only WAL (versioned header first)
    state.json             atomic (tmp + rename) operator snapshot
    spool/shard-K.seg-S.rows    raw merged-output bytes of one task
    spool/shard-K.seg-S.spans   raw span bytes of one task (``--spans-file``)

``journal.jsonl`` records, one JSON object per line:

* ``header`` — journal version, the scan *config fingerprint* (see
  :func:`config_fingerprint`), and the task plan.  Written first and
  fsynced; a journal whose header cannot be read is rejected whole.
* ``task`` — one completed task: spool byte/line counts (the spool is
  flushed and fsynced *before* this record, so a record implies a valid
  spool), the task's mergeable payload (``ScanStats`` state, metrics
  dump, cache counters, CPU utilisation), and its final
  :class:`~repro.framework.telemetry.TelemetryDelta` payload.
* ``delta`` — a periodic progress snapshot for a still-running task
  (cadence checkpoints; freshness only, never needed for correctness).
* ``resume`` — appended when a later session resumes this journal.

Failure model: the journal is append-only, so the only corruption a
crash can produce is a torn final line — :meth:`CheckpointJournal.load`
tolerates exactly that (the torn record is discarded) and treats any
*earlier* unparsable line, a bad header, or a spool shorter than its
journaled byte count as real corruption (:class:`CheckpointError`).
The fsync policy trades durability for speed: ``always`` fsyncs spool +
journal at every task completion, ``interval`` only at the cadence
checkpoint, ``never`` leaves flushing to the OS.

Exact resume leans on determinism, not on snapshotting simulator
internals: completed tasks are *replayed from the spool* byte-for-byte,
incomplete tasks are *re-run from scratch* with their derived RNG
streams (a task is hermetic, so the rerun is byte-identical to the lost
first attempt), and the merge fold walks tasks in canonical order — so
an interrupted-then-resumed scan emits the same rows, stats, metrics,
and spans as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict
from typing import Iterable

__all__ = [
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointWriter",
    "JOURNAL_VERSION",
    "config_fingerprint",
    "restore_metrics_dump",
]

#: Version of the journal format.  Bump when record shapes change;
#: readers reject versions they do not understand.
JOURNAL_VERSION = 1

JOURNAL_NAME = "journal.jsonl"
STATE_NAME = "state.json"
SPOOL_DIR = "spool"

#: Accepted ``--checkpoint-fsync`` policies.
FSYNC_POLICIES = ("always", "interval", "never")


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot be used: missing, corrupt,
    truncated, or written by an incompatible scan configuration."""


def config_fingerprint(
    *,
    config,
    shards: int,
    steal_quantum: int | None,
    wire_mode: str,
    wire_sample: int,
    collect_metrics: bool,
    fault_plan: str | None,
    chaos_seed: int | None,
    add_timestamp: bool,
    collect_spans: bool,
    names_digest: str,
) -> str:
    """SHA-256 fingerprint of everything that shapes a scan's bytes.

    Two runs with equal fingerprints produce byte-identical merged
    output — that is the property resume validation leans on.  The
    fingerprint covers the full :class:`ScanConfig` (minus
    ``status_interval``, which only affects stderr), the shard/segment
    topology, the fault plan, and a digest of the input names.
    Deliberately *not* covered: the process count (a pure wall-clock
    knob) and the checkpoint cadence/fsync policy.
    """
    material = asdict(config)
    material.pop("status_interval", None)
    material["__topology__"] = {
        "shards": shards,
        "steal_quantum": steal_quantum,
        "wire_mode": wire_mode,
        "wire_sample": wire_sample,
        "collect_metrics": collect_metrics,
        "fault_plan": fault_plan,
        "chaos_seed": chaos_seed,
        "add_timestamp": add_timestamp,
        "collect_spans": collect_spans,
        "names": names_digest,
    }
    canonical = json.dumps(
        material, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def restore_metrics_dump(dump: Iterable) -> list[tuple]:
    """Undo the JSON round-trip on a ``MetricsRegistry.dump()``.

    JSON turns the dump's tuples into lists and — the part that would
    silently corrupt a merge — histogram bucket keys from ints into
    strings.  ``merge_dump`` adds buckets keyed by exact value, so a
    restored dump must match the live format bit-for-bit.
    """
    restored = []
    for entry in dump:
        name, kind, state = entry
        if kind == "histogram":
            state = dict(state)
            state["buckets"] = {
                int(index): count for index, count in state["buckets"].items()
            }
        restored.append((name, kind, state))
    return restored


def _restore_task_payload(payload: dict) -> dict:
    payload = dict(payload)
    payload["metrics"] = restore_metrics_dump(payload.get("metrics") or [])
    return payload


def _restore_delta_payload(payload: dict | None) -> dict | None:
    if payload is None:
        return None
    payload = dict(payload)
    if payload.get("metrics"):
        payload["metrics"] = restore_metrics_dump(payload["metrics"])
    return payload


def _spool_name(key: tuple[int, int], suffix: str) -> str:
    return f"shard-{key[0]}.seg-{key[1]}.{suffix}"


def _atomic_write_json(path: str, document: dict) -> None:
    """Write-then-rename so readers never observe a half-written file."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CheckpointWriter:
    """Parent-side journal writer for one executor session.

    The *parent* merge loop is the only writer — workers never touch the
    checkpoint directory, so a SIGKILLed worker cannot corrupt it.  Rows
    and spans spool incrementally as their pipe batches arrive; a task
    becomes durable at :meth:`task_done` (spool flush + fsync, then the
    journal record); :meth:`checkpoint` is the cadence hook that
    journals progress deltas for still-running tasks and rewrites
    ``state.json`` atomically.
    """

    def __init__(
        self,
        directory: str,
        *,
        fingerprint: str,
        plan: dict,
        fsync: str = "always",
        resume: bool = False,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, not {fsync!r}")
        self.directory = directory
        self.fingerprint = fingerprint
        self.plan = plan
        self._fsync = fsync
        journal_path = os.path.join(directory, JOURNAL_NAME)
        if not resume and os.path.exists(journal_path):
            raise CheckpointError(
                f"checkpoint directory already holds a journal: {journal_path} "
                "(resume it, or point --checkpoint-dir at a fresh directory)"
            )
        os.makedirs(os.path.join(directory, SPOOL_DIR), exist_ok=True)
        self._journal = open(journal_path, "a", encoding="utf-8")
        #: per-key open spool handles; first write in a session truncates
        #: (an incomplete task's stale spool must not survive the rerun)
        self._rows: dict[tuple[int, int], object] = {}
        self._spans: dict[tuple[int, int], object] = {}
        self._counts: dict[tuple[int, int], dict] = {}
        self._latest: dict[tuple[int, int], dict] = {}
        self._dirty: set[tuple[int, int]] = set()
        self._done: set[tuple[int, int]] = set()
        self._closed = False
        if resume:
            self._append({"kind": "resume", "time": time.time()}, sync=True)
        else:
            self._append(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                    "plan": plan,
                    "time": time.time(),
                },
                sync=True,
            )

    # -- internals ----------------------------------------------------------

    def _append(self, record: dict, sync: bool) -> None:
        self._journal.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal.flush()
        if sync:
            os.fsync(self._journal.fileno())

    def _spool_handle(self, key: tuple[int, int], suffix: str, table: dict):
        handle = table.get(key)
        if handle is None:
            path = os.path.join(self.directory, SPOOL_DIR, _spool_name(key, suffix))
            handle = table[key] = open(path, "wb")
        return handle

    def _count(self, key: tuple[int, int]) -> dict:
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = {
                "rows": 0, "row_bytes": 0, "spans": 0, "span_bytes": 0,
            }
        return counts

    # -- streaming input from the merge loop --------------------------------

    def spool_rows(self, key: tuple[int, int], lines: list[str]) -> None:
        data = "".join(lines).encode("utf-8")
        self._spool_handle(key, "rows", self._rows).write(data)
        counts = self._count(key)
        counts["rows"] += len(lines)
        counts["row_bytes"] += len(data)

    def spool_spans(self, key: tuple[int, int], lines: list[str]) -> None:
        data = "".join(lines).encode("utf-8")
        self._spool_handle(key, "spans", self._spans).write(data)
        counts = self._count(key)
        counts["spans"] += len(lines)
        counts["span_bytes"] += len(data)

    def note_delta(self, key: tuple[int, int], payload: dict) -> None:
        """Remember the task's latest telemetry delta; journaled at the
        next cadence checkpoint (or inside its ``task`` record)."""
        self._latest[key] = payload
        self._dirty.add(key)

    # -- durability points --------------------------------------------------

    def task_done(self, key: tuple[int, int], payload: dict) -> None:
        """Make one finished task durable.

        Order matters: spool flush (+fsync under ``always``) *before*
        the journal record, so a ``task`` record is a guarantee that the
        spool bytes it counts exist.
        """
        sync = self._fsync == "always"
        for table in (self._rows, self._spans):
            handle = table.get(key)
            if handle is not None:
                handle.flush()
                if sync:
                    os.fsync(handle.fileno())
        counts = self._count(key)
        self._append(
            {
                "kind": "task",
                "key": list(key),
                **counts,
                "payload": payload,
                "delta": self._latest.get(key),
            },
            sync=sync,
        )
        self._dirty.discard(key)
        self._done.add(key)

    def checkpoint(self, counters: dict | None = None) -> None:
        """Cadence hook: journal progress deltas for running tasks and
        atomically rewrite the ``state.json`` snapshot."""
        for key in sorted(self._dirty):
            self._append(
                {"kind": "delta", "key": list(key), "delta": self._latest[key]},
                sync=False,
            )
        self._dirty.clear()
        if self._fsync in ("always", "interval"):
            os.fsync(self._journal.fileno())
        self._write_state(complete=False, counters=counters)

    def _write_state(self, *, complete: bool, counters: dict | None) -> None:
        planned = len(self.plan.get("tasks", ()))
        _atomic_write_json(
            os.path.join(self.directory, STATE_NAME),
            {
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint,
                "tasks_planned": planned,
                "tasks_done": sorted(list(key) for key in self._done),
                "complete": complete,
                "counters": counters or {},
                "updated": time.time(),
            },
        )

    def finalize(self, *, complete: bool, counters: dict | None = None) -> None:
        """Flush everything and close; safe to call once, in any exit
        path — an incomplete journal is exactly what resume consumes."""
        if self._closed:
            return
        self._closed = True
        for table in (self._rows, self._spans):
            for handle in table.values():
                handle.flush()
                if self._fsync != "never":
                    os.fsync(handle.fileno())
                handle.close()
        for key in sorted(self._dirty):
            self._append(
                {"kind": "delta", "key": list(key), "delta": self._latest[key]},
                sync=False,
            )
        self._dirty.clear()
        if self._fsync != "never":
            os.fsync(self._journal.fileno())
        self._journal.close()
        self._write_state(complete=complete, counters=counters)


class CheckpointJournal:
    """A loaded (and validated) checkpoint directory.

    ``tasks`` maps ``(shard, segment)`` to the journal's ``task``
    record, with metric dumps restored to their live in-memory format
    (see :func:`restore_metrics_dump`); :meth:`rows_for` /
    :meth:`spans_for` replay a durable task's exact output bytes.
    """

    def __init__(
        self,
        directory: str,
        *,
        version: int,
        fingerprint: str,
        plan: dict,
        tasks: dict,
        deltas: dict,
        resumes: int,
    ):
        self.directory = directory
        self.version = version
        self.fingerprint = fingerprint
        self.plan = plan
        self.tasks = tasks
        self.deltas = deltas
        self.resumes = resumes

    @classmethod
    def load(cls, directory: str) -> "CheckpointJournal":
        path = os.path.join(directory, JOURNAL_NAME)
        if not os.path.exists(path):
            raise CheckpointError(f"no checkpoint journal at {path}")
        with open(path, "rb") as handle:
            raw_lines = handle.read().split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()  # trailing newline of the last complete record
        if not raw_lines:
            raise CheckpointError(f"empty checkpoint journal at {path}")
        try:
            header = json.loads(raw_lines[0])
        except ValueError as error:
            raise CheckpointError(f"unreadable journal header in {path}: {error}")
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise CheckpointError(f"journal {path} does not start with a header record")
        version = header.get("version")
        if version != JOURNAL_VERSION:
            raise CheckpointError(
                f"journal version {version} != supported {JOURNAL_VERSION} ({path})"
            )
        tasks: dict[tuple[int, int], dict] = {}
        deltas: dict[tuple[int, int], dict] = {}
        resumes = 0
        last = len(raw_lines) - 1
        for number, raw in enumerate(raw_lines[1:], start=1):
            try:
                record = json.loads(raw)
                if not isinstance(record, dict) or "kind" not in record:
                    raise ValueError("not a journal record")
            except ValueError as error:
                if number == last:
                    break  # torn tail from a crash mid-append: discard
                raise CheckpointError(
                    f"corrupt journal record at {path}:{number + 1}: {error}"
                )
            kind = record["kind"]
            if kind == "task":
                key = tuple(record["key"])
                record["payload"] = _restore_task_payload(record["payload"])
                record["delta"] = _restore_delta_payload(record.get("delta"))
                tasks[key] = record
            elif kind == "delta":
                deltas[tuple(record["key"])] = _restore_delta_payload(record["delta"])
            elif kind == "resume":
                resumes += 1
            # unknown record kinds under the same version are ignored
        journal = cls(
            directory,
            version=version,
            fingerprint=header.get("fingerprint", ""),
            plan=header.get("plan", {}),
            tasks=tasks,
            deltas=deltas,
            resumes=resumes,
        )
        journal._check_spools()
        return journal

    def _check_spools(self) -> None:
        """Every journaled task must have its spool bytes on disk — the
        writer fsyncs spools before journal records, so a short spool is
        corruption, not a crash artifact."""
        for key, record in self.tasks.items():
            for suffix, bytes_key in (("rows", "row_bytes"), ("spans", "span_bytes")):
                expected = record.get(bytes_key, 0)
                if not expected:
                    continue
                path = os.path.join(self.directory, SPOOL_DIR, _spool_name(key, suffix))
                try:
                    size = os.path.getsize(path)
                except OSError:
                    raise CheckpointError(f"missing checkpoint spool {path}")
                if size < expected:
                    raise CheckpointError(
                        f"truncated checkpoint spool {path}: "
                        f"{size} bytes < journaled {expected}"
                    )

    def validate(self, *, fingerprint: str, plan: dict) -> None:
        """Reject resume under a different scan configuration."""
        if fingerprint != self.fingerprint:
            raise CheckpointError(
                "checkpoint was written by a different scan configuration "
                f"(journal fingerprint {self.fingerprint[:12]}…, "
                f"this run {fingerprint[:12]}…); seed, shards, quantum, "
                "fault plan, flags, and input names must all match"
            )
        if plan != self.plan:
            raise CheckpointError(
                "checkpoint task plan does not match this run's plan"
            )

    def _spool_lines(
        self, key: tuple[int, int], suffix: str, count_key: str, bytes_key: str
    ) -> list[str]:
        record = self.tasks[key]
        expected_lines = record.get(count_key, 0)
        expected_bytes = record.get(bytes_key, 0)
        if not expected_lines:
            return []
        path = os.path.join(self.directory, SPOOL_DIR, _spool_name(key, suffix))
        with open(path, "rb") as handle:
            data = handle.read(expected_bytes)
        if len(data) < expected_bytes:
            raise CheckpointError(
                f"truncated checkpoint spool {path}: "
                f"{len(data)} bytes < journaled {expected_bytes}"
            )
        lines = data.decode("utf-8").splitlines(keepends=True)
        if len(lines) != expected_lines:
            raise CheckpointError(
                f"checkpoint spool {path} holds {len(lines)} rows, "
                f"journal recorded {expected_lines}"
            )
        return lines

    def rows_for(self, key: tuple[int, int]) -> list[str]:
        """The exact output lines a durable task produced."""
        return self._spool_lines(key, "rows", "rows", "row_bytes")

    def spans_for(self, key: tuple[int, int]) -> list[str]:
        """The exact span lines a durable task produced."""
        return self._spool_lines(key, "spans", "spans", "span_bytes")
