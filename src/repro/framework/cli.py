"""The ``pyzdns`` command line interface.

Mirrors ZDNS's CLI shape: ``pyzdns MODULE [flags] < names``.  Scans run
against the built-in simulated Internet (this reproduction's substrate);
``--live-resolver HOST:PORT`` instead sends real UDP queries, for use
against a loopback test server or, with network access, real resolvers.

Observability flags (see :mod:`repro.obs`): ``--status-interval`` prints
a live progress line per interval, ``--metadata-file`` writes a JSON run
summary (args, durations, metrics, profile), ``--metrics-out`` dumps the
metrics registry as Prometheus-style text, and ``--spans-file`` streams
per-lookup spans as JSON lines.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..core import ExternalMachine, LiveDriver, ResolverConfig
from ..ecosystem import EcosystemParams, build_internet
from ..modules import available_modules, get_module
from ..net import UDPTransport
from ..obs import build_run_metadata, format_status_line, write_metadata
from .io import JsonLineSink, read_names, shard
from .parallel import DEFAULT_LOGICAL_SHARDS, run_parallel_scan
from .runner import ScanConfig, ScanRunner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pyzdns",
        description="Fast DNS measurement toolkit (ZDNS reproduction).",
    )
    parser.add_argument("module", help=f"scan module ({', '.join(available_modules())})")
    parser.add_argument("--input-file", "-f", default=None, help="names file (default stdin)")
    parser.add_argument("--output-file", "-o", default=None, help="results file (default stdout)")
    parser.add_argument(
        "--mode",
        choices=["iterative", "google", "cloudflare", "external"],
        default="iterative",
        help="resolution mode (default: iterative)",
    )
    parser.add_argument("--name-servers", default="", help="comma-separated resolvers for --mode external")
    parser.add_argument("--threads", "-t", type=int, default=1000, help="concurrent lookup routines")
    parser.add_argument("--source-prefix", type=int, default=32, help="scanning subnet size (32, 29, 28)")
    parser.add_argument("--cache-size", type=int, default=600_000, help="delegation cache entries")
    parser.add_argument("--retries", type=int, default=2, help="extra attempts per query")
    parser.add_argument("--timeout", type=float, default=3.0, help="per-query timeout seconds")
    parser.add_argument("--trace", action="store_true", help="record full lookup chains")
    parser.add_argument("--seed", type=int, default=2022, help="simulation seed")
    parser.add_argument("--cores", type=int, default=24, help="simulated CPU cores")
    parser.add_argument(
        "--live-resolver",
        default=None,
        help="HOST:PORT of a real resolver: send real UDP instead of simulating",
    )
    parser.add_argument("--shards", type=int, default=1, help="total scanner shards")
    parser.add_argument("--shard", type=int, default=0, help="this instance's shard index")
    parser.add_argument(
        "--processes",
        "-p",
        type=int,
        default=None,
        metavar="N",
        help="fork N worker processes, each scanning disjoint logical "
        "shards through its own simulated Internet; results merge into "
        "one order-normalized stream (simulated scans only)",
    )
    parser.add_argument(
        "--mp-shards",
        type=int,
        default=None,
        metavar="S",
        help="logical shard count for --processes (default "
        f"{DEFAULT_LOGICAL_SHARDS}); for a fixed seed and S the merged "
        "output is byte-identical for any process count",
    )
    parser.add_argument(
        "--steal-quantum",
        type=int,
        default=None,
        metavar="N",
        help="with --processes: pre-segment each logical shard every N "
        "names so idle workers can steal a straggler's tail segments; "
        "output bytes depend on N but not on the steal schedule",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="with --processes: journal completed tasks and periodic "
        "progress to DIR so an interrupted scan can be resumed exactly "
        "(see --resume)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock seconds between cadence checkpoints "
        "(default 5.0; requires --checkpoint-dir or --resume)",
    )
    parser.add_argument(
        "--checkpoint-fsync",
        choices=["always", "interval", "never"],
        default=None,
        help="journal fsync policy: 'always' syncs at every task "
        "completion (default), 'interval' only at cadence checkpoints, "
        "'never' leaves flushing to the OS",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume an interrupted --checkpoint-dir scan: validate the "
        "journal against this run's configuration, replay completed "
        "tasks from the spool, and re-run only the rest — the merged "
        "output is byte-identical to an uninterrupted run",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the stats summary")
    parser.add_argument(
        "--metadata-file",
        default=None,
        help="write a JSON run summary (args, durations, statuses, metrics) to this path",
    )
    parser.add_argument(
        "--status-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print a status line to stderr every SECONDS of scan time",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="dump the metrics registry as Prometheus-style text ('-' = stderr)",
    )
    parser.add_argument(
        "--spans-file",
        default=None,
        metavar="PATH",
        help="stream per-lookup spans as JSON lines to this path (with "
        "--processes, rows carry a 'shard' tag and merge shard-ordered)",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a live control plane on 127.0.0.1:PORT while the "
        "scan runs: /metrics (Prometheus text), /status.json (fleet "
        "snapshot), / (dashboard); 0 picks a free port (simulated scans "
        "only, off by default)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="inject faults: a JSON plan file, or a bundled plan name "
        "(mild, moderate, severe, extreme); simulated scans only",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="RNG seed for fault injection (default: --seed)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base retry backoff with decorrelated jitter (0 = off)",
    )
    parser.add_argument(
        "--server-health",
        action="store_true",
        help="track per-server health and shed load from failing servers",
    )
    parser.add_argument(
        "--oracle-check",
        type=int,
        default=None,
        metavar="K",
        help="shadow every Kth lookup against the differential "
        "reference resolver; divergences become structured output rows "
        "(simulated iterative scans only)",
    )
    parser.add_argument(
        "--no-timestamps",
        action="store_true",
        help="omit wall-clock timestamps from result rows (for "
        "byte-identical replay comparisons)",
    )
    parser.add_argument(
        "--dnssec",
        action="store_true",
        help="set the DO bit on every query and validate each answer "
        "against the chain of trust; rows gain data.dnssec "
        "(secure/insecure/bogus/indeterminate) and the metrics registry "
        "a dnssec.* scope (simulated iterative scans only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        module = get_module(args.module)
    except KeyError as error:
        parser.error(str(error))

    # Validate the sharding/process topology eagerly: a bad combination
    # must exit as a clean usage error, not a traceback mid-scan.
    if args.shards < 1:
        parser.error(f"--shards must be >= 1 (got {args.shards})")
    if not 0 <= args.shard < args.shards:
        parser.error(
            f"--shard {args.shard} outside 0..{args.shards - 1} "
            f"(of --shards {args.shards})"
        )
    if args.processes is not None:
        if args.processes < 1:
            parser.error(f"--processes must be >= 1 (got {args.processes})")
        if args.mp_shards is not None and args.mp_shards < 1:
            parser.error(f"--mp-shards must be >= 1 (got {args.mp_shards})")
        if args.live_resolver:
            parser.error("--processes applies to simulated scans only")
    elif args.mp_shards is not None:
        parser.error("--mp-shards requires --processes")

    # Durability flags ride on the multi-process executor only.
    if args.processes is None:
        for flag, value in (
            ("--steal-quantum", args.steal_quantum),
            ("--checkpoint-dir", args.checkpoint_dir),
            ("--resume", args.resume),
        ):
            if value is not None:
                parser.error(f"{flag} requires --processes")
    if args.steal_quantum is not None and args.steal_quantum < 1:
        parser.error(f"--steal-quantum must be >= 1 (got {args.steal_quantum})")
    if args.resume is not None and args.checkpoint_dir is not None:
        parser.error("--resume already names the checkpoint directory; drop --checkpoint-dir")
    checkpointing = args.checkpoint_dir is not None or args.resume is not None
    if args.checkpoint_interval is not None:
        if not checkpointing:
            parser.error("--checkpoint-interval requires --checkpoint-dir or --resume")
        if args.checkpoint_interval <= 0:
            parser.error(
                f"--checkpoint-interval must be > 0 (got {args.checkpoint_interval})"
            )
    if args.checkpoint_fsync is not None and not checkpointing:
        parser.error("--checkpoint-fsync requires --checkpoint-dir or --resume")

    if args.http_port is not None:
        if args.http_port < 0 or args.http_port > 65535:
            parser.error(f"--http-port must be 0..65535 (got {args.http_port})")
        if args.live_resolver:
            parser.error("--http-port applies to simulated scans only")

    if args.oracle_check is not None:
        if args.oracle_check < 1:
            parser.error(f"--oracle-check must be >= 1 (got {args.oracle_check})")
        if args.live_resolver:
            parser.error("--oracle-check applies to simulated scans only")
        if args.processes is not None:
            parser.error("--oracle-check is not supported with --processes")
        if args.mode != "iterative":
            parser.error("--oracle-check requires --mode iterative")

    if args.dnssec:
        if args.live_resolver:
            parser.error("--dnssec applies to simulated scans only")
        if args.mode != "iterative":
            parser.error("--dnssec requires --mode iterative")

    names = read_names(args.input_file)
    if args.shards > 1:
        names = shard(names, args.shards, args.shard)
    out_handle = open(args.output_file, "w") if args.output_file else sys.stdout
    started = time.monotonic()
    try:
        if args.live_resolver:
            summary, report = _run_live(args, module, names, out_handle)
        elif args.processes is not None:
            summary, report = _run_parallel(args, names, out_handle)
        else:
            summary, report = _run_simulated(args, module, names, out_handle)
        wall_seconds = time.monotonic() - started
        if not args.quiet:
            print(json.dumps(summary, sort_keys=True), file=sys.stderr)
        if args.metrics_out and report is not None:
            text = report.registry.render_prometheus()
            if args.metrics_out == "-":
                sys.stderr.write(text)
            else:
                with open(args.metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(text)
        if args.metadata_file:
            metadata = build_run_metadata(
                summary,
                args=vars(args),
                wall_seconds=wall_seconds,
                virtual_seconds=report.stats.duration if report is not None else None,
                metrics=report.metrics if report is not None and report.metrics else None,
                profile=report.profile if report is not None else None,
            )
            write_metadata(args.metadata_file, metadata)
    finally:
        if args.output_file:
            out_handle.close()
    return 0


def _load_fault_plan(spec: str):
    """A ``--fault-plan`` value: a JSON file path, or a bundled name."""
    from ..faults import resolve_plan

    try:
        return resolve_plan(spec)
    except KeyError as error:
        raise SystemExit(f"pyzdns: {error.args[0]}")


def _scan_config(args) -> ScanConfig:
    """The ScanConfig both the in-process and multi-process paths share."""
    return ScanConfig(
        module=args.module,
        mode=args.mode,
        resolver_ips=[s for s in args.name_servers.split(",") if s],
        threads=args.threads,
        source_prefix=args.source_prefix,
        cache_size=args.cache_size,
        retries=args.retries,
        external_timeout=args.timeout,
        cores=args.cores,
        record_trace=args.trace,
        seed=args.seed,
        metrics=bool(args.metrics_out or args.metadata_file),
        status_interval=args.status_interval,
        backoff_base=args.backoff,
        server_health=args.server_health,
        oracle_check=getattr(args, "oracle_check", None),
        dnssec=getattr(args, "dnssec", False),
    )


def _run_info(args) -> dict:
    """Run metadata shown on the dashboard and in ``/status.json``."""
    return {
        "module": args.module,
        "mode": args.mode,
        "seed": args.seed,
        "threads": args.threads,
        "processes": args.processes or 1,
    }


def _start_server(args, view):
    """Start the control-plane server over ``view`` when ``--http-port``
    was given; announces the URL on stderr (the scan owns stdout)."""
    if args.http_port is None:
        return None
    from ..obs.server import TelemetryServer

    server = TelemetryServer(
        status=view.status_snapshot, metrics=view.prometheus, port=args.http_port
    ).start()
    if not args.quiet:
        print(f"pyzdns: control plane at {server.url}", file=sys.stderr)
    return server


def _run_parallel(args, names, out_handle):
    """Multi-process scan: fork workers, merge shards (see
    :mod:`repro.framework.parallel`)."""
    from .checkpoint import CheckpointError
    from .telemetry import FleetView

    if args.fault_plan:
        _load_fault_plan(args.fault_plan)  # fail fast on a bad spec
    config = _scan_config(args)
    config.status_interval = None  # the parent emits the fleet-wide line
    fleet = FleetView(run_info=_run_info(args))
    server = _start_server(args, fleet)
    span_handle = None
    if args.spans_file:
        span_handle = open(args.spans_file, "w")
    try:
        report = run_parallel_scan(
            names,
            config,
            processes=args.processes,
            out=out_handle,
            shards=args.mp_shards,
            collect_metrics=config.metrics,
            status_interval=args.status_interval,
            fault_plan=args.fault_plan,
            chaos_seed=args.chaos_seed,
            add_timestamp=not args.no_timestamps,
            collect_spans=span_handle is not None,
            span_out=span_handle,
            fleet_view=fleet if server is not None else None,
            steal_quantum=args.steal_quantum,
            checkpoint_dir=args.resume or args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_fsync=args.checkpoint_fsync or "always",
            resume=args.resume is not None,
        )
    except CheckpointError as error:
        raise SystemExit(f"pyzdns: {error}")
    finally:
        if span_handle is not None:
            span_handle.close()
        if server is not None:
            server.stop()
    return report.summary(), report


def _run_simulated(args, module, names, out_handle):
    internet = build_internet(params=EcosystemParams(seed=args.seed))
    if args.fault_plan:
        from ..faults import FaultInjector

        plan = _load_fault_plan(args.fault_plan)
        chaos_seed = args.chaos_seed if args.chaos_seed is not None else args.seed
        FaultInjector(plan, sim=internet.sim, seed=chaos_seed).attach(internet.network)
    config = _scan_config(args)
    sink = JsonLineSink(out_handle, add_timestamp=not args.no_timestamps)
    span_handle = None
    span_sink = None
    if args.spans_file:
        span_handle = open(args.spans_file, "w")
        span_sink = JsonLineSink(span_handle)
    view = None
    server = None
    target = None
    if args.http_port is not None or args.status_interval is not None:
        # done/target and ETA need the total up front; stdin is a stream,
        # so materialise (the mp path already does the same)
        names = list(names)
        target = len(names)
    if args.http_port is not None:
        from .telemetry import ScanView

        view = ScanView(run_info=_run_info(args))
        server = _start_server(args, view)
    try:
        report = ScanRunner(
            internet,
            config,
            module=module,
            sink=sink,
            span_sink=span_sink,
            view=view,
            target=target,
        ).run(names)
    finally:
        if span_handle is not None:
            span_handle.close()
        if server is not None:
            server.stop()
    summary = report.stats.to_json()
    summary["cache"] = report.cache_stats
    summary["cpu_utilisation"] = round(report.cpu_utilisation, 3)
    if report.oracle_stats is not None:
        summary["oracle"] = report.oracle_stats
    return summary, report


def _run_live(args, module, names, out_handle):
    """Sequential real-socket scan against one resolver (loopback or,
    with network access, a public resolver).  ``--status-interval`` here
    runs on the wall clock, checked between lookups."""
    host, _, port_text = args.live_resolver.partition(":")
    port = int(port_text) if port_text else 53
    config = ResolverConfig(external_timeout=args.timeout, retries=args.retries)
    sink = JsonLineSink(out_handle)
    total = successes = timeouts = retries = 0
    interval = args.status_interval
    started = time.monotonic()
    next_status = started + interval if interval else None
    last_total = 0
    with UDPTransport() as transport:
        driver = LiveDriver(transport, port_override=port, seed=args.seed)
        for raw in names:
            machine = ExternalMachine([host], config)
            result = driver.execute(machine.resolve(module.parse_input(raw), module.qtype))
            row = module.process(raw, result)
            row.pop("_result", None)
            sink(row)
            total += 1
            successes += result.is_success
            timeouts += str(result.status) == "TIMEOUT"
            retries += result.retries_used
            now = time.monotonic()
            if next_status is not None and now >= next_status:
                elapsed = now - started
                print(
                    format_status_line(
                        elapsed=elapsed,
                        total=total,
                        interval_rate=(total - last_total) / interval,
                        average_rate=total / elapsed if elapsed > 0 else 0.0,
                        success_rate=successes / total if total else 0.0,
                        in_flight=0,
                        timeouts=timeouts,
                        retries=retries,
                        cache_hit_rate=None,
                    ),
                    file=sys.stderr,
                )
                last_total = total
                next_status = now + interval
    return {"total": total, "successes": successes, "mode": "live"}, None


if __name__ == "__main__":
    raise SystemExit(main())
