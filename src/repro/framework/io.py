"""Input decoding and output encoding for scans (Section 3.2)."""

from __future__ import annotations

import hashlib
import json
import sys
from datetime import datetime, timezone
from typing import Iterable, Iterator, TextIO


def read_names(source: TextIO | str | None = None) -> Iterator[str]:
    """Yield input names/IPs, one per non-empty line.

    ``source`` may be a path, an open file, or None for stdin.
    """
    if source is None:
        yield from _lines(sys.stdin)
    elif isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _lines(handle)
    else:
        yield from _lines(source)


def _lines(handle: TextIO) -> Iterator[str]:
    for line in handle:
        line = line.strip()
        if line and not line.startswith("#"):
            yield line


def shard(items: Iterable[str], shards: int, index: int) -> Iterator[str]:
    """ZMap-style sharding: the ``index``-th of ``shards`` partitions.

    Lets multiple scanner instances split one input deterministically:
    item ``i`` belongs to shard ``i % shards``.  The partition is exact:
    over all indices the shards are pairwise disjoint and their union
    (in position order) is the input.

    Argument validation happens eagerly, at the call — not at the first
    ``next()`` — so callers holding a bad shard spec fail at setup time
    instead of deep inside a scan.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if not 0 <= index < shards:
        raise ValueError(f"shard index {index} outside 0..{shards - 1}")
    return _shard_iter(items, shards, index)


def _shard_iter(items: Iterable[str], shards: int, index: int) -> Iterator[str]:
    for position, item in enumerate(items):
        if position % shards == index:
            yield item


def names_digest(names: Iterable[str]) -> str:
    """SHA-256 over the input names, order-sensitive.

    The checkpoint layer (:mod:`repro.framework.checkpoint`) folds this
    into the scan config fingerprint: resuming a journal against a
    different input list would replay the wrong rows, so the digest must
    change when any name — or the order of names — changes.
    """
    digest = hashlib.sha256()
    for name in names:
        digest.update(name.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def clean_row(row: dict) -> dict:
    """Strip framework-internal keys (leading underscore) from a row."""
    return {key: value for key, value in row.items() if not key.startswith("_")}


def write_rows(rows: Iterable[dict], destination: TextIO | str | None = None) -> int:
    """Write result rows as JSON lines; returns the row count."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write(rows, handle)
    return _write(rows, destination or sys.stdout)


def _write(rows: Iterable[dict], handle: TextIO) -> int:
    count = 0
    for row in rows:
        handle.write(json.dumps(clean_row(row), sort_keys=True))
        handle.write("\n")
        count += 1
    return count


def encode_row(row: dict, add_timestamp: bool = False) -> str:
    """One output row as its canonical JSON line (newline included).

    The single source of truth for the output byte format: the
    in-process :class:`JsonLineSink` and the multi-process shard workers
    (:mod:`repro.framework.parallel`) both emit through here, so a
    merged multi-core run is byte-compatible with a single-process one.
    ``add_timestamp=True`` stamps the row with the wall-clock write
    time, matching ZDNS's output (Appendix C).
    """
    row = clean_row(row)
    if add_timestamp:
        # datetime/timezone are module-level imports: this runs once per
        # output row, and re-executing the import machinery on the hot
        # output path cost a dict probe per row for nothing.
        row["timestamp"] = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    return json.dumps(row, sort_keys=True) + "\n"


class JsonLineSink:
    """A sink for ScanRunner that streams rows to a file handle.

    ``add_timestamp=True`` stamps each row with the wall-clock time it
    was written, matching ZDNS's output (Appendix C).
    """

    def __init__(self, handle: TextIO, add_timestamp: bool = False):
        self.handle = handle
        self.add_timestamp = add_timestamp
        self.count = 0

    def __call__(self, row: dict) -> None:
        self.handle.write(encode_row(row, self.add_timestamp))
        self.count += 1
