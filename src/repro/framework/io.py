"""Input decoding and output encoding for scans (Section 3.2)."""

from __future__ import annotations

import json
import sys
from typing import Iterable, Iterator, TextIO


def read_names(source: TextIO | str | None = None) -> Iterator[str]:
    """Yield input names/IPs, one per non-empty line.

    ``source`` may be a path, an open file, or None for stdin.
    """
    if source is None:
        yield from _lines(sys.stdin)
    elif isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _lines(handle)
    else:
        yield from _lines(source)


def _lines(handle: TextIO) -> Iterator[str]:
    for line in handle:
        line = line.strip()
        if line and not line.startswith("#"):
            yield line


def shard(items: Iterable[str], shards: int, index: int) -> Iterator[str]:
    """ZMap-style sharding: the ``index``-th of ``shards`` partitions.

    Lets multiple scanner instances split one input deterministically:
    item ``i`` belongs to shard ``i % shards``.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if not 0 <= index < shards:
        raise ValueError(f"shard index {index} outside 0..{shards - 1}")
    for position, item in enumerate(items):
        if position % shards == index:
            yield item


def clean_row(row: dict) -> dict:
    """Strip framework-internal keys (leading underscore) from a row."""
    return {key: value for key, value in row.items() if not key.startswith("_")}


def write_rows(rows: Iterable[dict], destination: TextIO | str | None = None) -> int:
    """Write result rows as JSON lines; returns the row count."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write(rows, handle)
    return _write(rows, destination or sys.stdout)


def _write(rows: Iterable[dict], handle: TextIO) -> int:
    count = 0
    for row in rows:
        handle.write(json.dumps(clean_row(row), sort_keys=True))
        handle.write("\n")
        count += 1
    return count


class JsonLineSink:
    """A sink for ScanRunner that streams rows to a file handle.

    ``add_timestamp=True`` stamps each row with the wall-clock time it
    was written, matching ZDNS's output (Appendix C).
    """

    def __init__(self, handle: TextIO, add_timestamp: bool = False):
        self.handle = handle
        self.add_timestamp = add_timestamp
        self.count = 0

    def __call__(self, row: dict) -> None:
        row = clean_row(row)
        if self.add_timestamp:
            import datetime

            row["timestamp"] = (
                datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
            )
        self.handle.write(json.dumps(row, sort_keys=True))
        self.handle.write("\n")
        self.count += 1
