"""Multi-process shard executor: true multi-core scans, durable and
work-stealing.

The paper's headline result is ZDNS saturating a 24-core server with
tens of thousands of goroutines.  A single CPython interpreter cannot —
the GIL serialises the simulator's pure-Python hot loop — so this module
supplies the missing layer: ``--processes N`` forks N workers and the
parent dispatches *tasks* to them over duplex pipes, merging the
per-task JSONL streams and telemetry into one fleet-wide result.

Design invariants, in order:

1. **Task decomposition is independent of process count and schedule.**
   The corpus is split into ``shards`` logical shards (``i % shards``,
   exactly as ZMap-style ``--shards/--shard`` manual sharding does);
   ``steal_quantum`` optionally pre-segments each shard's name list at
   fixed boundaries (``0, Q, 2Q, …``), giving ``(shard, segment)``
   tasks.  Every task is hermetic — its own simulated Internet (same
   ecosystem seed, so the same universe), its own network/driver/cache
   RNG streams derived via :func:`repro.net.derive_seed` — so the
   merged bytes are a pure function of ``(seed, shards, quantum)``:
   identical for any process count *and any steal schedule*.  Without a
   quantum each shard is one task with the same seed streams as ever,
   so default output is unchanged.
2. **Merged output is order-normalized.**  Rows are emitted in canonical
   ``(shard, segment)`` order, each task in its deterministic completion
   order: the head task streams live while later tasks buffer, and each
   task's stream is flushed the moment every earlier task has finished.
   The merged file equals the concatenation of the per-shard files a
   manual ``--shards S --shard k`` fleet would have produced.
3. **Telemetry merges, not samples.**  ``ScanStats`` fold together
   (status counts, completion times, retries), metrics registries merge
   (counter/gauge sums, histogram bucket adds), and fault-injection /
   server-health scopes are relabelled per shard
   (``faults.* -> faults.shardK.*``) so a post-mortem can still tell
   which slice of the fleet saw the trouble.
4. **Scheduling is dynamic; bytes are not.**  Workers *pull*: each sends
   ``ready`` and the parent hands it the lowest pending segment of a
   shard it owns (``shard % processes``), or — when its own shards are
   drained — *steals* the tail segment of the shard with the most
   pending work.  Stealing moves wall-clock, never bytes (invariant 1),
   and every steal boundary is a task boundary, so stealing composes
   with checkpoint/resume.
5. **Durability is at task granularity.**  With ``checkpoint_dir`` the
   parent spools each task's row/span bytes and journals its mergeable
   payload on completion (plus periodic progress deltas on a cadence) —
   see :mod:`repro.framework.checkpoint`.  ``resume=True`` validates
   the journal against the scan's config fingerprint, replays durable
   tasks from the spool byte-for-byte, re-runs only the incomplete ones
   with re-derived RNG streams, and folds stats/metrics in canonical
   task order — an interrupted-then-resumed scan is byte-identical to
   an uninterrupted one (rows, stats, metrics, spans).

Workers stream row batches over the pipes as they complete, so the
parent overlaps merging with scanning; a final per-task payload carries
the mergeable stats/metrics state.  Between batches, workers also stream
:class:`~repro.framework.telemetry.TelemetryDelta` snapshots (periodic
on each task's virtual clock) that the parent annotates with scheduling
state (owner/worker/stolen_from) and folds into a live
:class:`~repro.framework.telemetry.FleetView` — the fleet status line
and the HTTP control plane read the view; the authoritative end-of-scan
merge still comes only from the final ``task_done`` payloads, so the
live path can never perturb the determinism contract.  Span rows
(``--spans-file``) travel task-tagged over the same pipes and are merged
with the same ordered buffering as output rows.  ``fork`` is preferred
(the corpus is inherited copy-on-write); the spec is picklable, so
``spawn`` platforms work too, just with a higher start-up cost.

Test hooks (deterministic crash injection for the durability suite):
``REPRO_TEST_CRASH=worker:W:after:N`` SIGKILLs worker ``W`` after its
``N``-th completed task; ``worker:W:during:N`` SIGKILLs it at the first
telemetry emission of its ``N``-th task; ``parent:after:N`` SIGKILLs
the parent right after journaling its ``N``-th task record of the
session.  ``REPRO_TEST_TASK_DELAY=W:SECONDS`` slows worker ``W`` down
before each task, to force steals deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from typing import Iterable, TextIO

from ..net import derive_seed
from ..obs import MetricsRegistry, format_status_line
from ..obs.status import estimate_eta
from .checkpoint import CheckpointJournal, CheckpointWriter, config_fingerprint
from .io import encode_row, names_digest, shard
from .runner import ScanConfig, ScanRunner
from .stats import ScanStats
from .telemetry import FleetView, TelemetryDelta

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_LOGICAL_SHARDS",
    "ParallelReport",
    "run_parallel_scan",
]

#: Default interval, in *virtual* seconds on each task's clock, between
#: streamed telemetry deltas.  Deterministic for a fixed corpus (virtual
#: timers fire at the same points regardless of wall-clock load), so the
#: message sequence itself is reproducible.
DEFAULT_DELTA_INTERVAL = 0.5

#: Default logical shard count.  Fixed — deliberately *not* derived from
#: the process count — so ``--processes 1`` and ``--processes 4`` run
#: the identical shard decomposition and merge to identical bytes.  Also
#: the load-balancing granularity: 8 shards over 4 workers lets a fast
#: worker pick up a second shard while a slow one finishes its first.
DEFAULT_LOGICAL_SHARDS = 8

#: Default wall-clock seconds between cadence checkpoints (journal
#: progress deltas + atomic ``state.json`` rewrite).
DEFAULT_CHECKPOINT_INTERVAL = 5.0

#: Rows per pipe message.  Large enough to amortise pickling, small
#: enough that the parent's merge (and status line) stays live.
_ROW_BATCH = 256


@dataclass(frozen=True)
class _ShardTask:
    """One hermetic unit of work: a contiguous slice of one shard.

    ``start``/``stop`` index into the shard's own name list (after the
    ``i % shards`` partition).  A whole-shard task (``segments == 1``)
    derives the exact RNG streams the pre-quantum executor used, so the
    default decomposition's bytes are unchanged; segment tasks fold the
    slice start into the derivation so every segment is an independent,
    reproducible sub-scan.
    """

    shard: int
    segment: int
    start: int
    stop: int
    segments: int

    @property
    def key(self) -> tuple[int, int]:
        return (self.shard, self.segment)

    def seed_streams(self) -> tuple:
        if self.segments == 1:
            return (self.shard,)
        return (self.shard, "seg", self.start)


def _plan_tasks(shard_sizes: list[int], quantum: int | None) -> list[_ShardTask]:
    """The canonical task list: shards in order, segments in order."""
    tasks = []
    for shard_index, size in enumerate(shard_sizes):
        if quantum is None or quantum >= size or size == 0:
            tasks.append(_ShardTask(shard_index, 0, 0, size, 1))
            continue
        starts = list(range(0, size, quantum))
        for segment, start in enumerate(starts):
            tasks.append(
                _ShardTask(
                    shard_index, segment, start, min(start + quantum, size), len(starts)
                )
            )
    return tasks


@dataclass
class _ShardSpec:
    """Everything a worker needs to run tasks (picklable)."""

    names: list[str]
    shards: int
    config: ScanConfig
    wire_mode: str = "always"
    wire_sample: int = 16
    collect_metrics: bool = False
    fault_plan: str | None = None
    chaos_seed: int | None = None
    add_timestamp: bool = True
    #: Stream resolution spans back task-tagged (lifts the old
    #: ``--spans-file × --processes`` restriction).
    collect_spans: bool = False
    #: Virtual seconds between telemetry deltas; None = no streaming.
    delta_interval: float | None = None


class _PipeSink:
    """Worker-side sink: encodes rows and ships them in batches.

    Encoding happens in the worker — that is the point of the exercise:
    JSON serialisation parallelises across cores instead of serialising
    in the parent.  Alongside each batch travel the task's cumulative
    progress counters, which the parent sums into the fleet status line.
    """

    def __init__(self, conn, key: tuple[int, int], add_timestamp: bool):
        self._conn = conn
        self._key = key
        self._add_timestamp = add_timestamp
        self._lines: list[str] = []
        self.total = 0
        self.successes = 0
        self.timeouts = 0

    def __call__(self, row: dict) -> None:
        status = row.get("status")
        self.total += 1
        if status in ("NOERROR", "NXDOMAIN"):
            self.successes += 1
        elif status == "TIMEOUT":
            self.timeouts += 1
        self._lines.append(encode_row(row, self._add_timestamp))
        if len(self._lines) >= _ROW_BATCH:
            self.flush()

    def flush(self) -> None:
        if self._lines:
            self._conn.send(
                ("rows", self._key, self._lines,
                 (self.total, self.successes, self.timeouts))
            )
            self._lines = []


class _SpanPipeSink:
    """Worker-side span sink: shard-tags each span row and ships batches.

    Spans ride the same pipe as output rows but under their own message
    kind, so the parent can merge them into the spans file with the same
    task-ordered buffering — a merged multi-process spans file is the
    concatenation of the per-shard spans files, shard 0 first.
    """

    def __init__(self, conn, key: tuple[int, int]):
        self._conn = conn
        self._key = key
        self._lines: list[str] = []
        self.count = 0

    def __call__(self, span_row: dict) -> None:
        span_row["shard"] = self._key[0]
        self._lines.append(encode_row(span_row))
        self.count += 1
        if len(self._lines) >= _ROW_BATCH:
            self.flush()

    def flush(self) -> None:
        if self._lines:
            self._conn.send(("spans", self._key, self._lines))
            self._lines = []


def _run_task(task: _ShardTask, spec: _ShardSpec, conn, kill_on_progress: bool = False) -> None:
    """One hermetic sub-scan: own Internet, own RNG streams, own cache."""
    from ..dnslib import clear_codec_caches
    from ..ecosystem import EcosystemParams, build_internet
    from ..modules import get_module

    # codec memos are process-global: start each task cold so its
    # codec.* metrics depend only on the task's own traffic — the same
    # numbers whether the tasks share one process or get one each
    clear_codec_caches()

    base_seed = spec.config.seed
    streams = task.seed_streams()
    internet = build_internet(
        params=EcosystemParams(seed=base_seed),
        wire_mode=spec.wire_mode,
        wire_sample=spec.wire_sample,
        net_seed=derive_seed(base_seed, "net", *streams),
    )
    if spec.fault_plan is not None:
        from ..faults import FaultInjector, resolve_plan

        chaos_base = spec.chaos_seed if spec.chaos_seed is not None else base_seed
        FaultInjector(
            resolve_plan(spec.fault_plan),
            sim=internet.sim,
            seed=derive_seed(chaos_base, "chaos", *streams),
        ).attach(internet.network)

    config = replace(
        spec.config,
        seed=derive_seed(base_seed, "scan", *streams),
        metrics=spec.collect_metrics,
        status_interval=None,  # the parent emits the fleet-wide line
        collect_spans=False,  # spans flow through the pipe sink instead
    )
    sink = _PipeSink(conn, task.key, spec.add_timestamp)
    span_sink = _SpanPipeSink(conn, task.key) if spec.collect_spans else None
    shard_names = list(shard(spec.names, spec.shards, task.shard))
    task_names = shard_names[task.start:task.stop]

    progress = None
    if spec.delta_interval is not None:
        seq = [0]
        target = len(task_names)

        def progress(*, stats, registry, in_flight, now, complete):
            if kill_on_progress:
                # deterministic mid-task crash for the durability suite:
                # die before anything about this emission hits the pipe
                os.kill(os.getpid(), signal.SIGKILL)
            seq[0] += 1
            if complete:
                # flush row/span batches *before* the complete delta, so
                # its cursor never undercounts delivered rows and the
                # delta always reaches the parent ahead of task_done
                sink.flush()
                if span_sink is not None:
                    span_sink.flush()
            delta = TelemetryDelta(
                shard=task.shard,
                segment=task.segment,
                segments=task.segments,
                seq=seq[0],
                done=stats.total,
                successes=stats.successes,
                timeouts=stats.timeouts,
                retries=stats.retries_used,
                queries_sent=stats.queries_sent,
                in_flight=in_flight,
                virtual_now=now,
                cursor=sink.total,
                target=target,
                complete=complete,
                # cumulative mergeable state: the final (complete) delta
                # is exactly a task checkpoint
                stats=stats.to_state(),
                metrics=registry.dump() if registry.enabled else [],
            )
            conn.send(("delta", task.key, delta.to_payload()))

    report = ScanRunner(
        internet,
        config,
        module=get_module(config.module),
        sink=sink,
        span_sink=span_sink,
        progress=progress,
        progress_interval=spec.delta_interval,
        target=len(task_names),
    ).run(task_names)
    sink.flush()
    if span_sink is not None:
        span_sink.flush()
    registry = report.registry
    conn.send(
        (
            "task_done",
            task.key,
            {
                "stats": report.stats.to_state(),
                "metrics": registry.dump() if registry is not None and registry.enabled else [],
                "cache": report.cache_stats,
                "cpu_utilisation": report.cpu_utilisation,
            },
        )
    )


def _worker_crash_spec(worker_index: int) -> tuple[str, int] | None:
    """Parse ``REPRO_TEST_CRASH`` for this worker, if it targets it."""
    spec = os.environ.get("REPRO_TEST_CRASH", "")
    parts = spec.split(":")
    if len(parts) == 4 and parts[0] == "worker":
        try:
            if int(parts[1]) == worker_index and parts[2] in ("after", "during"):
                return parts[2], int(parts[3])
        except ValueError:
            return None
    return None


def _parent_crash_after() -> int | None:
    """Parse ``REPRO_TEST_CRASH=parent:after:N`` in the parent."""
    spec = os.environ.get("REPRO_TEST_CRASH", "")
    parts = spec.split(":")
    if len(parts) == 3 and parts[0] == "parent" and parts[1] == "after":
        try:
            return int(parts[2])
        except ValueError:
            return None
    return None


def _worker_delay(worker_index: int) -> float:
    """Parse ``REPRO_TEST_TASK_DELAY=W:SECONDS`` (steal-forcing hook)."""
    spec = os.environ.get("REPRO_TEST_TASK_DELAY", "")
    parts = spec.split(":")
    if len(parts) == 2:
        try:
            if int(parts[0]) == worker_index:
                return float(parts[1])
        except ValueError:
            return 0.0
    return 0.0


def _worker_main(worker_index: int, spec: _ShardSpec, conn, inherited=()) -> None:
    """Worker process entry point: pull tasks until the parent says stop.

    The worker is stateless between tasks — each task builds its own
    simulated Internet — which is what makes dynamic dispatch and
    stealing free of correctness consequences.

    ``inherited`` holds parent-side pipe ends this fork inherited (its
    own, plus earlier workers').  They MUST be closed here: a leaked
    parent end keeps a sibling's pipe open after the parent dies, so no
    worker would ever see EOF and orphans would hang forever — exactly
    the failure mode the durability suite's parent-kill tests exercise.
    """
    for extra in inherited:
        extra.close()
    crash = _worker_crash_spec(worker_index)
    delay = _worker_delay(worker_index)
    completed = 0
    try:
        while True:
            conn.send(("ready", worker_index, None))
            directive = conn.recv()
            if not directive or directive[0] != "task":
                break
            task = directive[1]
            if delay:
                time.sleep(delay)
            kill_during = crash == ("during", completed + 1)
            _run_task(task, spec, conn, kill_on_progress=kill_during)
            completed += 1
            if crash == ("after", completed):
                os.kill(os.getpid(), signal.SIGKILL)
    except EOFError:  # parent went away: nothing left to report to
        pass
    except BaseException:
        try:
            conn.send(("error", worker_index, traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
    else:
        try:
            conn.send(("done", worker_index, None))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


@dataclass
class ParallelReport:
    """Fleet-wide outcome of a multi-process scan.

    Duck-compatible with :class:`repro.framework.runner.ScanReport`
    where the CLI needs it (``stats``, ``registry``, ``metrics``,
    ``cache_stats``, ``cpu_utilisation``, ``profile``) plus the
    executor's own shape: per-shard summaries, the process/shard/task
    topology, and the durability outcome (steals, resumed tasks).
    """

    stats: ScanStats
    registry: MetricsRegistry | None = None
    metrics: dict = field(default_factory=dict)
    cache_stats: dict | None = None
    #: Mean across tasks — each task models its own core pool.
    cpu_utilisation: float = 0.0
    shard_summaries: list[dict] = field(default_factory=list)
    processes: int = 0
    shards: int = 0
    #: Total tasks in the decomposition (== shards unless steal_quantum
    #: segmented some shards).
    tasks: int = 0
    rows_written: int = 0
    #: Shard-tagged span rows merged into the spans file.
    spans_written: int = 0
    #: Tasks handed to a worker other than their shard's owner.
    steals: int = 0
    steal_events: list[dict] = field(default_factory=list)
    #: Tasks replayed from a checkpoint journal instead of re-run.
    resumed_tasks: int = 0
    checkpoint_dir: str | None = None
    #: The mp executor never profiles (cProfile per worker would need
    #: per-process files); present for ScanReport duck-compatibility.
    profile: dict | None = None

    def summary(self) -> dict:
        """The CLI's stderr summary, same shape as a single-process run
        plus an ``mp`` topology block.

        Deliberately silent about steals and resume: the summary (like
        the rows, stats, and metrics) must be byte-identical whether the
        scan ran straight through, was stolen from, or was resumed.
        """
        summary = self.stats.to_json()
        summary["cache"] = self.cache_stats
        summary["cpu_utilisation"] = round(self.cpu_utilisation, 3)
        summary["mp"] = {"processes": self.processes, "shards": self.shards}
        return summary


def _mp_context():
    """Prefer ``fork`` (copy-on-write corpus, no re-import); fall back
    to the platform default (``spawn`` on macOS/Windows — the spec is
    picklable, so it works, just slower to start)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _relabel_for(shard_index: int):
    """Metric renamer: per-shard labels for the scopes where summing
    would destroy the signal (which server slice was faulted / unhealthy
    in *this* shard's chaos stream, whether *this* shard's codec memo
    gates stayed on), fleet sums for everything else."""

    def relabel(name: str) -> str:
        for scope in ("faults.", "health.", "codec."):
            if name.startswith(scope):
                return f"{scope}shard{shard_index}.{name[len(scope):]}"
        return name

    return relabel


def run_parallel_scan(
    names: Iterable[str],
    config: ScanConfig,
    *,
    processes: int,
    out: TextIO,
    shards: int | None = None,
    wire_mode: str = "always",
    wire_sample: int = 16,
    collect_metrics: bool = False,
    status_interval: float | None = None,
    status_stream: TextIO | None = None,
    fault_plan: str | None = None,
    chaos_seed: int | None = None,
    add_timestamp: bool = True,
    collect_spans: bool = False,
    span_out: TextIO | None = None,
    fleet_view: FleetView | None = None,
    delta_interval: float | None = None,
    steal_quantum: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_interval: float | None = None,
    checkpoint_fsync: str = "always",
    resume: bool = False,
) -> ParallelReport:
    """Run one scan across ``processes`` OS processes.

    ``names`` is materialised once and decomposed into ``shards``
    logical shards (default :data:`DEFAULT_LOGICAL_SHARDS`), each
    optionally pre-segmented every ``steal_quantum`` names into
    independent tasks.  Workers pull tasks dynamically — owners first,
    then stealing from stragglers — and merged rows are written to
    ``out`` in canonical task order (see the module docstring for why
    that order is the normal form).  ``collect_spans`` streams
    task-tagged resolution spans to ``span_out`` with the same ordered
    merge.  ``fleet_view`` (when given) receives streamed telemetry
    deltas — hang the HTTP control plane off it; the fleet status line
    reads the same view.

    ``checkpoint_dir`` journals every completed task (and periodic
    progress, every ``checkpoint_interval`` wall seconds, fsync per
    ``checkpoint_fsync``); ``resume=True`` loads that journal, replays
    durable tasks byte-for-byte and re-runs only the rest.

    Determinism contract: for a fixed ``(config.seed, shards,
    steal_quantum)`` the merged output bytes, merged stats, and merged
    metrics are identical for *any* process count, steal schedule, or
    interrupt/resume history — those are purely wall-clock knobs.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    shards = DEFAULT_LOGICAL_SHARDS if shards is None else shards
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if steal_quantum is not None and steal_quantum < 1:
        raise ValueError("steal_quantum must be >= 1")
    if resume and checkpoint_dir is None:
        raise ValueError("resume requires a checkpoint_dir")
    names = list(names)
    total_names = len(names)
    shard_sizes = [len(range(k, total_names, shards)) for k in range(shards)]
    tasks = _plan_tasks(shard_sizes, steal_quantum)
    order = [task.key for task in tasks]
    #: topology clamp — also what the mp.processes gauge and the summary
    #: report, *independent* of how many workers a resume actually forks
    #: (a resumed run must publish the same metrics as an uninterrupted
    #: one)
    processes = min(processes, len(tasks))

    # ---- durability: journal / resume -------------------------------------
    writer = None
    journal = None
    restored: dict[tuple[int, int], dict] = {}
    if checkpoint_dir is not None:
        fingerprint = config_fingerprint(
            config=config,
            shards=shards,
            steal_quantum=steal_quantum,
            wire_mode=wire_mode,
            wire_sample=wire_sample,
            collect_metrics=collect_metrics,
            fault_plan=fault_plan,
            chaos_seed=chaos_seed,
            add_timestamp=add_timestamp,
            collect_spans=collect_spans and span_out is not None,
            names_digest=names_digest(names),
        )
        plan = {
            "shards": shards,
            "quantum": steal_quantum,
            "names": total_names,
            "tasks": [[t.shard, t.segment, t.start, t.stop] for t in tasks],
        }
        if resume:
            journal = CheckpointJournal.load(checkpoint_dir)
            journal.validate(fingerprint=fingerprint, plan=plan)
            restored = journal.tasks
        writer = CheckpointWriter(
            checkpoint_dir,
            fingerprint=fingerprint,
            plan=plan,
            fsync=checkpoint_fsync,
            resume=resume,
        )
    if checkpoint_interval is None:
        checkpoint_interval = DEFAULT_CHECKPOINT_INTERVAL

    # deltas power the fleet view, the parent status line, and the
    # cadence checkpoints; when no consumer exists the workers skip
    # streaming entirely
    if delta_interval is None and (
        fleet_view is not None or status_interval is not None or writer is not None
    ):
        delta_interval = DEFAULT_DELTA_INTERVAL

    fleet = fleet_view if fleet_view is not None else FleetView()
    fleet.shards = shards
    fleet.target = total_names
    owner = {s: s % processes for s in range(shards)}
    fleet.set_plan(
        {
            s: {
                "segments": sum(1 for t in tasks if t.shard == s),
                "target": shard_sizes[s],
                "owner": owner[s],
            }
            for s in range(shards)
        }
    )
    if resume:
        fleet.run_info["resumed_from"] = os.fspath(checkpoint_dir)
        fleet.run_info["resumed_tasks"] = len(restored)
        # replay the durable tasks' final deltas so the view (and the
        # status line's done counter) starts where the journal left off
        for key in sorted(restored):
            payload = restored[key].get("delta")
            if payload:
                delta = TelemetryDelta.from_payload(payload)
                delta.resumed = True
                delta.owner = owner.get(delta.shard)
                delta.worker = None
                delta.stolen_from = None
                fleet.update(delta)

    spec = _ShardSpec(
        names=names,
        shards=shards,
        config=config,
        wire_mode=wire_mode,
        wire_sample=wire_sample,
        collect_metrics=collect_metrics,
        fault_plan=fault_plan,
        chaos_seed=chaos_seed,
        add_timestamp=add_timestamp,
        collect_spans=collect_spans and span_out is not None,
        delta_interval=delta_interval,
    )

    pending: dict[int, deque[_ShardTask]] = {
        s: deque(t for t in tasks if t.shard == s and t.key not in restored)
        for s in range(shards)
    }
    live_tasks = sum(len(queue) for queue in pending.values())
    spawn = min(processes, live_tasks)

    ctx = _mp_context()
    workers, connections = [], []
    for index in range(spawn):
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            # every parent-side end alive at this fork rides along so the
            # child can close its inherited copies (see _worker_main)
            args=(index, spec, child_conn, tuple(connections) + (parent_conn,)),
            daemon=True,
        )
        process.start()
        child_conn.close()  # each end belongs to exactly one side
        workers.append(process)
        connections.append(parent_conn)

    buffers: dict[tuple[int, int], list[str]] = {}
    span_buffers: dict[tuple[int, int], list[str]] = {}
    payloads: dict[tuple[int, int], dict] = {
        key: record["payload"] for key, record in restored.items()
    }
    done_keys: set[tuple[int, int]] = set(restored)
    latest_delta: dict[tuple[int, int], dict] = {}
    assignments: dict[tuple[int, int], tuple[int, int | None]] = {}
    steal_events: list[dict] = []
    errors: list[tuple[int, str]] = []
    flush_index = 0
    rows_written = 0
    spans_written = 0
    started = time.monotonic()
    last_status_total = 0
    next_status = started + status_interval if status_interval else None
    next_checkpoint = started + checkpoint_interval if writer is not None else None
    crash_after = _parent_crash_after() if writer is not None else None
    session_records = 0
    stream = status_stream if status_stream is not None else sys.stderr

    def advance() -> None:
        """Flush every consecutively finished task in canonical order,
        then let the new head task's buffer catch up so its subsequent
        batches stream directly."""
        nonlocal flush_index, rows_written, spans_written
        while flush_index < len(order) and order[flush_index] in done_keys:
            key = order[flush_index]
            if key in restored:
                lines = journal.rows_for(key)
                rows_written += len(lines)
                out.writelines(lines)
                if span_out is not None:
                    span_lines = journal.spans_for(key)
                    spans_written += len(span_lines)
                    span_out.writelines(span_lines)
            else:
                out.writelines(buffers.pop(key, []))
                if span_out is not None:
                    span_out.writelines(span_buffers.pop(key, []))
            flush_index += 1
        if flush_index < len(order):
            head = order[flush_index]
            if head in buffers:
                out.writelines(buffers.pop(head))
                buffers[head] = []
            if span_out is not None and head in span_buffers:
                span_out.writelines(span_buffers.pop(head))
                span_buffers[head] = []

    def next_task(worker: int) -> tuple[_ShardTask | None, int | None]:
        """Dispatch: lowest pending segment of an owned shard, else
        steal the *tail* segment of the shard with the most pending work
        (the straggler keeps its head, the thief takes the far end — a
        deterministic cursor boundary, because segments are pre-cut)."""
        for shard_index in range(shards):
            if owner[shard_index] == worker and pending[shard_index]:
                return pending[shard_index].popleft(), None
        victims = [s for s in range(shards) if pending[s]]
        if not victims:
            return None, None
        victim = max(victims, key=lambda s: (len(pending[s]), s))
        return pending[victim].pop(), owner[victim]

    def emit_status() -> None:
        nonlocal last_status_total
        elapsed = time.monotonic() - started
        counters = fleet.fleet_counters()
        total = counters["done"]
        average_rate = total / elapsed if elapsed > 0 else 0.0
        print(
            format_status_line(
                elapsed=elapsed,
                total=total,
                interval_rate=(total - last_status_total) / status_interval,
                average_rate=average_rate,
                success_rate=counters["successes"] / total if total else 0.0,
                in_flight=counters["in_flight"],
                timeouts=counters["timeouts"],
                retries=counters["retries"],
                cache_hit_rate=None,
                target=total_names,
                eta=estimate_eta(total, total_names, average_rate),
            ),
            file=stream,
        )
        last_status_total = total

    advance()  # restored prefix replays immediately; output streams from it
    try:
        live = set(connections)
        while live:
            timeout = None
            now = time.monotonic()
            for deadline in (next_status, next_checkpoint):
                if deadline is not None:
                    remaining = max(0.0, deadline - now)
                    timeout = remaining if timeout is None else min(timeout, remaining)
            for conn in _connection_wait(list(live), timeout):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # a SIGKILLed worker closes mid-protocol: drop it;
                    # its unfinished assignment surfaces at the end
                    live.discard(conn)
                    continue
                kind = message[0]
                if kind == "ready":
                    _, worker_index, _ = message
                    task, stolen_from = next_task(worker_index)
                    if task is None:
                        conn.send(("stop", None))
                    else:
                        if stolen_from == worker_index:
                            stolen_from = None
                        assignments[task.key] = (worker_index, stolen_from)
                        if stolen_from is not None:
                            steal_events.append(
                                {
                                    "shard": task.shard,
                                    "segment": task.segment,
                                    "start": task.start,
                                    "stop": task.stop,
                                    "from": stolen_from,
                                    "to": worker_index,
                                }
                            )
                        conn.send(("task", task))
                elif kind == "rows":
                    _, key, lines, _counters = message
                    rows_written += len(lines)
                    if writer is not None:
                        writer.spool_rows(key, lines)
                    if flush_index < len(order) and key == order[flush_index]:
                        out.writelines(lines)
                    else:
                        buffers.setdefault(key, []).extend(lines)
                elif kind == "spans":
                    _, key, lines = message
                    spans_written += len(lines)
                    if writer is not None:
                        writer.spool_spans(key, lines)
                    if span_out is not None:
                        if flush_index < len(order) and key == order[flush_index]:
                            span_out.writelines(lines)
                        else:
                            span_buffers.setdefault(key, []).extend(lines)
                elif kind == "delta":
                    _, key, payload = message
                    delta = TelemetryDelta.from_payload(payload)
                    worker_index, stolen_from = assignments.get(key, (None, None))
                    delta.worker = worker_index
                    delta.owner = owner.get(delta.shard)
                    delta.stolen_from = stolen_from
                    fleet.update(delta)
                    annotated = delta.to_payload()
                    latest_delta[key] = annotated
                    if writer is not None:
                        writer.note_delta(key, annotated)
                elif kind == "task_done":
                    _, key, payload = message
                    payloads[key] = payload
                    done_keys.add(key)
                    if writer is not None:
                        writer.task_done(key, payload)
                        session_records += 1
                        if crash_after is not None and session_records == crash_after:
                            os.kill(os.getpid(), signal.SIGKILL)
                    advance()
                elif kind == "done":
                    live.discard(conn)
                elif kind == "error":
                    _, worker_index, formatted = message
                    errors.append((worker_index, formatted))
                    live.discard(conn)
            now = time.monotonic()
            if next_status is not None and now >= next_status:
                emit_status()
                next_status += status_interval
            if next_checkpoint is not None and now >= next_checkpoint:
                writer.checkpoint(counters=fleet.fleet_counters())
                next_checkpoint += checkpoint_interval
        for process in workers:
            process.join()
    finally:
        for process in workers:
            if process.is_alive():  # pragma: no cover - error unwind only
                process.terminate()
                process.join()
        if writer is not None:
            writer.finalize(
                complete=len(done_keys) == len(order),
                counters=fleet.fleet_counters(),
            )

    if errors:
        details = "\n\n".join(
            f"[worker {index}]\n{formatted}" for index, formatted in errors
        )
        raise RuntimeError(f"parallel scan worker(s) crashed:\n{details}")
    if len(done_keys) != len(order):
        missing = [key for key in order if key not in done_keys]
        hint = (
            f" (checkpoint journal at {checkpoint_dir} — resume to continue)"
            if checkpoint_dir is not None
            else ""
        )
        raise RuntimeError(
            f"workers exited without finishing tasks {missing}{hint}"
        )
    advance()
    fleet.finish()

    # ---- fold the fleet together ------------------------------------------
    # canonical task order everywhere: a resumed run folds journal
    # payloads and live payloads through the identical sequence, so the
    # merged stats/metrics are byte-identical to an uninterrupted run's
    merged_stats = ScanStats()
    registry = MetricsRegistry(enabled=collect_metrics)
    cache_totals: dict[str, int] = {}
    cache_seen = False
    utilisations = []
    per_shard_stats: dict[int, ScanStats] = {}
    for task in tasks:
        payload = payloads[task.key]
        task_stats = ScanStats.from_state(payload["stats"])
        merged_stats.merge(task_stats)
        per_shard_stats.setdefault(task.shard, ScanStats()).merge(task_stats)
        registry.merge_dump(payload["metrics"], rename=_relabel_for(task.shard))
        utilisations.append(payload["cpu_utilisation"])
        if payload["cache"] is not None:
            cache_seen = True
            for cache_key, value in payload["cache"].items():
                if cache_key != "hit_rate":
                    cache_totals[cache_key] = cache_totals.get(cache_key, 0) + value
    shard_summaries = [
        {
            "shard": shard_index,
            "total": shard_stats.total,
            "successes": shard_stats.successes,
            "duration_s": round(shard_stats.duration, 3),
            "queries_sent": shard_stats.queries_sent,
        }
        for shard_index, shard_stats in sorted(per_shard_stats.items())
    ]
    cache_stats = None
    if cache_seen:
        probes = cache_totals.get("hits", 0) + cache_totals.get("misses", 0)
        cache_stats = dict(cache_totals)
        cache_stats["hit_rate"] = round(
            cache_totals.get("hits", 0) / probes if probes else 0.0, 4
        )
    cpu_utilisation = sum(utilisations) / len(utilisations) if utilisations else 0.0
    if registry.enabled:
        mp_scope = registry.scope("mp")
        mp_scope.gauge("processes").set(processes)
        mp_scope.gauge("shards").set(shards)
        mp_scope.gauge("rows_merged").set(rows_written)

    return ParallelReport(
        stats=merged_stats,
        registry=registry,
        metrics=registry.snapshot(),
        cache_stats=cache_stats,
        cpu_utilisation=cpu_utilisation,
        shard_summaries=shard_summaries,
        processes=processes,
        shards=shards,
        tasks=len(tasks),
        rows_written=rows_written,
        spans_written=spans_written,
        steals=len(steal_events),
        steal_events=steal_events,
        resumed_tasks=len(restored),
        checkpoint_dir=checkpoint_dir,
    )
