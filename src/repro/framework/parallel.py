"""Multi-process shard executor: true multi-core scans.

The paper's headline result is ZDNS saturating a 24-core server with
tens of thousands of goroutines.  A single CPython interpreter cannot —
the GIL serialises the simulator's pure-Python hot loop — so this module
supplies the missing layer: ``--processes N`` forks N workers, each
running a disjoint *logical shard* of the corpus through its own
``SimNetwork``/engine, and the parent merges the per-shard JSONL streams
and telemetry into one fleet-wide result.

Design invariants, in order:

1. **Shard decomposition is independent of process count.**  The corpus
   is split into ``shards`` logical shards (``i % shards``, exactly as
   ZMap-style ``--shards/--shard`` manual sharding does); processes only
   decide *where* each shard runs.  Every shard is hermetic — its own
   simulated Internet (same ecosystem seed, so the same universe), its
   own network/driver/cache RNG streams derived via
   :func:`repro.net.derive_seed` — so a run with 1 process and a run
   with 8 produce byte-identical merged output for the same
   ``(seed, shards)``.
2. **Merged output is order-normalized.**  Rows are emitted grouped by
   shard index, each shard in its deterministic completion order: shard
   0 streams live while later shards buffer, and each shard's stream is
   flushed the moment every earlier shard has finished.  The merged file
   equals the concatenation of the per-shard files a manual
   ``--shards S --shard k`` fleet would have produced.
3. **Telemetry merges, not samples.**  ``ScanStats`` fold together
   (status counts, completion times, retries), metrics registries merge
   (counter/gauge sums, histogram bucket adds), and fault-injection /
   server-health scopes are relabelled per shard
   (``faults.* -> faults.shardK.*``) so a post-mortem can still tell
   which slice of the fleet saw the trouble.

Workers stream row batches over pipes as they complete, so the parent
overlaps merging with scanning; a final per-shard payload carries the
mergeable stats/metrics state.  Between batches, workers also stream
:class:`~repro.framework.telemetry.TelemetryDelta` snapshots (periodic
on each shard's virtual clock) that the parent folds into a live
:class:`~repro.framework.telemetry.FleetView` — the fleet status line
and the HTTP control plane read the view; the authoritative end-of-scan
merge still comes only from the final ``shard_done`` payloads, so the
live path can never perturb the determinism contract.  Span rows
(``--spans-file``) travel shard-tagged over the same pipes and are
merged with the same shard-ordered buffering as output rows.  ``fork``
is preferred (the corpus is inherited copy-on-write); the spec is
picklable, so ``spawn`` platforms work too, just with a higher start-up
cost.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from typing import Iterable, TextIO

from ..net import derive_seed
from ..obs import MetricsRegistry, format_status_line
from ..obs.status import estimate_eta
from .io import encode_row, shard
from .runner import ScanConfig, ScanRunner
from .stats import ScanStats
from .telemetry import FleetView, TelemetryDelta

__all__ = [
    "DEFAULT_LOGICAL_SHARDS",
    "ParallelReport",
    "run_parallel_scan",
]

#: Default interval, in *virtual* seconds on each shard's clock, between
#: streamed telemetry deltas.  Deterministic for a fixed corpus (virtual
#: timers fire at the same points regardless of wall-clock load), so the
#: message sequence itself is reproducible.
DEFAULT_DELTA_INTERVAL = 0.5

#: Default logical shard count.  Fixed — deliberately *not* derived from
#: the process count — so ``--processes 1`` and ``--processes 4`` run
#: the identical shard decomposition and merge to identical bytes.  Also
#: the load-balancing granularity: 8 shards over 4 workers lets a fast
#: worker pick up a second shard while a slow one finishes its first.
DEFAULT_LOGICAL_SHARDS = 8

#: Rows per pipe message.  Large enough to amortise pickling, small
#: enough that the parent's merge (and status line) stays live.
_ROW_BATCH = 256


@dataclass
class _ShardSpec:
    """Everything a worker needs to run its shards (picklable)."""

    names: list[str]
    shards: int
    config: ScanConfig
    wire_mode: str = "always"
    wire_sample: int = 16
    collect_metrics: bool = False
    fault_plan: str | None = None
    chaos_seed: int | None = None
    add_timestamp: bool = True
    #: Stream resolution spans back shard-tagged (lifts the old
    #: ``--spans-file × --processes`` restriction).
    collect_spans: bool = False
    #: Virtual seconds between telemetry deltas; None = no streaming.
    delta_interval: float | None = None


class _PipeSink:
    """Worker-side sink: encodes rows and ships them in batches.

    Encoding happens in the worker — that is the point of the exercise:
    JSON serialisation parallelises across cores instead of serialising
    in the parent.  Alongside each batch travel the shard's cumulative
    progress counters, which the parent sums into the fleet status line.
    """

    def __init__(self, conn, shard_index: int, add_timestamp: bool):
        self._conn = conn
        self._shard = shard_index
        self._add_timestamp = add_timestamp
        self._lines: list[str] = []
        self.total = 0
        self.successes = 0
        self.timeouts = 0

    def __call__(self, row: dict) -> None:
        status = row.get("status")
        self.total += 1
        if status in ("NOERROR", "NXDOMAIN"):
            self.successes += 1
        elif status == "TIMEOUT":
            self.timeouts += 1
        self._lines.append(encode_row(row, self._add_timestamp))
        if len(self._lines) >= _ROW_BATCH:
            self.flush()

    def flush(self) -> None:
        if self._lines:
            self._conn.send(
                ("rows", self._shard, self._lines,
                 (self.total, self.successes, self.timeouts))
            )
            self._lines = []


class _SpanPipeSink:
    """Worker-side span sink: shard-tags each span row and ships batches.

    Spans ride the same pipe as output rows but under their own message
    kind, so the parent can merge them into the spans file with the same
    shard-ordered buffering — a merged multi-process spans file is the
    concatenation of the per-shard spans files, shard 0 first.
    """

    def __init__(self, conn, shard_index: int):
        self._conn = conn
        self._shard = shard_index
        self._lines: list[str] = []
        self.count = 0

    def __call__(self, span_row: dict) -> None:
        span_row["shard"] = self._shard
        self._lines.append(encode_row(span_row))
        self.count += 1
        if len(self._lines) >= _ROW_BATCH:
            self.flush()

    def flush(self) -> None:
        if self._lines:
            self._conn.send(("spans", self._shard, self._lines))
            self._lines = []


def _run_shard(shard_index: int, spec: _ShardSpec, conn) -> None:
    """One hermetic sub-scan: own Internet, own RNG streams, own cache."""
    from ..dnslib import clear_codec_caches
    from ..ecosystem import EcosystemParams, build_internet
    from ..modules import get_module

    # codec memos are process-global: start each shard cold so its
    # codec.* metrics depend only on the shard's own traffic — the same
    # numbers whether 8 shards share one process or get one each
    clear_codec_caches()

    base_seed = spec.config.seed
    internet = build_internet(
        params=EcosystemParams(seed=base_seed),
        wire_mode=spec.wire_mode,
        wire_sample=spec.wire_sample,
        net_seed=derive_seed(base_seed, "net", shard_index),
    )
    if spec.fault_plan is not None:
        from ..faults import FaultInjector, resolve_plan

        chaos_base = spec.chaos_seed if spec.chaos_seed is not None else base_seed
        FaultInjector(
            resolve_plan(spec.fault_plan),
            sim=internet.sim,
            seed=derive_seed(chaos_base, "chaos", shard_index),
        ).attach(internet.network)

    config = replace(
        spec.config,
        seed=derive_seed(base_seed, "scan", shard_index),
        metrics=spec.collect_metrics,
        status_interval=None,  # the parent emits the fleet-wide line
        collect_spans=False,  # spans flow through the pipe sink instead
    )
    sink = _PipeSink(conn, shard_index, spec.add_timestamp)
    span_sink = _SpanPipeSink(conn, shard_index) if spec.collect_spans else None
    shard_names = list(shard(spec.names, spec.shards, shard_index))

    progress = None
    if spec.delta_interval is not None:
        seq = [0]
        target = len(shard_names)

        def progress(*, stats, registry, in_flight, now, complete):
            seq[0] += 1
            timeouts = sum(
                stats.by_status.get(s, 0) for s in ("TIMEOUT", "ITERATIVE_TIMEOUT")
            )
            delta = TelemetryDelta(
                shard=shard_index,
                seq=seq[0],
                done=stats.total,
                successes=stats.successes,
                timeouts=timeouts,
                retries=stats.retries_used,
                queries_sent=stats.queries_sent,
                in_flight=in_flight,
                virtual_now=now,
                cursor=sink.total,
                target=target,
                complete=complete,
                # cumulative mergeable state: the final (complete) delta
                # is exactly a shard checkpoint
                stats=stats.to_state(),
                metrics=registry.dump() if registry.enabled else [],
            )
            conn.send(("delta", shard_index, delta.to_payload()))

    report = ScanRunner(
        internet,
        config,
        module=get_module(config.module),
        sink=sink,
        span_sink=span_sink,
        progress=progress,
        progress_interval=spec.delta_interval,
        target=len(shard_names),
    ).run(shard_names)
    sink.flush()
    if span_sink is not None:
        span_sink.flush()
    registry = report.registry
    conn.send(
        (
            "shard_done",
            shard_index,
            {
                "stats": report.stats.to_state(),
                "metrics": registry.dump() if registry is not None and registry.enabled else [],
                "cache": report.cache_stats,
                "cpu_utilisation": report.cpu_utilisation,
            },
        )
    )


def _worker_main(worker_index: int, shard_indices: list[int], spec: _ShardSpec, conn) -> None:
    """Worker process entry point: run assigned shards, lowest first."""
    try:
        for shard_index in shard_indices:
            _run_shard(shard_index, spec, conn)
    except BaseException:
        conn.send(("error", worker_index, traceback.format_exc()))
    else:
        conn.send(("done", worker_index, None))
    finally:
        conn.close()


@dataclass
class ParallelReport:
    """Fleet-wide outcome of a multi-process scan.

    Duck-compatible with :class:`repro.framework.runner.ScanReport`
    where the CLI needs it (``stats``, ``registry``, ``metrics``,
    ``cache_stats``, ``cpu_utilisation``, ``profile``) plus the
    executor's own shape: per-shard summaries and the process/shard
    topology.
    """

    stats: ScanStats
    registry: MetricsRegistry | None = None
    metrics: dict = field(default_factory=dict)
    cache_stats: dict | None = None
    #: Mean across shards — each shard models its own core pool.
    cpu_utilisation: float = 0.0
    shard_summaries: list[dict] = field(default_factory=list)
    processes: int = 0
    shards: int = 0
    rows_written: int = 0
    #: Shard-tagged span rows merged into the spans file.
    spans_written: int = 0
    #: The mp executor never profiles (cProfile per worker would need
    #: per-process files); present for ScanReport duck-compatibility.
    profile: dict | None = None

    def summary(self) -> dict:
        """The CLI's stderr summary, same shape as a single-process run
        plus an ``mp`` topology block."""
        summary = self.stats.to_json()
        summary["cache"] = self.cache_stats
        summary["cpu_utilisation"] = round(self.cpu_utilisation, 3)
        summary["mp"] = {"processes": self.processes, "shards": self.shards}
        return summary


def _mp_context():
    """Prefer ``fork`` (copy-on-write corpus, no re-import); fall back
    to the platform default (``spawn`` on macOS/Windows — the spec is
    picklable, so it works, just slower to start)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _relabel_for(shard_index: int):
    """Metric renamer: per-shard labels for the scopes where summing
    would destroy the signal (which server slice was faulted / unhealthy
    in *this* shard's chaos stream, whether *this* shard's codec memo
    gates stayed on), fleet sums for everything else."""

    def relabel(name: str) -> str:
        for scope in ("faults.", "health.", "codec."):
            if name.startswith(scope):
                return f"{scope}shard{shard_index}.{name[len(scope):]}"
        return name

    return relabel


def run_parallel_scan(
    names: Iterable[str],
    config: ScanConfig,
    *,
    processes: int,
    out: TextIO,
    shards: int | None = None,
    wire_mode: str = "always",
    wire_sample: int = 16,
    collect_metrics: bool = False,
    status_interval: float | None = None,
    status_stream: TextIO | None = None,
    fault_plan: str | None = None,
    chaos_seed: int | None = None,
    add_timestamp: bool = True,
    collect_spans: bool = False,
    span_out: TextIO | None = None,
    fleet_view: FleetView | None = None,
    delta_interval: float | None = None,
) -> ParallelReport:
    """Run one scan across ``processes`` OS processes.

    ``names`` is materialised once; ``shards`` logical shards (default
    :data:`DEFAULT_LOGICAL_SHARDS`) are distributed round-robin over the
    workers, so shard 0 starts immediately and the merged output can
    stream.  Merged rows are written to ``out`` grouped by shard index
    (see the module docstring for why that order is the normal form).
    ``collect_spans`` streams shard-tagged resolution spans to
    ``span_out`` with the same shard-ordered merge.  ``fleet_view``
    (when given) receives streamed telemetry deltas — hang the HTTP
    control plane off it; the fleet status line reads the same view.

    Determinism contract: for a fixed ``(config.seed, shards)`` the
    merged output bytes, merged stats, and merged metrics are identical
    for *any* process count — ``processes`` is purely a wall-clock knob.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    shards = DEFAULT_LOGICAL_SHARDS if shards is None else shards
    if shards < 1:
        raise ValueError("shards must be >= 1")
    names = list(names)
    processes = min(processes, shards)
    # deltas power both the fleet view and the parent status line; when
    # neither consumer exists the workers skip streaming entirely
    if delta_interval is None and (fleet_view is not None or status_interval is not None):
        delta_interval = DEFAULT_DELTA_INTERVAL
    fleet = fleet_view if fleet_view is not None else FleetView()
    fleet.shards = shards
    fleet.target = len(names)
    spec = _ShardSpec(
        names=names,
        shards=shards,
        config=config,
        wire_mode=wire_mode,
        wire_sample=wire_sample,
        collect_metrics=collect_metrics,
        fault_plan=fault_plan,
        chaos_seed=chaos_seed,
        add_timestamp=add_timestamp,
        collect_spans=collect_spans and span_out is not None,
        delta_interval=delta_interval,
    )

    ctx = _mp_context()
    workers, connections = [], []
    for index in range(processes):
        # round-robin: worker w owns shards w, w+P, w+2P, ... — shard 0
        # belongs to the first worker, so the head of the merged stream
        # flushes while the tail is still scanning
        assigned = list(range(index, shards, processes))
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(index, assigned, spec, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent only reads; the child holds the write end
        workers.append(process)
        connections.append(parent_conn)

    buffers: dict[int, list[str]] = {k: [] for k in range(shards)}
    span_buffers: dict[int, list[str]] = {k: [] for k in range(shards)}
    payloads: dict[int, dict] = {}
    done_shards: set[int] = set()
    errors: list[tuple[int, str]] = []
    next_flush = 0
    rows_written = 0
    spans_written = 0
    started = time.monotonic()
    last_status_total = 0
    next_status = started + status_interval if status_interval else None
    stream = status_stream if status_stream is not None else sys.stderr
    target = len(names)

    def emit_status() -> None:
        nonlocal last_status_total
        elapsed = time.monotonic() - started
        counters = fleet.fleet_counters()
        total = counters["done"]
        average_rate = total / elapsed if elapsed > 0 else 0.0
        print(
            format_status_line(
                elapsed=elapsed,
                total=total,
                interval_rate=(total - last_status_total) / status_interval,
                average_rate=average_rate,
                success_rate=counters["successes"] / total if total else 0.0,
                in_flight=counters["in_flight"],
                timeouts=counters["timeouts"],
                retries=counters["retries"],
                cache_hit_rate=None,
                target=target,
                eta=estimate_eta(total, target, average_rate),
            ),
            file=stream,
        )
        last_status_total = total

    try:
        live = set(connections)
        while live:
            timeout = None
            if next_status is not None:
                timeout = max(0.0, next_status - time.monotonic())
            for conn in _connection_wait(list(live), timeout):
                try:
                    message = conn.recv()
                except EOFError:
                    live.discard(conn)
                    continue
                kind = message[0]
                if kind == "rows":
                    _, shard_index, lines, _counters = message
                    rows_written += len(lines)
                    if shard_index == next_flush:
                        out.writelines(lines)
                    else:
                        buffers[shard_index].extend(lines)
                elif kind == "delta":
                    _, shard_index, payload = message
                    fleet.update(TelemetryDelta.from_payload(payload))
                elif kind == "spans":
                    _, shard_index, lines = message
                    spans_written += len(lines)
                    if span_out is not None:
                        if shard_index == next_flush:
                            span_out.writelines(lines)
                        else:
                            span_buffers[shard_index].extend(lines)
                elif kind == "shard_done":
                    _, shard_index, payload = message
                    payloads[shard_index] = payload
                    done_shards.add(shard_index)
                    # advance past every consecutively finished shard,
                    # then let the new head shard's buffer catch up so
                    # its subsequent batches stream directly
                    while next_flush in done_shards:
                        out.writelines(buffers.pop(next_flush, []))
                        if span_out is not None:
                            span_out.writelines(span_buffers.pop(next_flush, []))
                        next_flush += 1
                    if next_flush < shards:
                        if next_flush in buffers:
                            out.writelines(buffers.pop(next_flush))
                            buffers[next_flush] = []
                        if span_out is not None and next_flush in span_buffers:
                            span_out.writelines(span_buffers.pop(next_flush))
                            span_buffers[next_flush] = []
                elif kind == "done":
                    live.discard(conn)
                elif kind == "error":
                    _, worker_index, formatted = message
                    errors.append((worker_index, formatted))
                    live.discard(conn)
            if next_status is not None and time.monotonic() >= next_status:
                emit_status()
                next_status += status_interval
        for process in workers:
            process.join()
    finally:
        for process in workers:
            if process.is_alive():  # pragma: no cover - error unwind only
                process.terminate()
                process.join()

    if errors:
        details = "\n\n".join(
            f"[worker {index}]\n{formatted}" for index, formatted in errors
        )
        raise RuntimeError(f"parallel scan worker(s) crashed:\n{details}")
    if len(payloads) != shards:
        missing = sorted(set(range(shards)) - set(payloads))
        raise RuntimeError(f"workers exited without finishing shards {missing}")
    fleet.finish()

    # ---- fold the fleet together -----------------------------------------
    merged_stats = ScanStats()
    registry = MetricsRegistry(enabled=collect_metrics)
    cache_totals: dict[str, int] = {}
    cache_seen = False
    utilisations = []
    shard_summaries = []
    for shard_index in sorted(payloads):
        payload = payloads[shard_index]
        shard_stats = ScanStats.from_state(payload["stats"])
        merged_stats.merge(shard_stats)
        registry.merge_dump(payload["metrics"], rename=_relabel_for(shard_index))
        utilisations.append(payload["cpu_utilisation"])
        if payload["cache"] is not None:
            cache_seen = True
            for key, value in payload["cache"].items():
                if key != "hit_rate":
                    cache_totals[key] = cache_totals.get(key, 0) + value
        shard_summaries.append(
            {
                "shard": shard_index,
                "total": shard_stats.total,
                "successes": shard_stats.successes,
                "duration_s": round(shard_stats.duration, 3),
                "queries_sent": shard_stats.queries_sent,
            }
        )
    cache_stats = None
    if cache_seen:
        probes = cache_totals.get("hits", 0) + cache_totals.get("misses", 0)
        cache_stats = dict(cache_totals)
        cache_stats["hit_rate"] = round(
            cache_totals.get("hits", 0) / probes if probes else 0.0, 4
        )
    cpu_utilisation = sum(utilisations) / len(utilisations) if utilisations else 0.0
    if registry.enabled:
        mp_scope = registry.scope("mp")
        mp_scope.gauge("processes").set(processes)
        mp_scope.gauge("shards").set(shards)
        mp_scope.gauge("rows_merged").set(rows_written)

    return ParallelReport(
        stats=merged_stats,
        registry=registry,
        metrics=registry.snapshot(),
        cache_stats=cache_stats,
        cpu_utilisation=cpu_utilisation,
        shard_summaries=shard_summaries,
        processes=processes,
        shards=shards,
        rows_written=rows_written,
        spans_written=spans_written,
    )
