"""The scan orchestrator: spawns lookup routines, owns sockets, CPU and
cache, delegates per-query logic to the module, and aggregates stats.

This is ZDNS's "framework" component (Section 3.2): light-weight and
free of DNS-specific logic.  The framework also owns the telemetry
wiring (:mod:`repro.obs`): it builds the run's metrics registry, mirrors
scan stats into the ``engine`` scope, publishes scheduler and cache
pressure at scan end, drives the periodic status emitter on the virtual
clock, and hands the span tracer to the resolver machines.
"""

from __future__ import annotations

import io
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core import (
    ClientCostModel,
    ResolverConfig,
    SelectiveCache,
    ServerHealthTracker,
    SimDriver,
)
from ..dnslib import CODEC_STATS, clear_codec_caches, codec_memo_stats
from ..ecosystem import SimInternet
from ..modules import ModuleContext, ScanModule, get_module
from ..net import CPUModel, GCModel, PortExhaustedError, SimUDPSocket, SourceIPPool
from ..obs import MetricsRegistry, SpanTracer, StatusEmitter
from .stats import ScanStats


@dataclass
class ScanConfig:
    """Everything a scan needs (the CLI flag surface)."""

    module: str = "A"
    #: "iterative", "google", "cloudflare", or "external".
    mode: str = "iterative"
    resolver_ips: list[str] = field(default_factory=list)
    threads: int = 1000
    source_prefix: int = 32
    ports_per_ip: int = 45_000
    cache_size: int = 600_000
    cache_policy: str = "selective"
    cache_eviction: str = "random"
    retries: int = 2
    iteration_timeout: float = 2.0
    external_timeout: float = 3.0
    cores: int = 24
    #: None = pick automatically: iterative scans pay per-lookup cache
    #: and referral-parsing CPU on top of packet costs.
    costs: ClientCostModel | None = None
    #: GC pause model; the paper's tuned config is frequent short pauses.
    gc_period: float | None = None
    gc_pause: float | None = None
    reuse_sockets: bool = True
    record_trace: bool = False
    retry_servfail: bool = True
    seed: int = 0
    #: Collect registry metrics (engine/cache/scheduler scopes).  Off by
    #: default: the disabled path must cost nothing on the hot loop.
    metrics: bool = False
    #: Emit a status line every this many *virtual* seconds (None = off).
    status_interval: float | None = None
    #: Wrap every resolution step in tracer spans (see repro.obs.spans).
    collect_spans: bool = False
    #: Retry backoff base (decorrelated jitter); 0.0 = no backoff, no
    #: extra RNG draws — the byte-identical default.
    backoff_base: float = 0.0
    backoff_cap: float = 10.0
    #: Track per-server health and shed load away from failing servers
    #: (see repro.core.health).  Off by default.
    server_health: bool = False
    #: Abort the scan with :class:`repro.net.HangError` if the event
    #: loop executes more than this many events (hang detection for the
    #: chaos soak).  None (the default) keeps the unbounded hot loop.
    max_events: int | None = None
    #: Shadow every Kth lookup against the differential oracle
    #: (:mod:`repro.oracle`): divergences become structured output rows
    #: and ``oracle.*`` counters.  None/0 = off.  Simulated iterative
    #: scans of single-qtype modules only.
    oracle_check: int | None = None
    #: DNSSEC validation (iterative mode only): send DO on every query,
    #: walk the chain of trust per lookup, attach ``data.dnssec`` to
    #: output rows and publish ``dnssec.*`` outcome counters.  Off by
    #: default — a non-DNSSEC scan stays byte-identical.
    dnssec: bool = False

    def resolver_config(self) -> ResolverConfig:
        return ResolverConfig(
            iteration_timeout=self.iteration_timeout,
            external_timeout=self.external_timeout,
            retries=self.retries,
            record_trace_results=self.record_trace,
            retry_servfail=self.retry_servfail,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            dnssec=self.dnssec,
        )


@dataclass
class ScanReport:
    """Everything a finished scan can tell you."""

    stats: ScanStats
    cache_stats: dict | None = None
    network_stats: dict | None = None
    cpu_utilisation: float = 0.0
    #: The run's telemetry registry (disabled/empty unless the scan was
    #: configured with metrics) and its flat snapshot.
    registry: MetricsRegistry | None = None
    metrics: dict = field(default_factory=dict)
    #: Span tracer, when the scan collected spans without a sink.
    tracer: SpanTracer | None = None
    #: cProfile output captured by the ``REPRO_PROFILE`` hook, routed
    #: here so it lands in the metadata file next to the run summary.
    profile: dict | None = None
    #: Differential-oracle counters (``--oracle-check`` scans only):
    #: checked / agreed / inconclusive / divergences.
    oracle_stats: dict | None = None
    #: Validation-outcome tallies (``dnssec`` scans only):
    #: secure / insecure / bogus / indeterminate lookup counts.
    dnssec_stats: dict | None = None


class ScanRunner:
    """Runs one scan on a simulated Internet."""

    def __init__(
        self,
        internet: SimInternet,
        config: ScanConfig,
        module: ScanModule | None = None,
        sink: Callable[[dict], None] | None = None,
        cpu: CPUModel | None = None,
        registry: MetricsRegistry | None = None,
        span_sink: Callable[[dict], None] | None = None,
        status_stream=None,
        view=None,
        progress: Callable[..., None] | None = None,
        progress_interval: float | None = None,
        target: int | None = None,
    ):
        self.internet = internet
        self.config = config
        self.module = module if module is not None else get_module(config.module)
        self.sink = sink
        self.cache: SelectiveCache | None = None
        #: Externally supplied CPU model (e.g. shared with a co-located
        #: Unbound); the runner builds its own when None.
        self.cpu = cpu
        #: Externally supplied registry (e.g. shared across scan phases);
        #: the runner builds its own per run when None.
        self.registry = registry
        #: Finished spans stream here as JSON rows; when None but span
        #: collection is on, the tracer retains them on the report.
        self.span_sink = span_sink
        #: Status lines go here (default stderr).
        self.status_stream = status_stream
        #: Control-plane view (:class:`~repro.framework.telemetry.ScanView`):
        #: bound to the live stats/registry/cache at run start, marked
        #: complete when the last routine finishes.  Read-only consumers
        #: (the HTTP server) hang off it; the scan never reads it back.
        self.view = view
        #: Streaming telemetry hook: called every ``progress_interval``
        #: *virtual* seconds with keyword args ``stats``, ``registry``,
        #: ``in_flight``, ``now``, ``complete`` — and exactly once more,
        #: ``complete=True``, when the last routine finishes.  The shard
        #: executor uses it to stream :class:`TelemetryDelta` messages.
        self.progress = progress
        self.progress_interval = progress_interval
        #: Total lookups this run will perform, when the caller knows it
        #: (materialised name lists) — enables done/target and ETA on
        #: status lines and in the control-plane views.
        self.target = target

    def _resolver_ips(self) -> list[str]:
        config = self.config
        if config.mode == "google":
            return [self.internet.google_ip]
        if config.mode == "cloudflare":
            return [self.internet.cloudflare_ip]
        if config.mode == "external":
            if not config.resolver_ips:
                raise ValueError("external mode needs resolver_ips")
            return list(config.resolver_ips)
        return []

    def run(self, names: Iterable[str]) -> ScanReport:
        internet = self.internet
        config = self.config
        sim = internet.sim

        registry = self.registry
        if registry is None:
            # the control plane (view / streaming progress) needs live
            # metrics even when the run itself was not asked to keep them
            registry = MetricsRegistry(
                enabled=config.metrics
                or config.status_interval is not None
                or self.view is not None
                or self.progress is not None
            )
        engine_scope = registry.scope("engine")
        # codec counters are process-global; the per-run contribution is
        # the delta against this baseline (see the codec scope below).
        # A metered run also starts with cold codec memos: warmness left
        # over from an earlier scan in the same process would otherwise
        # leak into this run's codec.* numbers and break run-to-run
        # metric determinism (the memos are transparent, so output rows
        # are unaffected either way).
        if registry.enabled:
            clear_codec_caches()
        codec_baseline = dict(CODEC_STATS)

        gc = None
        if config.gc_period is not None and config.gc_pause is not None:
            gc = GCModel(period=config.gc_period, pause=config.gc_pause)
        cpu = self.cpu if self.cpu is not None else CPUModel(sim, cores=config.cores, gc=gc)
        pool = SourceIPPool(
            prefix_length=config.source_prefix, ports_per_ip=config.ports_per_ip
        )
        mode = "iterative" if config.mode == "iterative" else "external"
        costs = config.costs
        if costs is None:
            costs = ClientCostModel.for_iterative() if mode == "iterative" else ClientCostModel()
        driver = SimDriver(
            internet.network,
            cpu=cpu,
            costs=costs,
            reuse_sockets=config.reuse_sockets,
            seed=config.seed,
        )
        if config.dnssec and mode != "iterative":
            raise ValueError("dnssec validation requires iterative mode")
        if mode == "iterative":
            self.cache = SelectiveCache(
                capacity=config.cache_size,
                policy=config.cache_policy,
                eviction=config.cache_eviction,
                seed=config.seed,
                clock=lambda: sim.now,
                epoch_base=_dnssec_epoch_base() if config.dnssec else None,
            )
        resolver_config = config.resolver_config()
        if config.dnssec:
            from ..core import trust_anchor_for

            resolver_config.trust_anchor = trust_anchor_for(internet.synth)
        health = None
        if config.server_health:
            health = ServerHealthTracker(clock=lambda: sim.now)
            resolver_config.health = health
        if self.sink is None:
            # nothing consumes per-query trace rows: skip assembling them
            resolver_config.collect_trace = False
        tracer = None
        if config.collect_spans or self.span_sink is not None:
            tracer = SpanTracer(clock=lambda: sim.now, sink=self.span_sink)
            resolver_config.tracer = tracer
        context = ModuleContext(
            mode=mode,
            root_ips=internet.root_ips,
            resolver_ips=self._resolver_ips(),
            cache=self.cache,
            config=resolver_config,
            rng=random.Random(config.seed),
            build_rows=self.sink is not None,
        )

        oracle = None
        oracle_every = int(config.oracle_check or 0)
        if oracle_every:
            if mode != "iterative":
                raise ValueError("oracle_check requires iterative mode")
            if self.module.qtype is None:
                raise ValueError(
                    f"oracle_check needs a single-qtype module, not {self.module.name}"
                )
            from ..oracle import DifferentialOracle

            oracle = DifferentialOracle(seed=config.seed, dnssec=config.dnssec)
        oracle_seen = [0]
        security_counts: dict[str, int] | None = None
        if config.dnssec:
            from ..core import SECURITY_STATES

            security_counts = {state: 0 for state in SECURITY_STATES}

        stats = ScanStats(threads_requested=config.threads, started_at=sim.now)
        inflight = None
        if registry.enabled:
            stats.attach(engine_scope)
            inflight = engine_scope.gauge("inflight")
        if self.view is not None:
            self.view.bind(
                stats=stats,
                registry=registry,
                cache=self.cache,
                sim=sim,
                inflight=inflight,
                target=self.target,
            )
        name_iter = iter(names)
        module = self.module
        sink = self.sink

        #: spread routine start-up over half a second, as a real scanner
        #: ramping up would — avoids artificial lockstep bursts
        ramp = 0.5

        def worker(socket: SimUDPSocket, start_delay: float):
            if start_delay > 0:
                yield start_delay
            while True:
                try:
                    raw = next(name_iter)
                except StopIteration:
                    socket.close()
                    return
                if inflight is not None:
                    inflight.inc()
                lookup_gen = module.lookup(raw, context)
                row = yield from driver.execute(lookup_gen, socket)
                result = row.pop("_result", None)
                queries = result.queries_sent if result is not None else 0
                retries = result.retries_used if result is not None else 0
                if inflight is not None:
                    inflight.dec()
                stats.record(row.get("status", "ERROR"), sim.now, queries, retries)
                if (
                    security_counts is not None
                    and result is not None
                    and result.security is not None
                ):
                    security_counts[result.security] += 1
                if oracle is not None and result is not None:
                    oracle_seen[0] += 1
                    if (oracle_seen[0] - 1) % oracle_every == 0:
                        divergence = oracle.check(
                            module.parse_input(raw), module.qtype, result
                        )
                        if divergence is not None and sink is not None:
                            sink(divergence.to_row())
                if sink is not None:
                    sink(row)

        futures = []
        for index in range(config.threads):
            try:
                socket = SimUDPSocket(internet.network, pool)
            except PortExhaustedError:
                # the /32 socket limit of Figure 1: fewer routines run
                break
            futures.append(sim.spawn(worker(socket, ramp * index / config.threads)))
        stats.threads_running = len(futures)

        #: callables to run when the last routine finishes — repeating
        #: virtual timers (status, progress) would otherwise keep the
        #: event loop alive forever
        finishers = []
        if config.status_interval is not None:
            emitter = StatusEmitter(
                sim,
                interval=config.status_interval,
                stats=stats,
                inflight=inflight,
                cache=self.cache,
                stream=self.status_stream,
                target=self.target,
            ).start()
            finishers.append(emitter.stop)

        emit_final_progress = None
        if self.progress is not None:
            progress = self.progress
            interval = self.progress_interval or 1.0
            progress_timer = [None]

            def _emit_progress(complete: bool) -> None:
                progress(
                    stats=stats,
                    registry=registry,
                    in_flight=int(inflight.value) if inflight is not None else 0,
                    now=sim.now,
                    complete=complete,
                )

            def _progress_tick() -> None:
                _emit_progress(False)
                progress_timer[0] = sim.call_later(interval, _progress_tick)

            progress_timer[0] = sim.call_later(interval, _progress_tick)

            def _progress_finish() -> None:
                # only stop the repeating timer here: the final,
                # complete=True emission happens after the end-of-run
                # metric publishing below, so the delta it carries is
                # the task's actual checkpoint state — emitting it from
                # this finisher raced the end-of-run work (no scheduler/
                # cache/net scopes yet, sinks not flushed) and shipped a
                # checkpoint that undercounted the shard
                if progress_timer[0] is not None:
                    progress_timer[0].cancel()
                    progress_timer[0] = None

            finishers.append(_progress_finish)
            emit_final_progress = _emit_progress

        if self.view is not None:
            finishers.append(self.view.finish)

        if finishers:
            remaining = [len(futures)]

            def _worker_done(_future) -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    for finish in finishers:
                        finish()

            for future in futures:
                future.add_done_callback(_worker_done)
            if not futures:
                for finish in finishers:
                    finish()

        profile = _run_with_optional_profile(sim, config.max_events)
        for future in futures:
            future.result()  # surface any routine crash

        if registry.enabled:
            sim.publish_metrics(registry.scope("scheduler"))
            if self.cache is not None:
                self.cache.publish_metrics(registry.scope("cache"))
            net_scope = registry.scope("net")
            for key, value in vars(internet.network.stats).items():
                if isinstance(value, (int, float)):
                    net_scope.gauge(key).set(value)
            injector = getattr(internet.network, "fault_injector", None)
            if injector is not None:
                injector.publish_metrics(registry.scope("faults"))
            if health is not None:
                health.publish_metrics(registry.scope("health"))
            if oracle is not None:
                oracle.publish_metrics(registry.scope("oracle"))
            if security_counts is not None:
                dnssec_scope = registry.scope("dnssec")
                for state, count in security_counts.items():
                    dnssec_scope.gauge(state).set(count)
            # wire-codec work this run paid for: counters are the delta
            # against the process-global baseline taken at run start, so
            # a shard's numbers are its own even when several scans share
            # the process; memo gate state is a point-in-time gauge
            codec_scope = registry.scope("codec")
            for key, value in CODEC_STATS.items():
                paid = value - codec_baseline[key]
                if paid:
                    codec_scope.counter(key).inc(paid)
            for key, value in codec_memo_stats().items():
                codec_scope.gauge(key).set(value)

        elapsed = stats.duration
        cpu_utilisation = cpu.utilisation(elapsed) if elapsed else 0.0
        if registry.enabled:
            engine_scope.gauge("cpu_utilisation").set(round(cpu_utilisation, 4))
            engine_scope.gauge("threads_running").set(stats.threads_running)
        if emit_final_progress is not None:
            # the final, complete delta — a true task checkpoint: every
            # end-of-run scope is published and (in the shard executor)
            # the row/span sinks flush before the delta goes on the pipe
            emit_final_progress(True)
        return ScanReport(
            stats=stats,
            cache_stats=(
                {
                    "hits": self.cache.stats.hits,
                    "misses": self.cache.stats.misses,
                    "hit_rate": round(self.cache.stats.hit_rate, 4),
                    "evictions": self.cache.stats.evictions,
                    "expired": self.cache.stats.expired,
                    "updates": self.cache.stats.updates,
                    "size": len(self.cache),
                    "answer_hits": self.cache.stats.answer_hits,
                    "answer_misses": self.cache.stats.answer_misses,
                }
                if self.cache is not None
                else None
            ),
            network_stats=vars(internet.network.stats).copy(),
            cpu_utilisation=cpu_utilisation,
            registry=registry,
            metrics=registry.snapshot(),
            tracer=tracer if self.span_sink is None else None,
            profile=profile,
            oracle_stats=oracle.stats() if oracle is not None else None,
            dnssec_stats=dict(security_counts) if security_counts is not None else None,
        )


def _dnssec_epoch_base() -> int:
    from ..ecosystem import EPOCH_BASE

    return EPOCH_BASE


def _run_with_optional_profile(sim, max_events: int | None = None) -> dict | None:
    """``sim.run()``, optionally under cProfile.

    Set ``REPRO_PROFILE=1`` (or ``REPRO_PROFILE=<N>`` for the top N
    rows) to profile cumulative-time hot spots of the event loop — the
    profiler only wraps the run itself, not setup or reporting, so the
    output is the scan's actual hot path.  The report is printed to
    stderr *and* returned (``{"top": N, "report": text}``) so the
    runner can route it into the run's metadata file.
    """
    spec = os.environ.get("REPRO_PROFILE", "")
    if not spec or spec == "0":
        sim.run(max_events=max_events)
        return None
    import cProfile
    import pstats
    import sys

    top = int(spec) if spec.isdigit() and int(spec) > 1 else 25
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        sim.run(max_events=max_events)
    finally:
        profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(top)
        report = buffer.getvalue()
        sys.stderr.write(report)
    return {"top": top, "report": report}


def run_scan(
    internet: SimInternet,
    names: Iterable[str],
    config: ScanConfig | None = None,
    sink: Callable[[dict], None] | None = None,
    **overrides,
) -> ScanReport:
    """One-call convenience wrapper around :class:`ScanRunner`."""
    if config is None:
        config = ScanConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config or keyword overrides, not both")
    return ScanRunner(internet, config, sink=sink).run(names)
