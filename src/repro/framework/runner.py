"""The scan orchestrator: spawns lookup routines, owns sockets, CPU and
cache, delegates per-query logic to the module, and aggregates stats.

This is ZDNS's "framework" component (Section 3.2): light-weight and
free of DNS-specific logic.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core import ClientCostModel, ResolverConfig, SelectiveCache, SimDriver
from ..ecosystem import SimInternet
from ..modules import ModuleContext, ScanModule, get_module
from ..net import CPUModel, GCModel, PortExhaustedError, SimUDPSocket, SourceIPPool
from .stats import ScanStats


@dataclass
class ScanConfig:
    """Everything a scan needs (the CLI flag surface)."""

    module: str = "A"
    #: "iterative", "google", "cloudflare", or "external".
    mode: str = "iterative"
    resolver_ips: list[str] = field(default_factory=list)
    threads: int = 1000
    source_prefix: int = 32
    ports_per_ip: int = 45_000
    cache_size: int = 600_000
    cache_policy: str = "selective"
    cache_eviction: str = "random"
    retries: int = 2
    iteration_timeout: float = 2.0
    external_timeout: float = 3.0
    cores: int = 24
    #: None = pick automatically: iterative scans pay per-lookup cache
    #: and referral-parsing CPU on top of packet costs.
    costs: ClientCostModel | None = None
    #: GC pause model; the paper's tuned config is frequent short pauses.
    gc_period: float | None = None
    gc_pause: float | None = None
    reuse_sockets: bool = True
    record_trace: bool = False
    retry_servfail: bool = True
    seed: int = 0

    def resolver_config(self) -> ResolverConfig:
        return ResolverConfig(
            iteration_timeout=self.iteration_timeout,
            external_timeout=self.external_timeout,
            retries=self.retries,
            record_trace_results=self.record_trace,
            retry_servfail=self.retry_servfail,
        )


@dataclass
class ScanReport:
    """Everything a finished scan can tell you."""

    stats: ScanStats
    cache_stats: dict | None = None
    network_stats: dict | None = None
    cpu_utilisation: float = 0.0


class ScanRunner:
    """Runs one scan on a simulated Internet."""

    def __init__(
        self,
        internet: SimInternet,
        config: ScanConfig,
        module: ScanModule | None = None,
        sink: Callable[[dict], None] | None = None,
        cpu: CPUModel | None = None,
    ):
        self.internet = internet
        self.config = config
        self.module = module if module is not None else get_module(config.module)
        self.sink = sink
        self.cache: SelectiveCache | None = None
        #: Externally supplied CPU model (e.g. shared with a co-located
        #: Unbound); the runner builds its own when None.
        self.cpu = cpu

    def _resolver_ips(self) -> list[str]:
        config = self.config
        if config.mode == "google":
            return [self.internet.google_ip]
        if config.mode == "cloudflare":
            return [self.internet.cloudflare_ip]
        if config.mode == "external":
            if not config.resolver_ips:
                raise ValueError("external mode needs resolver_ips")
            return list(config.resolver_ips)
        return []

    def run(self, names: Iterable[str]) -> ScanReport:
        internet = self.internet
        config = self.config
        sim = internet.sim

        gc = None
        if config.gc_period is not None and config.gc_pause is not None:
            gc = GCModel(period=config.gc_period, pause=config.gc_pause)
        cpu = self.cpu if self.cpu is not None else CPUModel(sim, cores=config.cores, gc=gc)
        pool = SourceIPPool(
            prefix_length=config.source_prefix, ports_per_ip=config.ports_per_ip
        )
        mode = "iterative" if config.mode == "iterative" else "external"
        costs = config.costs
        if costs is None:
            costs = ClientCostModel.for_iterative() if mode == "iterative" else ClientCostModel()
        driver = SimDriver(
            internet.network,
            cpu=cpu,
            costs=costs,
            reuse_sockets=config.reuse_sockets,
            seed=config.seed,
        )
        if mode == "iterative":
            self.cache = SelectiveCache(
                capacity=config.cache_size,
                policy=config.cache_policy,
                eviction=config.cache_eviction,
                seed=config.seed,
            )
        resolver_config = config.resolver_config()
        if self.sink is None:
            # nothing consumes per-query trace rows: skip assembling them
            resolver_config.collect_trace = False
        context = ModuleContext(
            mode=mode,
            root_ips=internet.root_ips,
            resolver_ips=self._resolver_ips(),
            cache=self.cache,
            config=resolver_config,
            rng=random.Random(config.seed),
            build_rows=self.sink is not None,
        )

        stats = ScanStats(threads_requested=config.threads, started_at=sim.now)
        name_iter = iter(names)
        module = self.module
        sink = self.sink

        #: spread routine start-up over half a second, as a real scanner
        #: ramping up would — avoids artificial lockstep bursts
        ramp = 0.5

        def worker(socket: SimUDPSocket, start_delay: float):
            if start_delay > 0:
                yield start_delay
            while True:
                try:
                    raw = next(name_iter)
                except StopIteration:
                    socket.close()
                    return
                lookup_gen = module.lookup(raw, context)
                row = yield from driver.execute(lookup_gen, socket)
                result = row.pop("_result", None)
                queries = result.queries_sent if result is not None else 0
                retries = result.retries_used if result is not None else 0
                stats.record(row.get("status", "ERROR"), sim.now, queries, retries)
                if sink is not None:
                    sink(row)

        futures = []
        for index in range(config.threads):
            try:
                socket = SimUDPSocket(internet.network, pool)
            except PortExhaustedError:
                # the /32 socket limit of Figure 1: fewer routines run
                break
            futures.append(sim.spawn(worker(socket, ramp * index / config.threads)))
        stats.threads_running = len(futures)

        _run_with_optional_profile(sim)
        for future in futures:
            future.result()  # surface any routine crash

        counters = getattr(sim, "counters", None)
        if counters is not None:
            stats.scheduler = counters()

        elapsed = stats.duration
        return ScanReport(
            stats=stats,
            cache_stats=(
                {
                    "hits": self.cache.stats.hits,
                    "misses": self.cache.stats.misses,
                    "hit_rate": round(self.cache.stats.hit_rate, 4),
                    "evictions": self.cache.stats.evictions,
                    "size": len(self.cache),
                    "answer_hits": self.cache.stats.answer_hits,
                    "answer_misses": self.cache.stats.answer_misses,
                }
                if self.cache is not None
                else None
            ),
            network_stats=vars(internet.network.stats).copy(),
            cpu_utilisation=cpu.utilisation(elapsed) if elapsed else 0.0,
        )


def _run_with_optional_profile(sim) -> None:
    """``sim.run()``, optionally under cProfile.

    Set ``REPRO_PROFILE=1`` (or ``REPRO_PROFILE=<N>`` for the top N
    rows) to print cumulative-time hot spots of the event loop after the
    scan — the profiler only wraps the run itself, not setup or
    reporting, so the output is the scan's actual hot path.
    """
    spec = os.environ.get("REPRO_PROFILE", "")
    if not spec or spec == "0":
        sim.run()
        return
    import cProfile
    import pstats

    top = int(spec) if spec.isdigit() and int(spec) > 1 else 25
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        sim.run()
    finally:
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(top)


def run_scan(
    internet: SimInternet,
    names: Iterable[str],
    config: ScanConfig | None = None,
    sink: Callable[[dict], None] | None = None,
    **overrides,
) -> ScanReport:
    """One-call convenience wrapper around :class:`ScanRunner`."""
    if config is None:
        config = ScanConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config or keyword overrides, not both")
    return ScanRunner(internet, config, sink=sink).run(names)
