"""Run-time statistics aggregation (Section 3.2's framework duty)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class ScanStats:
    """Aggregated outcome of one scan, measured in virtual time."""

    total: int = 0
    successes: int = 0
    by_status: Counter = field(default_factory=Counter)
    started_at: float = 0.0
    finished_at: float = 0.0
    threads_requested: int = 0
    threads_running: int = 0
    queries_sent: int = 0
    retries_used: int = 0
    completion_times: list = field(default_factory=list)
    #: Event-loop pressure counters from ``Simulator.counters()`` —
    #: peak heap/ready-queue sizes, cancelled timers, compactions.
    scheduler: dict = field(default_factory=dict)

    def record(self, status: str, now: float, queries: int = 0, retries: int = 0) -> None:
        self.total += 1
        self.by_status[status] += 1
        if status in ("NOERROR", "NXDOMAIN"):
            self.successes += 1
        self.finished_at = max(self.finished_at, now)
        self.completion_times.append(now)
        self.queries_sent += queries
        self.retries_used += retries

    @property
    def duration(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def success_rate(self) -> float:
        return self.successes / self.total if self.total else 0.0

    @property
    def successes_per_second(self) -> float:
        return self.successes / self.duration if self.duration > 0 else 0.0

    @property
    def lookups_per_second(self) -> float:
        return self.total / self.duration if self.duration > 0 else 0.0

    @property
    def steady_rate(self) -> float:
        """Lookups/second between the 10th and 90th percentile
        completions: excludes ramp-up and straggler-tail artifacts, the
        way sustained-throughput plots are usually measured."""
        times = sorted(self.completion_times)
        if len(times) < 10:
            return self.lookups_per_second
        lo = times[len(times) // 10]
        hi = times[(9 * len(times)) // 10]
        if hi <= lo:
            return self.lookups_per_second
        return (0.8 * len(times)) / (hi - lo)

    @property
    def steady_successes_per_second(self) -> float:
        return self.steady_rate * self.success_rate

    def timeline(self, bucket: float = 1.0) -> list[tuple[float, int]]:
        """Completions per ``bucket`` seconds of virtual time — the data
        behind throughput-over-time plots.

        >>> stats = ScanStats()
        >>> for t in (0.1, 0.2, 1.5):
        ...     stats.record("NOERROR", t)
        >>> stats.timeline(1.0)
        [(0.0, 2), (1.0, 1)]
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        counts: dict[int, int] = {}
        for when in self.completion_times:
            counts[int(when / bucket)] = counts.get(int(when / bucket), 0) + 1
        return [(index * bucket, counts[index]) for index in sorted(counts)]

    @property
    def queries_per_second(self) -> float:
        return self.queries_sent / self.duration if self.duration > 0 else 0.0

    def to_json(self) -> dict:
        out = {
            "total": self.total,
            "successes": self.successes,
            "success_rate": round(self.success_rate, 4),
            "statuses": dict(self.by_status),
            "duration_s": round(self.duration, 3),
            "successes_per_second": round(self.successes_per_second, 1),
            "queries_per_second": round(self.queries_per_second, 1),
            "threads_requested": self.threads_requested,
            "threads_running": self.threads_running,
            "queries_sent": self.queries_sent,
            "retries_used": self.retries_used,
        }
        if self.scheduler:
            out["scheduler"] = dict(self.scheduler)
        return out
