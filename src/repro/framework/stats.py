"""Run-time statistics aggregation (Section 3.2's framework duty).

:class:`ScanStats` is the scan's accumulator *and* a thin view over the
telemetry registry: when attached to a scope (``engine``), every
``record()`` mirrors into registry counters and histograms, so the
status emitter, the Prometheus dump, and the metadata file all read the
same numbers this class summarises.  Unattached (the default), it costs
exactly what it did before the observability layer existed.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field

#: Statuses counted as timeouts by :attr:`ScanStats.timeouts`, the
#: status line, and the telemetry views — one definition for all three.
TIMEOUT_STATUSES = ("TIMEOUT", "ITERATIVE_TIMEOUT")


class _StatsInstruments:
    """The registry instruments one scan's ScanStats mirrors into."""

    __slots__ = ("lookups", "successes", "queries", "retries",
                 "queries_per_lookup", "_status_scope", "_by_status")

    def __init__(self, scope):
        self.lookups = scope.counter("lookups")
        self.successes = scope.counter("successes")
        self.queries = scope.counter("queries_sent")
        self.retries = scope.counter("retries_used")
        self.queries_per_lookup = scope.histogram("queries_per_lookup")
        self._status_scope = scope.scope("status")
        self._by_status: dict[str, object] = {}

    def record(self, status: str, success: bool, queries: int, retries: int) -> None:
        self.lookups.inc()
        if success:
            self.successes.inc()
        if queries:
            self.queries.inc(queries)
            self.queries_per_lookup.observe(queries)
        if retries:
            self.retries.inc(retries)
        counter = self._by_status.get(status)
        if counter is None:
            counter = self._status_scope.counter(status)
            self._by_status[status] = counter
        counter.inc()


@dataclass
class ScanStats:
    """Aggregated outcome of one scan, measured in virtual time."""

    total: int = 0
    successes: int = 0
    by_status: Counter = field(default_factory=Counter)
    started_at: float = 0.0
    finished_at: float = 0.0
    threads_requested: int = 0
    threads_running: int = 0
    queries_sent: int = 0
    retries_used: int = 0
    completion_times: list = field(default_factory=list)
    _instruments: object = field(default=None, repr=False, compare=False)

    def attach(self, scope) -> "ScanStats":
        """Mirror every subsequent :meth:`record` into registry
        instruments under ``scope`` (e.g. ``registry.scope("engine")``).
        Returns self for chaining."""
        self._instruments = _StatsInstruments(scope)
        return self

    def record(self, status: str, now: float, queries: int = 0, retries: int = 0) -> None:
        self.total += 1
        self.by_status[status] += 1
        success = status in ("NOERROR", "NXDOMAIN")
        if success:
            self.successes += 1
        self.finished_at = max(self.finished_at, now)
        self.completion_times.append(now)
        self.queries_sent += queries
        self.retries_used += retries
        instruments = self._instruments
        if instruments is not None:
            instruments.record(status, success, queries, retries)

    def to_state(self) -> dict:
        """Plain-data export for cross-process aggregation (the shard
        workers of :mod:`repro.framework.parallel` ship this over the
        result pipe; :meth:`from_state` and :meth:`merge` rebuild the
        fleet-wide view in the parent)."""
        return {
            "total": self.total,
            "successes": self.successes,
            "by_status": dict(self.by_status),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "threads_requested": self.threads_requested,
            "threads_running": self.threads_running,
            "queries_sent": self.queries_sent,
            "retries_used": self.retries_used,
            "completion_times": list(self.completion_times),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ScanStats":
        """Inverse of :meth:`to_state`."""
        stats = cls(
            total=state["total"],
            successes=state["successes"],
            by_status=Counter(state["by_status"]),
            started_at=state["started_at"],
            finished_at=state["finished_at"],
            threads_requested=state["threads_requested"],
            threads_running=state["threads_running"],
            queries_sent=state["queries_sent"],
            retries_used=state["retries_used"],
        )
        stats.completion_times = list(state["completion_times"])
        return stats

    def merge(self, other: "ScanStats") -> "ScanStats":
        """Fold another scan's stats into this one (in place).

        Counts, statuses, and completion times pool; the time window
        widens to cover both scans.  Shards of a multi-process run all
        start their virtual clocks at zero and run concurrently, so the
        merged ``duration`` is the slowest shard's — the fleet-wide
        virtual wall clock — and rate properties read as fleet rates.
        Returns self for chaining.
        """
        self.total += other.total
        self.successes += other.successes
        self.by_status.update(other.by_status)
        if other.total or other.finished_at:
            self.started_at = min(self.started_at, other.started_at)
            self.finished_at = max(self.finished_at, other.finished_at)
        self.threads_requested += other.threads_requested
        self.threads_running += other.threads_running
        self.queries_sent += other.queries_sent
        self.retries_used += other.retries_used
        self.completion_times.extend(other.completion_times)
        return self

    @property
    def duration(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def timeouts(self) -> int:
        """Lookups that ended in any timeout status."""
        return sum(self.by_status.get(status, 0) for status in TIMEOUT_STATUSES)

    @property
    def success_rate(self) -> float:
        return self.successes / self.total if self.total else 0.0

    @property
    def successes_per_second(self) -> float:
        return self.successes / self.duration if self.duration > 0 else 0.0

    @property
    def lookups_per_second(self) -> float:
        return self.total / self.duration if self.duration > 0 else 0.0

    @property
    def steady_rate(self) -> float:
        """Lookups/second between the 10th and 90th percentile
        completions: excludes ramp-up and straggler-tail artifacts, the
        way sustained-throughput plots are usually measured.

        Degenerate scans fall back to :attr:`lookups_per_second`
        (itself 0.0 at zero duration): fewer than 10 completions, or a
        burst where the 10th and 90th percentiles coincide — including
        the zero-duration case where every lookup lands on one instant.
        """
        times = self.completion_times
        if not times:
            return 0.0
        if len(times) < 10:
            return self.lookups_per_second
        ordered = sorted(times)
        lo = ordered[len(ordered) // 10]
        hi = ordered[(9 * len(ordered)) // 10]
        if hi <= lo:
            return self.lookups_per_second
        # Count the completions actually inside (lo, hi] rather than
        # assuming the index-based percentile samples bracket exactly
        # 80% of them — with ties or sizes not divisible by 10 they
        # don't, and the hardcoded 0.8*n numerator overstated the rate.
        inside = bisect_right(ordered, hi) - bisect_right(ordered, lo)
        return inside / (hi - lo)

    @property
    def steady_successes_per_second(self) -> float:
        return self.steady_rate * self.success_rate

    def timeline(self, bucket: float = 1.0, fill: bool = False) -> list[tuple[float, int]]:
        """Completions per ``bucket`` seconds of virtual time — the data
        behind throughput-over-time plots.

        Sparse by default (buckets with no completions are omitted);
        ``fill=True`` emits every bucket between the first and last
        completion, zeros included, which is what plotting against a
        continuous time axis needs.  An empty scan yields ``[]`` either
        way.

        >>> stats = ScanStats()
        >>> for t in (0.1, 0.2, 1.5):
        ...     stats.record("NOERROR", t)
        >>> stats.timeline(1.0)
        [(0.0, 2), (1.0, 1)]
        >>> stats.record("NOERROR", 3.5)
        >>> stats.timeline(1.0, fill=True)
        [(0.0, 2), (1.0, 1), (2.0, 0), (3.0, 1)]
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        if not self.completion_times:
            return []
        counts: dict[int, int] = {}
        for when in self.completion_times:
            index = math.floor(when / bucket)
            counts[index] = counts.get(index, 0) + 1
        if fill:
            indices = range(min(counts), max(counts) + 1)
        else:
            indices = sorted(counts)
        return [(index * bucket, counts.get(index, 0)) for index in indices]

    @property
    def queries_per_second(self) -> float:
        return self.queries_sent / self.duration if self.duration > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "successes": self.successes,
            "success_rate": round(self.success_rate, 4),
            "statuses": dict(self.by_status),
            "duration_s": round(self.duration, 3),
            "successes_per_second": round(self.successes_per_second, 1),
            "queries_per_second": round(self.queries_per_second, 1),
            "threads_requested": self.threads_requested,
            "threads_running": self.threads_running,
            "queries_sent": self.queries_sent,
            "retries_used": self.retries_used,
        }
