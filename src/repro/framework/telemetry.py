"""Live scan telemetry: the streaming delta protocol and fleet views.

The storage layer (:mod:`repro.obs`) can *record* a scan; this module is
what lets an operator *watch* one from outside the process.  Three
pieces:

* :class:`TelemetryDelta` — the versioned message shard workers stream
  to the parent over the executor's pipes: a cumulative snapshot of the
  shard's progress counters, its :class:`~repro.framework.stats.ScanStats`
  state, its metrics-registry dump, and its cursor (rows emitted so
  far).  *Cumulative* is the load-bearing property: a lost or coalesced
  delta costs freshness, never correctness, and the final delta of a
  shard is exactly the state a future checkpoint/resume needs.
* :class:`FleetView` — the parent-side fold.  It keeps the latest delta
  per shard and rebuilds the fleet aggregate on demand (via
  :meth:`ScanStats.merge` / :meth:`MetricsRegistry.merge_dump`), so the
  HTTP control plane and the fleet status line read one consistent
  snapshot without ever touching worker state.
* :class:`ScanView` — the single-process equivalent: a thin, lock-free
  view over the runner's *live* stats/registry/cache objects, shaped
  like a one-shard fleet so ``/status.json`` looks the same either way.

Both views are read-only over the scan: the HTTP server thread only
calls ``status_snapshot()`` / ``prometheus()``, never mutates, which is
what keeps the server-on and server-off runs byte-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field

from ..obs import MetricsRegistry
from .stats import ScanStats

__all__ = ["DELTA_VERSION", "FleetView", "ScanView", "TelemetryDelta"]

#: Wire version of :class:`TelemetryDelta`.  Bump when fields change
#: meaning; consumers (the parent fold today, checkpoint files tomorrow)
#: must reject versions they do not understand rather than misread them.
DELTA_VERSION = 1


@dataclass
class TelemetryDelta:
    """One shard's cumulative progress snapshot (pipe message).

    Everything is *cumulative since shard start*, so the parent can
    always overwrite its previous view of the shard; ``seq`` orders
    deltas and exposes gaps.  ``stats`` is ``ScanStats.to_state()`` and
    ``metrics`` is ``MetricsRegistry.dump()`` — both already the
    mergeable cross-process formats the end-of-scan fold uses, which is
    deliberate: the live fleet view and the final merge are the same
    computation at different times, and a ``complete=True`` delta is a
    shard checkpoint.
    """

    shard: int
    seq: int
    done: int = 0
    successes: int = 0
    timeouts: int = 0
    retries: int = 0
    queries_sent: int = 0
    in_flight: int = 0
    #: Virtual-clock reading in the shard's simulator at emission time.
    virtual_now: float = 0.0
    #: Rows emitted so far — the shard's resume cursor: merged output is
    #: ordered per shard, so a restart replays the shard and skips this
    #: many completions.
    cursor: int = 0
    #: Names assigned to this shard (the shard-local total target).
    target: int | None = None
    complete: bool = False
    stats: dict | None = None
    metrics: list | None = None
    version: int = DELTA_VERSION

    def to_payload(self) -> dict:
        """Plain-dict form (JSON-safe apart from the metrics tuples)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "TelemetryDelta":
        version = payload.get("version", 0)
        if version != DELTA_VERSION:
            raise ValueError(
                f"telemetry delta version {version} != supported {DELTA_VERSION}"
            )
        return cls(**payload)


#: Statuses the views count as timeouts (mirrors the status line).
_TIMEOUT_STATUSES = ("TIMEOUT", "ITERATIVE_TIMEOUT")

#: Registry scopes surfaced verbatim in ``/status.json`` so an operator
#: sees *where* the fleet is hurting without scraping ``/metrics``.
_STATUS_SCOPES = ("faults", "health")


def _shard_row(delta: TelemetryDelta, elapsed: float) -> dict:
    """One per-shard row of the ``/status.json`` fleet snapshot."""
    return {
        "shard": delta.shard,
        "seq": delta.seq,
        "done": delta.done,
        "target": delta.target,
        "successes": delta.successes,
        "timeouts": delta.timeouts,
        "retries": delta.retries,
        "queries_sent": delta.queries_sent,
        "in_flight": delta.in_flight,
        "virtual_now": round(delta.virtual_now, 6),
        "rate_per_s": round(delta.done / elapsed, 2) if elapsed > 0 else 0.0,
        "complete": delta.complete,
    }


def _scope_tree(registry: MetricsRegistry) -> dict:
    """The ``faults``/``health`` sub-trees of a registry, when present."""
    tree = registry.tree()
    return {scope: tree[scope] for scope in _STATUS_SCOPES if scope in tree}


class FleetView:
    """Thread-safe live state of a multi-process scan.

    The executor's parent loop feeds it (:meth:`update` per delta,
    :meth:`finish` at the end); the HTTP server and the fleet status
    line read consistent snapshots.  All aggregation happens at read
    time from the latest per-shard deltas — updates are a dict store
    under a lock, so feeding the view never slows the merge loop.
    """

    def __init__(
        self,
        run_info: dict | None = None,
        shards: int = 0,
        target: int | None = None,
        clock=time.monotonic,
    ):
        self._lock = threading.Lock()
        self._deltas: dict[int, TelemetryDelta] = {}
        self.run_info = dict(run_info or {})
        self.shards = shards
        self.target = target
        self._clock = clock
        self._started = clock()
        self.complete = False

    def update(self, delta: TelemetryDelta) -> None:
        """Fold one shard delta in (latest-wins per shard)."""
        if delta.version != DELTA_VERSION:
            raise ValueError(
                f"telemetry delta version {delta.version} != supported {DELTA_VERSION}"
            )
        with self._lock:
            previous = self._deltas.get(delta.shard)
            if previous is None or delta.seq >= previous.seq:
                self._deltas[delta.shard] = delta

    def finish(self) -> None:
        """Mark the scan complete (post-scan scrapes see a final view)."""
        with self._lock:
            self.complete = True

    @property
    def elapsed(self) -> float:
        return max(0.0, self._clock() - self._started)

    def fleet_counters(self) -> dict:
        """Cheap fleet totals (no stats/metrics folding) — what the
        parent's periodic status line reads."""
        with self._lock:
            deltas = list(self._deltas.values())
        return {
            "done": sum(d.done for d in deltas),
            "successes": sum(d.successes for d in deltas),
            "timeouts": sum(d.timeouts for d in deltas),
            "retries": sum(d.retries for d in deltas),
            "queries_sent": sum(d.queries_sent for d in deltas),
            "in_flight": sum(d.in_flight for d in deltas),
            "shards_complete": sum(1 for d in deltas if d.complete),
        }

    def fleet_stats(self) -> ScanStats:
        """Merged :class:`ScanStats` from the latest per-shard states."""
        merged = ScanStats()
        with self._lock:
            states = [d.stats for d in self._deltas.values() if d.stats]
        for state in states:
            merged.merge(ScanStats.from_state(state))
        return merged

    def merged_registry(self) -> MetricsRegistry:
        """Live fleet registry: latest per-shard dumps folded together
        with the same per-shard relabelling the end-of-scan merge uses."""
        from .parallel import _relabel_for  # local: avoid an import cycle

        registry = MetricsRegistry(enabled=True)
        with self._lock:
            dumps = [
                (shard, delta.metrics)
                for shard, delta in sorted(self._deltas.items())
                if delta.metrics
            ]
        for shard, dump in dumps:
            registry.merge_dump(dump, rename=_relabel_for(shard))
        return registry

    def prometheus(self) -> str:
        return self.merged_registry().render_prometheus()

    def status_snapshot(self) -> dict:
        """The ``/status.json`` document: run metadata, fleet totals,
        per-shard progress rows, and the fault/health scopes."""
        from ..obs.status import estimate_eta

        with self._lock:
            deltas = sorted(self._deltas.values(), key=lambda d: d.shard)
            complete = self.complete
        elapsed = self.elapsed
        done = sum(d.done for d in deltas)
        successes = sum(d.successes for d in deltas)
        average_rate = done / elapsed if elapsed > 0 else 0.0
        eta = None if complete else estimate_eta(done, self.target, average_rate)
        return {
            "version": DELTA_VERSION,
            "run": dict(self.run_info),
            "wall_elapsed_s": round(elapsed, 3),
            "fleet": {
                "done": done,
                "target": self.target,
                "successes": successes,
                "success_rate": round(successes / done, 4) if done else 0.0,
                "timeouts": sum(d.timeouts for d in deltas),
                "retries": sum(d.retries for d in deltas),
                "queries_sent": sum(d.queries_sent for d in deltas),
                "in_flight": sum(d.in_flight for d in deltas),
                "rate_per_s": round(average_rate, 2),
                "eta_s": None if eta is None else round(eta, 1),
                "virtual_now": round(max((d.virtual_now for d in deltas), default=0.0), 6),
                "shards": self.shards,
                "shards_reporting": len(deltas),
                "shards_complete": sum(1 for d in deltas if d.complete),
                "complete": complete,
            },
            "shards": [_shard_row(d, elapsed) for d in deltas],
            "scopes": _scope_tree(self.merged_registry()),
        }


class ScanView:
    """Single-process control-plane view: live references, fleet shape.

    Bound by :class:`~repro.framework.runner.ScanRunner` at run start to
    the scan's *live* ``ScanStats``, registry, cache, and simulator.
    Reads happen from the HTTP server thread while the simulator thread
    mutates; every read is either a plain attribute load (atomic under
    the GIL) or retried on the rare ``RuntimeError`` a resizing dict
    raises mid-iteration — the view never blocks or mutates the scan.
    """

    def __init__(self, run_info: dict | None = None, clock=time.monotonic):
        self.run_info = dict(run_info or {})
        self._clock = clock
        self._started = clock()
        self.target: int | None = None
        self._stats = None
        self._registry = None
        self._cache = None
        self._sim = None
        self._inflight = None
        self.complete = False

    def bind(self, *, stats, registry=None, cache=None, sim=None,
             inflight=None, target=None) -> "ScanView":
        """Attach the live scan objects (called by the runner)."""
        self._stats = stats
        self._registry = registry
        self._cache = cache
        self._sim = sim
        self._inflight = inflight
        if target is not None:
            self.target = target
        self._started = self._clock()
        return self

    def finish(self) -> None:
        self.complete = True

    def _retry(self, fn, default):
        """Run a read against live, mutating structures; a concurrently
        resizing dict raises RuntimeError — retry, then fall back."""
        for _ in range(8):
            try:
                return fn()
            except RuntimeError:
                continue
        return default

    def prometheus(self) -> str:
        registry = self._registry
        if registry is None or not registry.enabled:
            return ""
        return self._retry(registry.render_prometheus, "")

    def status_snapshot(self) -> dict:
        from ..obs.status import estimate_eta

        elapsed = max(0.0, self._clock() - self._started)
        stats = self._stats
        done = stats.total if stats is not None else 0
        successes = stats.successes if stats is not None else 0
        timeouts = 0
        if stats is not None:
            timeouts = self._retry(
                lambda: sum(stats.by_status.get(s, 0) for s in _TIMEOUT_STATUSES), 0
            )
        in_flight = int(self._inflight.value) if self._inflight is not None else 0
        virtual_now = float(self._sim.now) if self._sim is not None else 0.0
        average_rate = done / elapsed if elapsed > 0 else 0.0
        complete = self.complete
        eta = None if complete else estimate_eta(done, self.target, average_rate)
        shard_row = {
            "shard": 0,
            "seq": done,
            "done": done,
            "target": self.target,
            "successes": successes,
            "timeouts": timeouts,
            "retries": stats.retries_used if stats is not None else 0,
            "queries_sent": stats.queries_sent if stats is not None else 0,
            "in_flight": in_flight,
            "virtual_now": round(virtual_now, 6),
            "rate_per_s": round(average_rate, 2),
            "complete": complete,
        }
        scopes = {}
        if self._registry is not None and self._registry.enabled:
            scopes = self._retry(lambda: _scope_tree(self._registry), {})
        snapshot = {
            "version": DELTA_VERSION,
            "run": dict(self.run_info),
            "wall_elapsed_s": round(elapsed, 3),
            "fleet": {
                "done": done,
                "target": self.target,
                "successes": successes,
                "success_rate": round(successes / done, 4) if done else 0.0,
                "timeouts": timeouts,
                "retries": shard_row["retries"],
                "queries_sent": shard_row["queries_sent"],
                "in_flight": in_flight,
                "rate_per_s": round(average_rate, 2),
                "eta_s": None if eta is None else round(eta, 1),
                "virtual_now": round(virtual_now, 6),
                "shards": 1,
                "shards_reporting": 1 if stats is not None else 0,
                "shards_complete": 1 if complete else 0,
                "complete": complete,
            },
            "shards": [shard_row] if stats is not None else [],
            "scopes": scopes,
        }
        cache = self._cache
        if cache is not None:
            snapshot["fleet"]["cache_hit_rate"] = round(cache.stats.hit_rate, 4)
        return snapshot
