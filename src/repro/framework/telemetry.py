"""Live scan telemetry: the streaming delta protocol and fleet views.

The storage layer (:mod:`repro.obs`) can *record* a scan; this module is
what lets an operator *watch* one from outside the process.  Three
pieces:

* :class:`TelemetryDelta` — the versioned message shard workers stream
  to the parent over the executor's pipes: a cumulative snapshot of one
  *task*'s progress counters, its
  :class:`~repro.framework.stats.ScanStats` state, its metrics-registry
  dump, and its cursor (rows emitted so far).  *Cumulative* is the
  load-bearing property: a lost or coalesced delta costs freshness,
  never correctness, and the final delta of a task is exactly the state
  a checkpoint persists (:mod:`repro.framework.checkpoint`).  Since v2 a
  delta is keyed by ``(shard, segment)`` — work stealing splits a shard
  into segment tasks — and carries the scheduling annotations the
  parent stamps on receipt (``owner``, ``worker``, ``stolen_from``,
  ``resumed``).
* :class:`FleetView` — the parent-side fold.  It keeps the latest delta
  per task and rebuilds both the fleet aggregate and per-*shard* rows
  (segments grouped back together) on demand, so the HTTP control plane
  and the fleet status line read one consistent snapshot without ever
  touching worker state.
* :class:`ScanView` — the single-process equivalent: a thin, lock-free
  view over the runner's *live* stats/registry/cache objects, shaped
  like a one-shard fleet so ``/status.json`` looks the same either way.

Both views are read-only over the scan: the HTTP server thread only
calls ``status_snapshot()`` / ``prometheus()``, never mutates, which is
what keeps the server-on and server-off runs byte-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

from ..obs import MetricsRegistry
from .stats import TIMEOUT_STATUSES as _TIMEOUT_STATUSES
from .stats import ScanStats

__all__ = ["DELTA_VERSION", "FleetView", "ScanView", "TelemetryDelta"]

#: Wire version of :class:`TelemetryDelta`.  Bump when fields change
#: meaning; consumers (the parent fold, the checkpoint journal) must
#: reject versions they do not understand rather than misread them.
#: v2: deltas are per ``(shard, segment)`` task and carry
#: owner/worker/stolen_from/resumed scheduling state.
DELTA_VERSION = 2


@dataclass
class TelemetryDelta:
    """One task's cumulative progress snapshot (pipe message).

    Everything is *cumulative since task start*, so the parent can
    always overwrite its previous view of the task; ``seq`` orders
    deltas and exposes gaps.  ``stats`` is ``ScanStats.to_state()`` and
    ``metrics`` is ``MetricsRegistry.dump()`` — both already the
    mergeable cross-process formats the end-of-scan fold uses, which is
    deliberate: the live fleet view and the final merge are the same
    computation at different times, and a ``complete=True`` delta is a
    task checkpoint.

    Workers fill the progress fields; the executor parent stamps the
    scheduling fields (``owner``/``worker``/``stolen_from``) on receipt
    and sets ``resumed`` on deltas replayed from a checkpoint journal.
    """

    shard: int
    seq: int
    #: Segment index of this task within its shard (``--steal-quantum``
    #: pre-segments shards at fixed boundaries; 0 for whole-shard tasks).
    segment: int = 0
    #: Total segments in this shard's decomposition.
    segments: int = 1
    done: int = 0
    successes: int = 0
    timeouts: int = 0
    retries: int = 0
    queries_sent: int = 0
    in_flight: int = 0
    #: Virtual-clock reading in the task's simulator at emission time.
    virtual_now: float = 0.0
    #: Rows emitted so far.  The durable resume cursor is the *task
    #: boundary* (completed tasks replay from the spool, incomplete
    #: tasks re-run whole); this counter is the live progress within.
    cursor: int = 0
    #: Names assigned to this task (the task-local total target).
    target: int | None = None
    complete: bool = False
    #: Worker index that nominally owns the task's shard.
    owner: int | None = None
    #: Worker index actually running the task.
    worker: int | None = None
    #: When stolen: the owner the task was reassigned away from.
    stolen_from: int | None = None
    #: True when this delta was replayed from a checkpoint journal.
    resumed: bool = False
    stats: dict | None = None
    metrics: list | None = None
    version: int = DELTA_VERSION

    @property
    def key(self) -> tuple[int, int]:
        return (self.shard, self.segment)

    def to_payload(self) -> dict:
        """Plain-dict form (JSON-safe apart from the metrics tuples)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "TelemetryDelta":
        version = payload.get("version", 0)
        if version != DELTA_VERSION:
            raise ValueError(
                f"telemetry delta version {version} != supported {DELTA_VERSION}"
            )
        return cls(**payload)


#: Registry scopes surfaced verbatim in ``/status.json`` so an operator
#: sees *where* the fleet is hurting without scraping ``/metrics``.
_STATUS_SCOPES = ("faults", "health")


def _scope_tree(registry: MetricsRegistry) -> dict:
    """The ``faults``/``health`` sub-trees of a registry, when present."""
    tree = registry.tree()
    return {scope: tree[scope] for scope in _STATUS_SCOPES if scope in tree}


def _shard_group_row(
    shard: int, deltas: list[TelemetryDelta], info: dict, elapsed: float
) -> dict:
    """One per-shard row of ``/status.json``: the shard's segment tasks
    folded back together, plus ownership/steal/resume state."""
    # Trust whichever source knows about *more* segments: a replayed
    # final delta can arrive before the executor installs the plan
    # (--resume replays the journal while the plan is still being laid
    # out), and a shard must never read as complete just because every
    # delta seen *so far* is — the plan may still announce more
    # segments, and the deltas themselves carry the decomposition size.
    segments_total = max(
        info.get("segments") or 0, max(d.segments for d in deltas), 1
    )
    segments_done = sum(1 for d in deltas if d.complete)
    target = info.get("target")
    if target is None:
        known = [d.target for d in deltas if d.target is not None]
        target = sum(known) if known else None
    done = sum(d.done for d in deltas)
    owner = info.get("owner")
    if owner is None:
        owner = next((d.owner for d in deltas if d.owner is not None), None)
    return {
        "shard": shard,
        "seq": max(d.seq for d in deltas),
        "done": done,
        "target": target,
        "successes": sum(d.successes for d in deltas),
        "timeouts": sum(d.timeouts for d in deltas),
        "retries": sum(d.retries for d in deltas),
        "queries_sent": sum(d.queries_sent for d in deltas),
        "in_flight": sum(d.in_flight for d in deltas),
        "virtual_now": round(max(d.virtual_now for d in deltas), 6),
        "rate_per_s": round(done / elapsed, 2) if elapsed > 0 else 0.0,
        "complete": segments_done >= segments_total,
        "segments": segments_total,
        "segments_done": segments_done,
        "owner": owner,
        "workers": sorted({d.worker for d in deltas if d.worker is not None}),
        "steals": sum(1 for d in deltas if d.stolen_from is not None),
        "stolen_from": next(
            (d.stolen_from for d in deltas if d.stolen_from is not None), None
        ),
        "resumed": any(d.resumed for d in deltas),
    }


class FleetView:
    """Thread-safe live state of a multi-process scan.

    The executor's parent loop feeds it (:meth:`update` per delta,
    :meth:`finish` at the end); the HTTP server and the fleet status
    line read consistent snapshots.  All aggregation happens at read
    time from the latest per-task deltas — updates are a dict store
    under a lock, so feeding the view never slows the merge loop.
    ``set_plan`` tells the view the shard decomposition up front, so a
    shard with unreported segments never shows as complete early.
    """

    def __init__(
        self,
        run_info: dict | None = None,
        shards: int = 0,
        target: int | None = None,
        clock=time.monotonic,
    ):
        self._lock = threading.Lock()
        self._deltas: dict[tuple[int, int], TelemetryDelta] = {}
        #: per-shard plan: ``{shard: {"segments", "target", "owner"}}``.
        self._plan: dict[int, dict] = {}
        self.run_info = dict(run_info or {})
        self.shards = shards
        self.target = target
        self._clock = clock
        self._started = clock()
        self.complete = False

    def set_plan(self, plan: dict[int, dict]) -> None:
        """Install the executor's shard decomposition (segment counts,
        per-shard targets, nominal owners).

        Merges per shard rather than replacing wholesale: deltas — in
        particular journal replays during ``--resume`` — may legally
        arrive *before* the plan, and a later (or repeated) ``set_plan``
        must refine what the view knows, never erase shards it already
        learned about from another call."""
        with self._lock:
            for shard, info in plan.items():
                self._plan.setdefault(shard, {}).update(info)

    def update(self, delta: TelemetryDelta) -> None:
        """Fold one task delta in (latest-wins per task)."""
        if delta.version != DELTA_VERSION:
            raise ValueError(
                f"telemetry delta version {delta.version} != supported {DELTA_VERSION}"
            )
        with self._lock:
            previous = self._deltas.get(delta.key)
            if previous is None or delta.seq >= previous.seq:
                self._deltas[delta.key] = delta

    def finish(self) -> None:
        """Mark the scan complete (post-scan scrapes see a final view)."""
        with self._lock:
            self.complete = True

    @property
    def elapsed(self) -> float:
        return max(0.0, self._clock() - self._started)

    def _grouped(self, deltas: list[TelemetryDelta]) -> dict[int, list[TelemetryDelta]]:
        groups: dict[int, list[TelemetryDelta]] = {}
        for delta in sorted(deltas, key=lambda d: d.key):
            groups.setdefault(delta.shard, []).append(delta)
        return groups

    def _shard_complete(self, shard: int, deltas: list[TelemetryDelta], plan: dict) -> bool:
        # same max-of-both-sources rule as _shard_group_row: an early
        # delta must not shrink the shard, a late plan must not either
        total = max(
            plan.get(shard, {}).get("segments") or 0,
            max(d.segments for d in deltas),
            1,
        )
        return sum(1 for d in deltas if d.complete) >= total

    def fleet_counters(self) -> dict:
        """Cheap fleet totals (no stats/metrics folding) — what the
        parent's periodic status line reads."""
        with self._lock:
            deltas = list(self._deltas.values())
            plan = self._plan
        groups = self._grouped(deltas)
        return {
            "done": sum(d.done for d in deltas),
            "successes": sum(d.successes for d in deltas),
            "timeouts": sum(d.timeouts for d in deltas),
            "retries": sum(d.retries for d in deltas),
            "queries_sent": sum(d.queries_sent for d in deltas),
            "in_flight": sum(d.in_flight for d in deltas),
            "shards_complete": sum(
                1 for shard, ds in groups.items()
                if self._shard_complete(shard, ds, plan)
            ),
            "steals": sum(1 for d in deltas if d.stolen_from is not None),
            "resumed_tasks": sum(1 for d in deltas if d.resumed),
        }

    def fleet_stats(self) -> ScanStats:
        """Merged :class:`ScanStats` from the latest per-task states."""
        merged = ScanStats()
        with self._lock:
            states = [d.stats for d in self._deltas.values() if d.stats]
        for state in states:
            merged.merge(ScanStats.from_state(state))
        return merged

    def merged_registry(self) -> MetricsRegistry:
        """Live fleet registry: latest per-task dumps folded together
        with the same per-shard relabelling the end-of-scan merge uses."""
        from .parallel import _relabel_for  # local: avoid an import cycle

        registry = MetricsRegistry(enabled=True)
        with self._lock:
            dumps = [
                (key[0], delta.metrics)
                for key, delta in sorted(self._deltas.items())
                if delta.metrics
            ]
        for shard, dump in dumps:
            registry.merge_dump(dump, rename=_relabel_for(shard))
        return registry

    def prometheus(self) -> str:
        return self.merged_registry().render_prometheus()

    def status_snapshot(self) -> dict:
        """The ``/status.json`` document: run metadata, fleet totals,
        per-shard progress rows (segments folded back together), and the
        fault/health scopes."""
        from ..obs.status import estimate_eta

        with self._lock:
            deltas = list(self._deltas.values())
            plan = {shard: dict(info) for shard, info in self._plan.items()}
            complete = self.complete
        groups = self._grouped(deltas)
        elapsed = self.elapsed
        done = sum(d.done for d in deltas)
        successes = sum(d.successes for d in deltas)
        average_rate = done / elapsed if elapsed > 0 else 0.0
        eta = None if complete else estimate_eta(done, self.target, average_rate)
        return {
            "version": DELTA_VERSION,
            "run": dict(self.run_info),
            "wall_elapsed_s": round(elapsed, 3),
            "fleet": {
                "done": done,
                "target": self.target,
                "successes": successes,
                "success_rate": round(successes / done, 4) if done else 0.0,
                "timeouts": sum(d.timeouts for d in deltas),
                "retries": sum(d.retries for d in deltas),
                "queries_sent": sum(d.queries_sent for d in deltas),
                "in_flight": sum(d.in_flight for d in deltas),
                "rate_per_s": round(average_rate, 2),
                "eta_s": None if eta is None else round(eta, 1),
                "virtual_now": round(max((d.virtual_now for d in deltas), default=0.0), 6),
                "shards": self.shards,
                "shards_reporting": len(groups),
                "shards_complete": sum(
                    1 for shard, ds in groups.items()
                    if self._shard_complete(shard, ds, plan)
                ),
                "steals": sum(1 for d in deltas if d.stolen_from is not None),
                "resumed_tasks": sum(1 for d in deltas if d.resumed),
                "complete": complete,
            },
            "shards": [
                _shard_group_row(shard, ds, plan.get(shard, {}), elapsed)
                for shard, ds in sorted(groups.items())
            ],
            "scopes": _scope_tree(self.merged_registry()),
        }


class ScanView:
    """Single-process control-plane view: live references, fleet shape.

    Bound by :class:`~repro.framework.runner.ScanRunner` at run start to
    the scan's *live* ``ScanStats``, registry, cache, and simulator.
    Reads happen from the HTTP server thread while the simulator thread
    mutates; every read is either a plain attribute load (atomic under
    the GIL) or retried on the rare ``RuntimeError`` a resizing dict
    raises mid-iteration — the view never blocks or mutates the scan.
    """

    def __init__(self, run_info: dict | None = None, clock=time.monotonic):
        self.run_info = dict(run_info or {})
        self._clock = clock
        self._started = clock()
        self.target: int | None = None
        self._stats = None
        self._registry = None
        self._cache = None
        self._sim = None
        self._inflight = None
        self.complete = False

    def bind(self, *, stats, registry=None, cache=None, sim=None,
             inflight=None, target=None) -> "ScanView":
        """Attach the live scan objects (called by the runner)."""
        self._stats = stats
        self._registry = registry
        self._cache = cache
        self._sim = sim
        self._inflight = inflight
        if target is not None:
            self.target = target
        self._started = self._clock()
        return self

    def finish(self) -> None:
        self.complete = True

    def _retry(self, fn, default):
        """Run a read against live, mutating structures; a concurrently
        resizing dict raises RuntimeError — retry, then fall back."""
        for _ in range(8):
            try:
                return fn()
            except RuntimeError:
                continue
        return default

    def prometheus(self) -> str:
        registry = self._registry
        if registry is None or not registry.enabled:
            return ""
        return self._retry(registry.render_prometheus, "")

    def status_snapshot(self) -> dict:
        from ..obs.status import estimate_eta

        elapsed = max(0.0, self._clock() - self._started)
        stats = self._stats
        done = stats.total if stats is not None else 0
        successes = stats.successes if stats is not None else 0
        timeouts = 0
        if stats is not None:
            timeouts = self._retry(
                lambda: sum(stats.by_status.get(s, 0) for s in _TIMEOUT_STATUSES), 0
            )
        in_flight = int(self._inflight.value) if self._inflight is not None else 0
        virtual_now = float(self._sim.now) if self._sim is not None else 0.0
        average_rate = done / elapsed if elapsed > 0 else 0.0
        complete = self.complete
        eta = None if complete else estimate_eta(done, self.target, average_rate)
        shard_row = {
            "shard": 0,
            "seq": done,
            "done": done,
            "target": self.target,
            "successes": successes,
            "timeouts": timeouts,
            "retries": stats.retries_used if stats is not None else 0,
            "queries_sent": stats.queries_sent if stats is not None else 0,
            "in_flight": in_flight,
            "virtual_now": round(virtual_now, 6),
            "rate_per_s": round(average_rate, 2),
            "complete": complete,
            "segments": 1,
            "segments_done": 1 if complete else 0,
            "owner": 0,
            "workers": [0],
            "steals": 0,
            "stolen_from": None,
            "resumed": False,
        }
        scopes = {}
        if self._registry is not None and self._registry.enabled:
            scopes = self._retry(lambda: _scope_tree(self._registry), {})
        snapshot = {
            "version": DELTA_VERSION,
            "run": dict(self.run_info),
            "wall_elapsed_s": round(elapsed, 3),
            "fleet": {
                "done": done,
                "target": self.target,
                "successes": successes,
                "success_rate": round(successes / done, 4) if done else 0.0,
                "timeouts": timeouts,
                "retries": shard_row["retries"],
                "queries_sent": shard_row["queries_sent"],
                "in_flight": in_flight,
                "rate_per_s": round(average_rate, 2),
                "eta_s": None if eta is None else round(eta, 1),
                "virtual_now": round(virtual_now, 6),
                "shards": 1,
                "shards_reporting": 1 if stats is not None else 0,
                "shards_complete": 1 if complete else 0,
                "steals": 0,
                "resumed_tasks": 0,
                "complete": complete,
            },
            "shards": [shard_row] if stats is not None else [],
            "scopes": scopes,
        }
        cache = self._cache
        if cache is not None:
            snapshot["fleet"]["cache_hit_rate"] = round(cache.stats.hit_rate, 4)
        return snapshot
