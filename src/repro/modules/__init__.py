"""repro.modules — composable scan modules (Section 3.3).

Raw modules for every supported record type, lookup modules (alookup,
mxlookup, nslookup), misc modules (spf, dmarc, bind.version), the CAA
case-study module, and the all-nameservers case-study module.
"""

from .base import (
    ModuleContext,
    ScanModule,
    available_modules,
    get_module,
    register_module,
)

# Importing the implementations populates the registry.
from . import allnameservers, axfr, lookups, misc, openresolver, raw  # noqa: E402,F401
from .allnameservers import AllNameserversModule
from .axfr import AXFRModule
from .openresolver import OpenResolverModule
from .lookups import ALookupModule, MXLookupModule, NSLookupModule
from .misc import BindVersionModule, CAAModule, DMARCModule, SPFModule
from .raw import RAW_MODULE_TYPES, RawModule

__all__ = [
    "ALookupModule",
    "AXFRModule",
    "OpenResolverModule",
    "AllNameserversModule",
    "BindVersionModule",
    "CAAModule",
    "DMARCModule",
    "MXLookupModule",
    "ModuleContext",
    "NSLookupModule",
    "RAW_MODULE_TYPES",
    "RawModule",
    "SPFModule",
    "ScanModule",
    "available_modules",
    "get_module",
    "register_module",
]
