"""The --all-nameservers functionality of the Section 5 case study:
query *every* authoritative nameserver of a domain and record each
server's availability (retries needed) and answers, so redundant
deployments can be checked for consistency."""

from __future__ import annotations

from ..core import Status
from ..core.machine import SendQuery
from ..dnslib import RRType
from .base import ModuleContext, ScanModule, register_module


@register_module
class AllNameserversModule(ScanModule):
    """Per-nameserver availability and response consistency."""

    name = "ALLNS"
    qtype = RRType.A

    def lookup(self, raw_input: str, context: ModuleContext):
        name = self.parse_input(raw_input)
        ns_result = yield from context.machine().resolve(name, RRType.NS)
        if ns_result.status != Status.NOERROR or not ns_result.answers:
            return {
                "name": raw_input.strip().rstrip("."),
                "status": str(ns_result.status),
                "data": {"nameservers": [], "consistent": None},
            }

        servers = []
        for record in ns_result.answers:
            if int(record.rrtype) != int(RRType.NS):
                continue
            address_result = yield from context.machine().resolve(record.rdata.target, RRType.A)
            for address in (
                r.rdata.address
                for r in address_result.answers
                if int(r.rrtype) == int(RRType.A)
            ):
                servers.append((record.rdata.target, address))
                break  # one address per nameserver

        per_server = []
        answer_sets = []
        for ns_name, ns_ip in servers:
            tries_used = 0
            status = Status.TIMEOUT
            addresses: list[str] = []
            for attempt in range(context.config.retries + 1):
                tries_used = attempt + 1
                response = yield SendQuery(
                    server_ip=ns_ip,
                    name=name,
                    qtype=RRType.A,
                    timeout=context.config.iteration_timeout,
                )
                if response is None:
                    continue
                status = Status(str(response.rcode)) if str(response.rcode) in Status.__members__ else Status.ERROR
                addresses = sorted(
                    r.rdata.address
                    for r in response.answers
                    if int(r.rrtype) == int(RRType.A)
                )
                break
            per_server.append(
                {
                    "nameserver": ns_name.to_text(omit_final_dot=True),
                    "ip": ns_ip,
                    "tries": tries_used,
                    "status": str(status),
                    "answers": addresses,
                }
            )
            if addresses:
                answer_sets.append(tuple(addresses))

        consistent = len(set(answer_sets)) <= 1 if answer_sets else None
        return {
            "name": raw_input.strip().rstrip("."),
            "status": str(Status.NOERROR),
            "data": {
                "nameservers": per_server,
                "consistent": consistent,
                "max_tries": max((s["tries"] for s in per_server), default=0),
            },
        }
