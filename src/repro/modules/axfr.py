"""AXFR module: attempt a zone transfer (RFC 5936).

Zone transfers run over TCP and are refused by almost every properly
configured server — measuring *who still allows them* is a classic DNS
hygiene survey.  Input lines are ``zone@server_ip`` (or just a zone,
which is resolved to its nameservers first in iterative mode)."""

from __future__ import annotations

from ..core import Status
from ..core.machine import SendQuery
from ..dnslib import Name, RRType
from .base import ModuleContext, ScanModule, register_module


@register_module
class AXFRModule(ScanModule):
    """Attempt zone transfers and record the outcome."""

    name = "AXFR"
    qtype = RRType.AXFR

    def lookup(self, raw_input: str, context: ModuleContext):
        text = raw_input.strip()
        if "@" in text:
            zone_text, _, server_ip = text.partition("@")
            servers = [(server_ip.strip(), None)]
            zone = Name.from_text(zone_text.strip())
        else:
            zone = Name.from_text(text)
            ns_result = yield from context.machine().resolve(zone, RRType.NS)
            servers = []
            for record in ns_result.answers:
                if int(record.rrtype) != int(RRType.NS):
                    continue
                addr_result = yield from context.machine().resolve(record.rdata.target, RRType.A)
                for r in addr_result.answers:
                    if int(r.rrtype) == int(RRType.A):
                        servers.append((r.rdata.address, record.rdata.target))
                        break

        attempts = []
        transferred = False
        records = 0
        for server_ip, ns_name in servers:
            response = yield SendQuery(
                server_ip=server_ip,
                name=zone,
                qtype=RRType.AXFR,
                timeout=context.config.external_timeout,
                protocol="tcp",  # AXFR always rides TCP
            )
            if response is None:
                attempts.append({"server": server_ip, "status": str(Status.TIMEOUT)})
                continue
            status = str(response.rcode)
            allowed = bool(response.answers) and str(response.rcode) == "NOERROR"
            attempts.append(
                {
                    "server": server_ip,
                    "status": status,
                    "allowed": allowed,
                    "records": len(response.answers),
                }
            )
            if allowed:
                transferred = True
                records = max(records, len(response.answers))

        return {
            "name": text,
            "status": str(Status.NOERROR) if attempts else str(Status.ERROR),
            "data": {
                "transferable": transferred,
                "record_count": records,
                "attempts": attempts,
            },
        }
