"""The module interface (Section 3.2).

A module supplies the DNS-query-specific logic of a scan: which
machine(s) to run for one input line and how to shape the output row.
The framework owns everything else — concurrency, sockets, stats,
encoding — exactly as in ZDNS, so most modules are a few lines.

A module's :meth:`lookup` is a generator in the same effect protocol as
the core machines (yield :class:`~repro.core.machine.SendQuery`,
receive responses), built by composing the core machines with
``yield from``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..core import (
    ExternalMachine,
    IterativeMachine,
    LookupResult,
    ResolverConfig,
    SelectiveCache,
)
from ..dnslib import Name, RRType


@dataclass
class ModuleContext:
    """Per-scan state the framework hands to modules."""

    mode: str  # "iterative" | "external"
    root_ips: list[str] = field(default_factory=list)
    resolver_ips: list[str] = field(default_factory=list)
    cache: SelectiveCache | None = None
    config: ResolverConfig = field(default_factory=ResolverConfig)
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    #: False when nothing consumes output rows (stats-only scans):
    #: modules may skip expensive row formatting.
    build_rows: bool = True

    def machine(self):
        """The single-lookup machine appropriate for the scan mode."""
        if self.mode == "iterative":
            if self.cache is None:
                self.cache = SelectiveCache()
            return IterativeMachine(self.cache, self.root_ips, self.config, self.rng)
        return ExternalMachine(self.resolver_ips, self.config, self.rng)


class ScanModule:
    """Base class for scan modules."""

    #: Module name as used on the command line (e.g. "A", "MXLOOKUP").
    name: str = ""
    #: Record type for raw modules; None for composite modules.
    qtype: RRType | None = None

    def parse_input(self, line: str) -> Name:
        """Turn one input line into the name to query."""
        return Name.from_text(line.strip())

    def lookup(self, raw_input: str, context: ModuleContext):
        """Generator performing the lookup(s) for one input line.

        Returns a result row ``dict``; the default implementation runs
        one query of :attr:`qtype` and formats the raw answers.
        """
        name = self.parse_input(raw_input)
        result = yield from context.machine().resolve(name, self.qtype)
        if not context.build_rows:
            return {"name": raw_input, "status": str(result.status), "_result": result}
        return self.process(raw_input, result)

    def process(self, raw_input: str, result: LookupResult) -> dict:
        """Shape the module's output row (override for custom fields)."""
        row = result.to_json()
        row["name"] = raw_input.strip().rstrip(".")
        # Underscore keys are for the framework (stats) and are stripped
        # before output encoding.
        row["_result"] = result
        return row


_REGISTRY: dict[str, Callable[[], ScanModule]] = {}


def register_module(cls: type[ScanModule]) -> type[ScanModule]:
    """Class decorator adding a module to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no module name")
    _REGISTRY[cls.name.upper()] = cls
    return cls


def get_module(name: str) -> ScanModule:
    """Instantiate a registered module by (case-insensitive) name."""
    try:
        return _REGISTRY[name.upper()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown module {name!r}; available: {known}") from None


def available_modules() -> list[str]:
    """Names of every registered module, sorted."""
    return sorted(_REGISTRY)
