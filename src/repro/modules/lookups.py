"""Lookup modules (Section 3.3): friendlier interfaces than raw records.

``alookup`` follows CNAMEs to the final addresses (like nslookup);
``mxlookup`` additionally resolves each exchange's A records.
"""

from __future__ import annotations

from ..core import Status
from ..dnslib import RRType
from .base import ModuleContext, ScanModule, register_module


def _addresses(result, rrtype=RRType.A) -> list[str]:
    return [
        record.rdata.address
        for record in result.answers
        if int(record.rrtype) == int(rrtype)
    ]


@register_module
class ALookupModule(ScanModule):
    """Follow CNAMEs to the final IPv4/IPv6 addresses."""

    name = "ALOOKUP"
    qtype = RRType.A

    #: Set by the CLI's --ipv6 flag.
    include_ipv6 = False

    def lookup(self, raw_input: str, context: ModuleContext):
        name = self.parse_input(raw_input)
        machine = context.machine()
        result = yield from machine.resolve(name, RRType.A)
        row = {
            "name": raw_input.strip().rstrip("."),
            "status": str(result.status),
            "data": {"ipv4_addresses": _addresses(result)},
        }
        if self.include_ipv6:
            # Same machine as the IPv4 leg: shared cache/health/rng
            # state, and the AAAA leg's query and retry accounting folds
            # into the row's result instead of vanishing.
            result6 = yield from machine.resolve(name, RRType.AAAA)
            row["data"]["ipv6_addresses"] = _addresses(result6, RRType.AAAA)
            result.queries_sent += result6.queries_sent
            result.retries_used += result6.retries_used
        row["_result"] = result
        return row


@register_module
class MXLookupModule(ScanModule):
    """MX lookup plus the A records of every exchange (Section 3.3)."""

    name = "MXLOOKUP"
    qtype = RRType.MX

    def lookup(self, raw_input: str, context: ModuleContext):
        name = self.parse_input(raw_input)
        result = yield from context.machine().resolve(name, RRType.MX)
        exchanges = []
        for record in result.answers:
            if int(record.rrtype) != int(RRType.MX):
                continue
            exchange_result = yield from context.machine().resolve(
                record.rdata.exchange, RRType.A
            )
            exchanges.append(
                {
                    "name": record.rdata.exchange.to_text(omit_final_dot=True),
                    "preference": record.rdata.preference,
                    "ipv4_addresses": _addresses(exchange_result),
                    "status": str(exchange_result.status),
                }
            )
        row = {
            "name": raw_input.strip().rstrip("."),
            "status": str(result.status),
            "data": {"exchanges": exchanges},
            "_result": result,
        }
        return row


@register_module
class NSLookupModule(ScanModule):
    """NS lookup plus the address of every listed nameserver."""

    name = "NSLOOKUP"
    qtype = RRType.NS

    def lookup(self, raw_input: str, context: ModuleContext):
        name = self.parse_input(raw_input)
        result = yield from context.machine().resolve(name, RRType.NS)
        servers = []
        for record in result.answers:
            if int(record.rrtype) != int(RRType.NS):
                continue
            address_result = yield from context.machine().resolve(
                record.rdata.target, RRType.A
            )
            servers.append(
                {
                    "name": record.rdata.target.to_text(omit_final_dot=True),
                    "ipv4_addresses": _addresses(address_result),
                }
            )
        return {
            "name": raw_input.strip().rstrip("."),
            "status": str(result.status),
            "data": {"servers": servers},
            "_result": result,
        }
