"""Misc modules (Section 3.3): SPF/DMARC text-record filters and the
bind.version resolver-fingerprint module, plus the CAA analysis module
of Section 6."""

from __future__ import annotations

import re

from ..core import Status
from ..core.machine import SendQuery
from ..dnslib import Name, RRType
from ..dnslib.rdata.security import CAA as CAARecord
from .base import ModuleContext, ScanModule, register_module

SPF_PREFIX = re.compile(rb"(?i)^v=spf1")
DMARC_PREFIX = re.compile(rb"(?i)^v=DMARC1")


class TxtFilterModule(ScanModule):
    """TXT lookup filtered by a prefix regexp (the Appendix B shape)."""

    prefix: re.Pattern
    field: str = "record"
    qtype = RRType.TXT

    def query_name(self, name: Name) -> Name:
        return name

    def lookup(self, raw_input: str, context: ModuleContext):
        name = self.query_name(self.parse_input(raw_input))
        result = yield from context.machine().resolve(name, RRType.TXT)
        matched = None
        for record in result.answers:
            if int(record.rrtype) != int(RRType.TXT):
                continue
            text = record.rdata.joined()
            if self.prefix.match(text):
                matched = text.decode("utf-8", "replace")
                break
        status = result.status
        if status == Status.NOERROR and matched is None:
            status = Status.ERROR  # ZDNS: NOERROR without the record is an error
        return {
            "name": raw_input.strip().rstrip("."),
            "status": str(status),
            "data": {self.field: matched},
            "_result": result,
        }


@register_module
class SPFModule(TxtFilterModule):
    """Sender Policy Framework lookup (the paper's example module)."""

    name = "SPFLOOKUP"
    prefix = SPF_PREFIX
    field = "spf"


@register_module
class DMARCModule(TxtFilterModule):
    """DMARC policy lookup at _dmarc.<name>."""

    name = "DMARC"
    prefix = DMARC_PREFIX
    field = "dmarc"

    def query_name(self, name: Name) -> Name:
        return Name.from_text("_dmarc").concatenate(name)


@register_module
class BindVersionModule(ScanModule):
    """CHAOS-class version.bind query against a server IP."""

    name = "BINDVERSION"
    qtype = RRType.TXT

    def lookup(self, raw_input: str, context: ModuleContext):
        server_ip = raw_input.strip()
        version = None
        status = Status.TIMEOUT
        for _attempt in range(context.config.retries + 1):
            response = yield SendQuery(
                server_ip=server_ip,
                name=Name.from_text("version.bind"),
                qtype=RRType.TXT,
                timeout=context.config.external_timeout,
                qclass=3,  # CHAOS
            )
            if response is None:
                continue
            status = Status.NOERROR
            for record in response.answers:
                if int(record.rrtype) == int(RRType.TXT):
                    version = record.rdata.joined().decode("utf-8", "replace")
            break
        return {
            "name": server_ip,
            "status": str(status),
            "data": {"version": version},
        }


@register_module
class CAAModule(ScanModule):
    """CAA lookup with RFC 8659 CNAME chasing and tag validation
    (drives the Section 6 case study)."""

    name = "CAALOOKUP"
    qtype = RRType.CAA

    def lookup(self, raw_input: str, context: ModuleContext):
        name = self.parse_input(raw_input)
        result = yield from context.machine().resolve(name, RRType.CAA)
        records = []
        followed_cname = False
        for record in result.answers:
            if int(record.rrtype) == int(RRType.CNAME):
                followed_cname = True
                continue
            if int(record.rrtype) != int(RRType.CAA):
                continue
            rdata: CAARecord = record.rdata
            records.append(
                {
                    "flag": rdata.flags,
                    "tag": rdata.tag.decode("ascii", "replace"),
                    "value": rdata.value.decode("utf-8", "replace"),
                    "valid_tag": rdata.tag_is_valid()
                    and rdata.tag in CAARecord.KNOWN_TAGS,
                }
            )
        return {
            "name": raw_input.strip().rstrip("."),
            "status": str(result.status),
            "data": {
                "records": records,
                "followed_cname": followed_cname,
                "has_caa": bool(records),
            },
            "_result": result,
        }
