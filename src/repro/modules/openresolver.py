"""Open-resolver detection module.

A classic measurement (the paper cites 6M recursive resolvers on the
public Internet): probe a server with a recursion-desired query for a
name it is not authoritative for.  A recursive answer marks an open
resolver; REFUSED or silence marks a closed one.

Input lines are server IPs; ``probe_name`` is the out-of-zone name the
probe asks for."""

from __future__ import annotations

from ..core import Status
from ..core.machine import SendQuery
from ..dnslib import Name, Rcode, RRType
from .base import ModuleContext, ScanModule, register_module


@register_module
class OpenResolverModule(ScanModule):
    """Classify servers as open/closed recursive resolvers."""

    name = "OPENRESOLVER"
    qtype = RRType.A

    #: Out-of-zone name the probe queries (override per scan).
    probe_name = "www.d1000000-0.com"

    def lookup(self, raw_input: str, context: ModuleContext):
        server_ip = raw_input.strip()
        name = Name.from_text(self.probe_name)
        response = None
        for _attempt in range(context.config.retries + 1):
            response = yield SendQuery(
                server_ip=server_ip,
                name=name,
                qtype=RRType.A,
                timeout=context.config.external_timeout,
                recursion_desired=True,
            )
            if response is not None:
                break

        if response is None:
            classification = "unresponsive"
            status = Status.TIMEOUT
        elif response.flags.recursion_available and response.rcode in (
            Rcode.NOERROR,
            Rcode.NXDOMAIN,
        ):
            classification = "open"
            status = Status.NOERROR
        elif response.rcode == Rcode.REFUSED:
            classification = "closed"
            status = Status.NOERROR
        else:
            classification = "non-recursive"
            status = Status.NOERROR

        return {
            "name": server_ip,
            "status": str(status),
            "data": {
                "classification": classification,
                "recursion_available": (
                    response.flags.recursion_available if response else None
                ),
                "rcode": str(response.rcode) if response else None,
                "answers": len(response.answers) if response else 0,
            },
        }
