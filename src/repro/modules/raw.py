"""Raw DNS modules: one per record type, dig-style but JSON out.

The paper ships a module for every record type in its footnote; here
they are generated from the registered rdata codecs, each a tiny
subclass exactly like ZDNS's few-line modules.
"""

from __future__ import annotations

from ..dnslib import Name, RRType, name_from_ipv4_ptr
from .base import ScanModule, register_module

#: Types that get an auto-generated raw module.
RAW_MODULE_TYPES = [
    RRType.A, RRType.AAAA, RRType.AFSDB, RRType.ANY, RRType.ATMA, RRType.AVC,
    RRType.CAA, RRType.CDNSKEY, RRType.CDS, RRType.CERT, RRType.CNAME,
    RRType.CSYNC, RRType.DHCID, RRType.DNSKEY, RRType.DS, RRType.EID,
    RRType.EUI48, RRType.EUI64, RRType.GID, RRType.GPOS, RRType.HINFO,
    RRType.HIP, RRType.ISDN, RRType.KEY, RRType.KX, RRType.L32, RRType.L64,
    RRType.LOC, RRType.LP, RRType.MB, RRType.MD, RRType.MF, RRType.MG,
    RRType.MR, RRType.MX, RRType.NAPTR, RRType.NID, RRType.NINFO, RRType.NS,
    RRType.NSAPPTR, RRType.NSEC, RRType.NSEC3PARAM, RRType.NXT,
    RRType.OPENPGPKEY, RRType.PTR, RRType.PX, RRType.RP, RRType.RRSIG,
    RRType.RT, RRType.SMIMEA, RRType.SOA, RRType.SPF, RRType.SRV,
    RRType.SSHFP, RRType.SVCB, RRType.HTTPS, RRType.TALINK, RRType.TKEY, RRType.TLSA, RRType.TXT,
    RRType.UID, RRType.UINFO, RRType.UNSPEC, RRType.URI,
]


class RawModule(ScanModule):
    """Query one record type and emit the raw parsed answers."""

    qtype: RRType


def _make_raw_module(rrtype: RRType) -> type[RawModule]:
    cls = type(
        f"{rrtype.name.capitalize()}Module",
        (RawModule,),
        {
            "name": rrtype.name,
            "qtype": rrtype,
            "__doc__": f"Raw {rrtype.name} record lookup.",
        },
    )
    return register_module(cls)


RAW_MODULES = {rrtype: _make_raw_module(rrtype) for rrtype in RAW_MODULE_TYPES}


@register_module
class PtrIpModule(RawModule):
    """PTR lookups that accept plain IPv4 addresses as input
    (``1.2.3.4`` instead of ``4.3.2.1.in-addr.arpa``)."""

    name = "PTRIP"
    qtype = RRType.PTR

    def parse_input(self, line: str) -> Name:
        text = line.strip()
        if text.count(".") == 3 and all(p.isdigit() for p in text.split(".")):
            return name_from_ipv4_ptr(text)
        return Name.from_text(text)
