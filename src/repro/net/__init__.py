"""repro.net — the network substrate.

A discrete-event simulator (virtual clock, routines, simulated sockets,
latency/loss/rate-limit/CPU models) that stands in for the live Internet
the paper measured, plus a real UDP transport for loopback/production
use.
"""

from .cpu import CPUModel, GCModel
from .links import (
    CapacityQueue,
    GilbertElliottLoss,
    LatencyModel,
    LossModel,
    TokenBucket,
)
from .live import UDPServer, UDPTransport
from .sim import (
    HangError,
    Routine,
    SimFuture,
    SimulationError,
    Simulator,
    TimerHandle,
    derive_seed,
)
from .sockets import (
    DEFAULT_PORTS_PER_IP,
    NetworkStats,
    PortExhaustedError,
    ServerReply,
    SimNetwork,
    SimServer,
    SimUDPSocket,
    SourceIPPool,
)

__all__ = [
    "CPUModel",
    "CapacityQueue",
    "DEFAULT_PORTS_PER_IP",
    "GCModel",
    "GilbertElliottLoss",
    "HangError",
    "LatencyModel",
    "LossModel",
    "NetworkStats",
    "PortExhaustedError",
    "Routine",
    "ServerReply",
    "SimFuture",
    "SimNetwork",
    "SimServer",
    "SimUDPSocket",
    "SimulationError",
    "Simulator",
    "SourceIPPool",
    "TimerHandle",
    "TokenBucket",
    "UDPServer",
    "UDPTransport",
    "derive_seed",
]

from .encrypted import EncryptedTransportParams, SimEncryptedSocket  # noqa: E402

__all__ += ["EncryptedTransportParams", "SimEncryptedSocket"]
