"""Multi-core CPU queueing model and garbage-collection pause injection.

The paper runs on 24 virtual cores and observes (a) one core saturating
at roughly 2K ZDNS threads, (b) total throughput plateauing near 50K
threads, and (c) *more frequent* garbage collection improving throughput
(section 3.4).  Both effects are queueing effects: per-query CPU work
serialises on a finite core pool, and long GC pauses push in-flight
queries past their timeouts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .sim import SimFuture, Simulator


@dataclass
class GCModel:
    """Stop-the-world garbage collection as periodic full-pool pauses.

    A collection starts at every multiple of ``period`` and stalls *all*
    cores for ``pause`` seconds: work scheduled inside a stall window
    waits for it to end, and work interrupted by a collection finishes
    ``pause`` later.  Quadrupling GC frequency in the paper = period/4
    with pause/4 here: same total overhead, but short pauses slot
    between requests instead of blowing through socket timeouts.
    """

    period: float
    pause: float

    def apply(self, start: float, cost: float) -> tuple[float, float]:
        """(start, finish) of ``cost`` seconds of work beginning no
        earlier than ``start``, with stop-the-world stalls applied."""
        if self.period <= 0 or self.pause <= 0:
            return start, start + cost
        cycle = int(start // self.period)
        if cycle >= 1 and start < cycle * self.period + self.pause:
            start = cycle * self.period + self.pause
        finish = start + cost
        next_collection = (int(start // self.period) + 1) * self.period
        if finish > next_collection:
            finish += self.pause
        return start, finish

    def pause_before(self, start: float, finish: float) -> float:
        """Total GC stall added to work occupying [start, finish)."""
        adjusted_start, adjusted_finish = self.apply(start, finish - start)
        return adjusted_finish - finish


class CPUModel:
    """A pool of identical cores with FIFO queueing per core.

    ``execute(cost)`` returns a future that resolves once ``cost``
    seconds of CPU time have been served on the earliest-free core.
    Callers accumulate queueing delay once offered load exceeds
    ``cores / mean_cost`` operations per second — this is what produces
    the paper's throughput plateaus.
    """

    def __init__(self, sim: Simulator, cores: int = 24, gc: GCModel | None = None):
        if cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.cores = cores
        self.gc = gc
        self._free_at = [0.0] * cores
        heapq.heapify(self._free_at)
        self.busy_seconds = 0.0
        self.operations = 0

    def occupy(self, cost: float) -> float:
        """Claim ``cost`` seconds on the earliest-free core; returns the
        delay from now until the work completes (0 when uncontended)."""
        start = max(self.sim.now, self._free_at[0])
        if self.gc is not None:
            start, finish = self.gc.apply(start, cost)
        else:
            finish = start + cost
        heapq.heapreplace(self._free_at, finish)
        self.busy_seconds += cost
        self.operations += 1
        return finish - self.sim.now

    def execute(self, cost: float) -> SimFuture:
        """Schedule ``cost`` seconds of CPU work; resolves at completion."""
        delay = self.occupy(cost)
        future = SimFuture()
        self.sim._at(self.sim.now + delay, lambda: future.set_result(None))
        return future

    def charge(self, cost: float) -> SimFuture:
        """Alias used by client code: charge CPU for packet work."""
        return self.execute(cost)

    def utilisation(self, elapsed: float) -> float:
        """Fraction of total core-seconds spent busy over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * self.cores))
