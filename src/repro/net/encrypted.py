"""Encrypted DNS transports (DoT / DoH) — the paper's Section 7 future
work, implemented as a simulation model.

Encrypted DNS forgoes the raw-UDP-socket optimisation: every channel
needs a TCP handshake plus a TLS handshake (extra round trips and
asymmetric-crypto CPU), and each query pays symmetric-crypto and
framing overhead.  The proposed mitigation — reusing TLS connections
across resolutions — is modelled via a per-destination channel pool, so
the cost/benefit the paper anticipates can be measured
(``bench_ext_encrypted``)."""

from __future__ import annotations

from dataclasses import dataclass

from ..dnslib import Message
from .cpu import CPUModel
from .sim import SimFuture
from .sockets import SimNetwork, SimUDPSocket, SourceIPPool


@dataclass(frozen=True)
class EncryptedTransportParams:
    """Cost model for a DoT/DoH-style channel."""

    #: Round trips to establish the channel (TCP + TLS 1.3 = 2).
    handshake_rtts: float = 2.0
    #: Asymmetric-crypto CPU per handshake (key exchange, certificate
    #: verification).
    handshake_cpu: float = 1.2e-3
    #: Symmetric crypto + framing CPU per query/response pair.
    per_query_cpu: float = 60e-6
    #: Idle timeout after which a kept-alive channel is torn down.
    idle_timeout: float = 10.0

    @classmethod
    def dot(cls) -> "EncryptedTransportParams":
        return cls()

    @classmethod
    def doh(cls) -> "EncryptedTransportParams":
        # HTTP framing adds per-query work on top of TLS
        return cls(per_query_cpu=95e-6, handshake_cpu=1.3e-3)


class SimEncryptedSocket:
    """A DoT/DoH client endpoint over the simulated network.

    With ``reuse_connections=True`` an established channel to a
    destination is kept alive and reused (the paper's proposed
    optimisation); otherwise every query pays the full handshake.
    """

    def __init__(
        self,
        network: SimNetwork,
        pool: SourceIPPool,
        params: EncryptedTransportParams | None = None,
        cpu: CPUModel | None = None,
        reuse_connections: bool = True,
    ):
        self.network = network
        self.params = params or EncryptedTransportParams.dot()
        self.cpu = cpu
        self.reuse_connections = reuse_connections
        self._udp = SimUDPSocket(network, pool)  # carries the bound (ip, port)
        #: destination ip -> time the channel was last used
        self._channels: dict[str, float] = {}
        self.handshakes = 0
        self.queries = 0

    @property
    def source_ip(self) -> str:
        return self._udp.source_ip

    def _channel_open(self, dst_ip: str) -> bool:
        if not self.reuse_connections:
            return False
        last_used = self._channels.get(dst_ip)
        if last_used is None:
            return False
        if self.network.sim.now - last_used > self.params.idle_timeout:
            del self._channels[dst_ip]
            return False
        return True

    def query(self, dst_ip: str, message: Message, timeout: float) -> SimFuture:
        """Issue one encrypted query; resolves to the response or None.

        Composes: (optional) handshake latency+CPU, per-query crypto
        CPU, then a reliable (TCP-like) exchange.
        """
        sim = self.network.sim
        self.queries += 1
        result = SimFuture()

        def routine():
            fresh = not self._channel_open(dst_ip)
            if fresh:
                self.handshakes += 1
                if self.cpu is not None:
                    yield self.cpu.execute(self.params.handshake_cpu)
            if self.cpu is not None:
                yield self.cpu.execute(self.params.per_query_cpu)
            # a fresh channel pays TCP+TLS setup round trips; a warm one
            # is a single framed exchange
            extra_rtts = self.params.handshake_rtts if fresh else 0.0
            response = yield self.network.query_stream(
                self.source_ip, dst_ip, message, timeout, extra_rtts
            )
            if response is not None and self.reuse_connections:
                self._channels[dst_ip] = sim.now
            return response

        def finish(fut: SimFuture) -> None:
            try:
                result.set_result(fut.result())
            except BaseException as error:  # surface crashes
                result.set_exception(error)

        sim.spawn(routine()).add_done_callback(finish)
        return result

    def query_tcp(self, dst_ip: str, message: Message, timeout: float) -> SimFuture:
        """Encrypted transports are already stream-based."""
        return self.query(dst_ip, message, timeout)

    def close(self) -> None:
        self._udp.close()
        self._channels.clear()
