"""Network path models: latency distributions, packet loss, and
per-client token-bucket rate limiting."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Log-normal round-trip-time distribution.

    Real resolver RTTs are right-skewed: a dense mode near the median
    with a long tail.  ``median`` is the RTT in seconds; ``sigma``
    controls tail weight.
    """

    median: float
    sigma: float = 0.35
    floor: float = 0.001

    def sample(self, rng: random.Random) -> float:
        rtt = self.median * math.exp(rng.gauss(0.0, self.sigma))
        return max(self.floor, rtt)


@dataclass(frozen=True)
class LossModel:
    """Independent per-packet loss.

    **Per-direction semantics.**  ``probability`` is the chance that one
    *packet* is lost, and the simulated UDP exchange draws it once per
    direction — once for the request and once for the response (see
    ``SimNetwork._query``).  A ``LossModel(p)`` therefore yields an
    end-to-end exchange failure probability of ``1 - (1 - p)**2``
    (:attr:`round_trip_probability`), not ``p``.  Use
    :meth:`for_round_trip` when a scenario is specified by its desired
    *exchange* loss rate; ``LossModel(0.0)`` composes trivially either
    way (both draws are no-ops).
    """

    probability: float = 0.0

    def dropped(self, rng: random.Random) -> bool:
        return self.probability > 0 and rng.random() < self.probability

    @property
    def round_trip_probability(self) -> float:
        """Effective probability that a request/response exchange fails
        when this model is drawn independently in each direction."""
        return 1.0 - (1.0 - self.probability) ** 2

    @classmethod
    def for_round_trip(cls, exchange_loss: float) -> "LossModel":
        """Build the per-direction model whose two independent draws
        produce ``exchange_loss`` end-to-end: ``p = 1 - sqrt(1 - L)``."""
        if not 0.0 <= exchange_loss < 1.0:
            raise ValueError("exchange_loss must be in [0, 1)")
        return cls(1.0 - math.sqrt(1.0 - exchange_loss))


class GilbertElliottLoss:
    """Correlated (bursty) packet loss: a two-state Markov chain.

    The classic Gilbert–Elliott channel: a *good* state with loss
    ``loss_good`` and a *bad* state with loss ``loss_bad``; each packet
    first advances the chain (``p_enter``: good→bad, ``p_exit``:
    bad→good), then draws loss at the current state's rate.  Expected
    burst length is ``1 / p_exit`` packets; stationary bad-state
    occupancy is ``p_enter / (p_enter + p_exit)``.

    Unlike :class:`LossModel` this is *stateful* — the fault injector
    keeps one chain per (directive, server) so bursts correlate per
    destination, which is what distinguishes an outage from background
    noise.
    """

    __slots__ = ("p_enter", "p_exit", "loss_good", "loss_bad", "bad")

    def __init__(
        self,
        p_enter: float,
        p_exit: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        start_bad: bool = False,
    ):
        for name, value in (
            ("p_enter", p_enter), ("p_exit", p_exit),
            ("loss_good", loss_good), ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = start_bad

    def dropped(self, rng: random.Random) -> bool:
        """Advance the chain one packet and draw loss at the new state."""
        if self.bad:
            if self.p_exit and rng.random() < self.p_exit:
                self.bad = False
        else:
            if self.p_enter and rng.random() < self.p_enter:
                self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return rng.random() < rate


class TokenBucket:
    """Token-bucket rate limiter over virtual time.

    Used to model Google Public DNS's per-client-IP rate limiting [2]:
    clients exceeding ``rate`` queries/second have excess queries
    dropped (Google drops rather than SERVFAILs).
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self._tokens = self.burst
        self._updated = 0.0

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens at virtual time ``now`` if available."""
        if now > self._updated:
            self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False


class CapacityQueue:
    """A server's finite service capacity over virtual time.

    Models an upstream resolver that serves at most ``rate`` queries per
    second with a bounded backlog: arrivals that would queue longer than
    ``max_backlog`` seconds are dropped (the MassDNS overload failure
    mode in Table 2).

    ``admit(now)`` returns the extra queueing delay in seconds, or
    ``None`` when the backlog is full and the query is dropped.
    """

    def __init__(self, rate: float, max_backlog: float = 2.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.max_backlog = max_backlog
        self._next_free = 0.0
        self.served = 0
        self.dropped = 0

    def admit(self, now: float) -> float | None:
        start = max(now, self._next_free)
        delay = start - now
        if delay > self.max_backlog:
            self.dropped += 1
            return None
        self._next_free = start + 1.0 / self.rate
        self.served += 1
        return delay
