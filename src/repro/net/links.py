"""Network path models: latency distributions, packet loss, and
per-client token-bucket rate limiting."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Log-normal round-trip-time distribution.

    Real resolver RTTs are right-skewed: a dense mode near the median
    with a long tail.  ``median`` is the RTT in seconds; ``sigma``
    controls tail weight.
    """

    median: float
    sigma: float = 0.35
    floor: float = 0.001

    def sample(self, rng: random.Random) -> float:
        rtt = self.median * math.exp(rng.gauss(0.0, self.sigma))
        return max(self.floor, rtt)


@dataclass(frozen=True)
class LossModel:
    """Independent per-packet loss."""

    probability: float = 0.0

    def dropped(self, rng: random.Random) -> bool:
        return self.probability > 0 and rng.random() < self.probability


class TokenBucket:
    """Token-bucket rate limiter over virtual time.

    Used to model Google Public DNS's per-client-IP rate limiting [2]:
    clients exceeding ``rate`` queries/second have excess queries
    dropped (Google drops rather than SERVFAILs).
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self._tokens = self.burst
        self._updated = 0.0

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens at virtual time ``now`` if available."""
        if now > self._updated:
            self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False


class CapacityQueue:
    """A server's finite service capacity over virtual time.

    Models an upstream resolver that serves at most ``rate`` queries per
    second with a bounded backlog: arrivals that would queue longer than
    ``max_backlog`` seconds are dropped (the MassDNS overload failure
    mode in Table 2).

    ``admit(now)`` returns the extra queueing delay in seconds, or
    ``None`` when the backlog is full and the query is dropped.
    """

    def __init__(self, rate: float, max_backlog: float = 2.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.max_backlog = max_backlog
        self._next_free = 0.0
        self.served = 0
        self.dropped = 0

    def admit(self, now: float) -> float | None:
        start = max(now, self._next_free)
        delay = start - now
        if delay > self.max_backlog:
            self.dropped += 1
            return None
        self._next_free = start + 1.0 / self.rate
        self.served += 1
        return delay
