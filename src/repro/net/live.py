"""Real-socket transport: the toolkit working over an actual network.

The simulator reproduces the paper's performance claims; this module
makes the same resolver logic usable against real servers.  One
long-lived UDP socket per transport (ZDNS's socket-reuse optimisation),
plus a small threaded UDP server used by the tests and examples to
serve simulated zones over loopback.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable

from ..dnslib import Message, WireError, peek_txid

#: Buffer large enough for any EDNS payload we advertise.
_RECV_SIZE = 4096


class UDPTransport:
    """A long-lived UDP socket for issuing DNS queries.

    Thread-safe for sequential use; one transport per worker thread
    mirrors ZDNS's one-socket-per-routine design.
    """

    def __init__(self, bind_ip: str = "0.0.0.0", bind_port: int = 0):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((bind_ip, bind_port))

    @property
    def bound_address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    def query(self, message: Message, server: tuple[str, int], timeout: float = 3.0) -> Message | None:
        """Send one query and wait for the matching response (by txid).

        Returns ``None`` on timeout; raises WireError only if every
        received packet within the window is unparseable.
        """
        wire = message.to_wire()
        want_txid = message.id & 0xFFFF
        self._sock.settimeout(timeout)
        self._sock.sendto(wire, server)
        while True:
            try:
                data, _ = self._sock.recvfrom(_RECV_SIZE)
            except socket.timeout:
                return None
            # peek the transaction id first: wrong-txid datagrams
            # (cross-talk, late retransmissions) are discarded without
            # ever paying for a full message decode
            try:
                if peek_txid(data) != want_txid:
                    continue
                response = Message.from_wire(data)
            except WireError:
                continue  # garbage or cross-talk: keep listening
            return response

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "UDPTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


Handler = Callable[[Message, tuple[str, int]], Message | None]


class UDPServer:
    """A minimal threaded UDP DNS server for loopback testing."""

    def __init__(self, handler: Handler, bind_ip: str = "127.0.0.1", bind_port: int = 0):
        self.handler = handler
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((bind_ip, bind_port))
        self._sock.settimeout(0.1)
        self._running = False
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    def start(self) -> "UDPServer":
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def _serve(self) -> None:
        while self._running:
            try:
                data, client = self._sock.recvfrom(_RECV_SIZE)
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                query = Message.from_wire(data)
            except WireError:
                continue
            response = self.handler(query, client)
            if response is not None:
                try:
                    self._sock.sendto(response.to_wire(max_size=1232), client)
                except OSError:
                    return

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._sock.close()

    def __enter__(self) -> "UDPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
