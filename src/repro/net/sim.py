"""Discrete-event simulator: virtual clock, event loop, and lightweight
routines.

The paper's throughput phenomena (thread scaling, socket limits, rate
limiting) are resource-contention effects, not wall-clock effects, so we
reproduce them in *virtual time*: tens of thousands of concurrent "Go
routines" become generator coroutines scheduled by :class:`Simulator`.

A routine is a generator that yields either

* a ``float``/``int`` — sleep that many virtual seconds, or
* a :class:`SimFuture` — resume when the future resolves; the future's
  result is sent into the generator (exceptions are thrown in).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

Routine = Generator[Any, Any, Any]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. waiting on a yielded non-future)."""


class SimFuture:
    """A single-assignment result container for routine synchronisation."""

    __slots__ = ("_done", "_result", "_exception", "_callbacks")

    def __init__(self):
        self._done = False
        self._result = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved")
        if self._exception is not None:
            raise self._exception
        return self._result

    def set_result(self, value: Any) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Simulator:
    """A priority-queue event loop over a virtual clock."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._live_routines = 0

    # -- raw event scheduling -------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, fn))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    # -- routines -------------------------------------------------------------

    def spawn(self, routine: Routine) -> SimFuture:
        """Start a routine now; returns a future for its return value."""
        outcome = SimFuture()
        self._live_routines += 1
        self.call_at(self.now, lambda: self._step(routine, outcome, None, None))
        return outcome

    def _step(
        self,
        routine: Routine,
        outcome: SimFuture,
        value: Any,
        exc: BaseException | None,
    ) -> None:
        try:
            yielded = routine.throw(exc) if exc is not None else routine.send(value)
        except StopIteration as stop:
            self._live_routines -= 1
            outcome.set_result(stop.value)
            return
        except BaseException as error:  # routine crashed
            self._live_routines -= 1
            outcome.set_exception(error)
            return
        if isinstance(yielded, SimFuture):
            yielded.add_done_callback(
                lambda fut: self._resume_from_future(routine, outcome, fut)
            )
        elif isinstance(yielded, (int, float)):
            self.call_later(float(yielded), lambda: self._step(routine, outcome, None, None))
        else:
            self._live_routines -= 1
            outcome.set_exception(
                SimulationError(f"routine yielded unsupported {type(yielded).__name__}")
            )

    def _resume_from_future(self, routine: Routine, outcome: SimFuture, fut: SimFuture) -> None:
        try:
            value = fut.result()
        except BaseException as error:
            self.call_at(self.now, lambda err=error: self._step(routine, outcome, None, err))
            return
        self.call_at(self.now, lambda: self._step(routine, outcome, value, None))

    # -- running --------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Process events until the heap drains or the clock passes ``until``."""
        while self._heap:
            when, _, fn = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = when
            fn()
        if until is not None:
            self.now = max(self.now, until)

    def run_all(self, routines: Iterable[Routine]) -> list[Any]:
        """Spawn every routine, run to completion, and return their results."""
        futures = [self.spawn(routine) for routine in routines]
        self.run()
        return [future.result() for future in futures]

    def sleep_future(self, delay: float) -> SimFuture:
        """A future resolving after ``delay`` virtual seconds."""
        future = SimFuture()
        self.call_later(delay, lambda: future.set_result(None))
        return future

    def timeout_race(self, future: SimFuture, timeout: float) -> SimFuture:
        """Resolve with ``future``'s result, or ``None`` after ``timeout``."""
        race = SimFuture()

        def on_future(fut: SimFuture) -> None:
            if not race.done:
                try:
                    race.set_result(fut.result())
                except BaseException as error:
                    race.set_exception(error)

        def on_timeout() -> None:
            if not race.done:
                race.set_result(None)

        future.add_done_callback(on_future)
        self.call_later(timeout, on_timeout)
        return race
