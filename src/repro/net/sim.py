"""Discrete-event simulator: virtual clock, event loop, and lightweight
routines.

The paper's throughput phenomena (thread scaling, socket limits, rate
limiting) are resource-contention effects, not wall-clock effects, so we
reproduce them in *virtual time*: tens of thousands of concurrent "Go
routines" become generator coroutines scheduled by :class:`Simulator`.

A routine is a generator that yields either

* a ``float``/``int`` — sleep that many virtual seconds, or
* a :class:`SimFuture` — resume when the future resolves; the future's
  result is sent into the generator (exceptions are thrown in).

Scheduling is split across two structures, asyncio-style:

* a *ready queue* (deque) holds work due **now** — ``call_soon``,
  routine spawns, and future resumptions never touch the heap;
* a binary heap holds future timers.  ``call_at``/``call_later`` return
  a cancellable :class:`TimerHandle`; cancelled entries are dropped
  lazily on pop, and the heap is compacted wholesale once cancelled
  entries dominate, so a scan of N queries keeps O(live) — not O(N) —
  events resident.

Both structures share one monotonically increasing sequence number, so
the execution order of same-timestamp events is *identical* to a single
FIFO priority queue: determinism is a hard requirement (every simulated
result must be bit-identical for a given seed) and the split is purely
a constant-factor optimisation.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable

Routine = Generator[Any, Any, Any]


def derive_seed(base: int, *streams: int | str) -> int:
    """Derive an independent RNG seed from ``base`` and stream labels.

    The multi-process shard executor gives every shard its own
    simulation (network RNG, driver txids, cache eviction RNG, chaos
    RNG).  Seeding those ``base + shard`` apart would correlate the
    streams — Mersenne Twister states seeded with nearby integers start
    out similar — so instead the base seed and the labels are hashed
    into a fresh 63-bit seed.  Deterministic across processes and
    platforms (pure SHA-256, no ``PYTHONHASHSEED`` dependence), so a
    sharded run replays byte-identically.

    >>> derive_seed(2022, "net", 0) == derive_seed(2022, "net", 0)
    True
    >>> derive_seed(2022, "net", 0) != derive_seed(2022, "net", 1)
    True
    """
    text = ":".join(str(part) for part in (base, *streams))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1

#: Compact the timer heap when at least this many cancelled entries are
#: pending *and* they outnumber the live ones (asyncio uses the same
#: strategy); below the floor, lazy pop-time dropping is cheaper.
_COMPACTION_FLOOR = 64


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. waiting on a yielded non-future)."""


class HangError(SimulationError):
    """The event budget of a bounded run was exhausted (see
    ``Simulator.run(max_events=...)``): the schedule kept producing work
    past the point the caller considered a hang."""


class SimFuture:
    """A single-assignment result container for routine synchronisation."""

    __slots__ = ("_done", "_result", "_exception", "_callbacks", "abandoned")

    def __init__(self):
        self._done = False
        self._result = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []
        #: Set by timeout_race when the waiter gave up on this future:
        #: producers (the network reply path) may then skip expensive
        #: work — e.g. decoding a reply nobody will ever read.
        self.abandoned = False

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved")
        if self._exception is not None:
            raise self._exception
        return self._result

    def set_result(self, value: Any) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class TimerHandle:
    """A scheduled callback that can be cancelled before it fires.

    Cancellation is O(1): the entry is flagged and skipped when popped
    (or swept out by a heap compaction).  Cancelling an already-fired
    or already-cancelled handle is a no-op.
    """

    __slots__ = ("when", "seq", "fn", "cancelled", "finished", "_sim")

    def __init__(self, when: float, seq: int, fn: Callable[[], None], sim: "Simulator"):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.finished = False
        self._sim = sim

    def cancel(self) -> bool:
        """Cancel the callback; returns True if this call cancelled it."""
        if self.cancelled or self.finished:
            return False
        self.cancelled = True
        self.fn = None  # break closure cycles early
        self._sim._timer_cancelled()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.finished else "pending")
        return f"TimerHandle(when={self.when}, seq={self.seq}, {state})"


class Simulator:
    """A ready-queue + timer-heap event loop over a virtual clock."""

    def __init__(self):
        self.now: float = 0.0
        #: (when, seq, handle) triples — tuple heads keep heap sifting
        #: on the C fast path; (when, seq) is unique so the handle is
        #: never compared
        self._heap: list[tuple[float, int, TimerHandle]] = []
        self._ready: deque[TimerHandle] = deque()
        self._sequence = 0
        self._live_routines = 0
        self._cancelled_pending = 0  # cancelled entries still in the heap
        # observability counters (surfaced in scan reports via
        # framework.stats) — future perf PRs read scheduler pressure here
        self.timers_scheduled = 0
        self.timers_cancelled = 0
        self.events_executed = 0
        self.peak_heap_size = 0
        self.peak_ready_depth = 0
        self.heap_compactions = 0

    # -- raw event scheduling -------------------------------------------------

    def call_soon(self, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn`` at the current timestamp, FIFO with other due work."""
        self._sequence += 1
        handle = TimerHandle(self.now, self._sequence, fn, self)
        ready = self._ready
        ready.append((self._sequence, handle))
        if len(ready) > self.peak_ready_depth:
            self.peak_ready_depth = len(ready)
        return handle

    def call_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        if when <= self.now:
            if when < self.now:
                raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
            return self.call_soon(fn)
        self._sequence += 1
        handle = TimerHandle(when, self._sequence, fn, self)
        heap = self._heap
        heapq.heappush(heap, (when, self._sequence, handle))
        self.timers_scheduled += 1
        if len(heap) > self.peak_heap_size:
            self.peak_heap_size = len(heap)
        return handle

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        return self.call_at(self.now + delay, fn)

    # Internal no-handle variants: routine steps, future resumptions, and
    # packet deliveries are never cancelled, so scheduling them as a bare
    # callable skips a TimerHandle allocation per event.  Sequence numbers
    # are drawn from the same counter, so execution order is identical to
    # the public entry points.

    def _soon(self, fn: Callable[[], None]) -> None:
        self._sequence += 1
        ready = self._ready
        ready.append((self._sequence, fn))
        if len(ready) > self.peak_ready_depth:
            self.peak_ready_depth = len(ready)

    def _at(self, when: float, fn: Callable[[], None]) -> None:
        if when <= self.now:
            if when < self.now:
                raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
            self._soon(fn)
            return
        self._sequence += 1
        heap = self._heap
        heapq.heappush(heap, (when, self._sequence, fn))
        self.timers_scheduled += 1
        if len(heap) > self.peak_heap_size:
            self.peak_heap_size = len(heap)

    def _timer_cancelled(self) -> None:
        self.timers_cancelled += 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > _COMPACTION_FLOOR
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            # in place: run() holds an alias to this list
            heap = self._heap
            heap[:] = [
                entry
                for entry in heap
                if type(entry[2]) is not TimerHandle or not entry[2].cancelled
            ]
            heapq.heapify(heap)
            self._cancelled_pending = 0
            self.heap_compactions += 1

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events currently scheduled."""
        return len(self._heap) + len(self._ready) - self._cancelled_pending

    def counters(self) -> dict:
        """Scheduler pressure counters (raw dict view)."""
        return {
            "timers_scheduled": self.timers_scheduled,
            "timers_cancelled": self.timers_cancelled,
            "events_executed": self.events_executed,
            "peak_heap_size": self.peak_heap_size,
            "peak_ready_depth": self.peak_ready_depth,
            "heap_compactions": self.heap_compactions,
        }

    def publish_metrics(self, scope) -> None:
        """Publish the pressure counters as registry gauges.

        ``scope`` is a :class:`repro.obs.metrics.Scope` (typically
        ``registry.scope("scheduler")``).  The loop itself keeps plain
        ints — incrementing registry instruments per event would tax
        the hottest path in the tree — and this one-shot publish is how
        they reach scan reports, the metrics dump, and the metadata
        file.
        """
        for name, value in self.counters().items():
            scope.gauge(name).set(value)
        scope.gauge("pending_events").set(self.pending_events)
        scope.gauge("live_routines").set(self._live_routines)

    # -- routines -------------------------------------------------------------

    def spawn(self, routine: Routine) -> SimFuture:
        """Start a routine now; returns a future for its return value."""
        outcome = SimFuture()
        self._live_routines += 1
        self._soon(lambda: self._step(routine, outcome, None, None))
        return outcome

    def _step(
        self,
        routine: Routine,
        outcome: SimFuture,
        value: Any,
        exc: BaseException | None,
    ) -> None:
        try:
            yielded = routine.throw(exc) if exc is not None else routine.send(value)
        except StopIteration as stop:
            self._live_routines -= 1
            outcome.set_result(stop.value)
            return
        except BaseException as error:  # routine crashed
            self._live_routines -= 1
            outcome.set_exception(error)
            return
        if isinstance(yielded, SimFuture):
            yielded.add_done_callback(
                lambda fut: self._resume_from_future(routine, outcome, fut)
            )
        elif isinstance(yielded, (int, float)):
            self._at(self.now + yielded, lambda: self._step(routine, outcome, None, None))
        else:
            self._live_routines -= 1
            outcome.set_exception(
                SimulationError(f"routine yielded unsupported {type(yielded).__name__}")
            )

    def _resume_from_future(self, routine: Routine, outcome: SimFuture, fut: SimFuture) -> None:
        try:
            value = fut.result()
        except BaseException as error:
            self._soon(lambda err=error: self._step(routine, outcome, None, err))
            return
        self._soon(lambda: self._step(routine, outcome, value, None))

    # -- running --------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until both queues drain or the clock passes
        ``until``.  Ready-queue work and due timers interleave in global
        schedule order (the shared sequence number), exactly as the old
        single-heap loop did.

        ``max_events`` bounds the number of callbacks executed and
        raises :class:`HangError` past it — the chaos-soak harness's
        hang detector.  The bounded path is a separate loop so the
        unbounded hot path pays nothing for the feature."""
        if max_events is not None:
            return self._run_bounded(until, max_events)
        heap = self._heap
        ready = self._ready
        pop_heap = heapq.heappop
        handle_type = TimerHandle
        while True:
            # drop cancelled timers surfacing at the top of the heap
            while heap:
                top = heap[0][2]
                if type(top) is handle_type and top.cancelled:
                    pop_heap(heap)
                    if self._cancelled_pending:
                        self._cancelled_pending -= 1
                else:
                    break
            if ready:
                seq, fn = ready[0]
                # a timer already due *now* with an older sequence number
                # must run first to preserve FIFO order across structures
                if heap and heap[0][0] <= self.now and heap[0][1] < seq:
                    fn = pop_heap(heap)[2]
                else:
                    ready.popleft()
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                fn = pop_heap(heap)[2]
                self.now = when
            else:
                break
            if type(fn) is handle_type:
                if fn.cancelled:  # cancelled while queued
                    if self._cancelled_pending:
                        self._cancelled_pending -= 1
                    continue
                fn.finished = True
                fn = fn.fn
            self.events_executed += 1
            fn()
        if until is not None:
            self.now = max(self.now, until)

    def _run_bounded(self, until: float | None, max_events: int) -> None:
        """The ``run(max_events=...)`` loop: identical scheduling order,
        plus an event budget that trips :class:`HangError`."""
        heap = self._heap
        ready = self._ready
        pop_heap = heapq.heappop
        handle_type = TimerHandle
        budget = max_events
        while True:
            while heap:
                top = heap[0][2]
                if type(top) is handle_type and top.cancelled:
                    pop_heap(heap)
                    if self._cancelled_pending:
                        self._cancelled_pending -= 1
                else:
                    break
            if ready:
                seq, fn = ready[0]
                if heap and heap[0][0] <= self.now and heap[0][1] < seq:
                    fn = pop_heap(heap)[2]
                else:
                    ready.popleft()
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                fn = pop_heap(heap)[2]
                self.now = when
            else:
                break
            if type(fn) is handle_type:
                if fn.cancelled:
                    if self._cancelled_pending:
                        self._cancelled_pending -= 1
                    continue
                fn.finished = True
                fn = fn.fn
            if budget <= 0:
                raise HangError(
                    f"simulation still busy after {max_events} events "
                    f"(t={self.now:.3f}s, {self.pending_events} pending, "
                    f"{self._live_routines} live routines)"
                )
            budget -= 1
            self.events_executed += 1
            fn()
        if until is not None:
            self.now = max(self.now, until)

    def run_all(self, routines: Iterable[Routine]) -> list[Any]:
        """Spawn every routine, run to completion, and return their results."""
        futures = [self.spawn(routine) for routine in routines]
        self.run()
        return [future.result() for future in futures]

    def sleep_future(self, delay: float) -> SimFuture:
        """A future resolving after ``delay`` virtual seconds."""
        future = SimFuture()
        self._at(self.now + delay, lambda: future.set_result(None))
        return future

    def timeout_race(self, future: SimFuture, timeout: float) -> SimFuture:
        """Resolve with ``future``'s result, or ``None`` after ``timeout``.

        When ``future`` wins, the timeout timer is cancelled so it does
        not rot in the heap until its deadline — with tens of thousands
        of in-flight queries this is the difference between an O(live)
        and an O(total-queries) heap."""
        race = SimFuture()

        def on_timeout() -> None:
            if not race.done:
                future.abandoned = True
                race.set_result(None)

        timer = self.call_later(timeout, on_timeout)

        def on_future(fut: SimFuture) -> None:
            if not race.done:
                timer.cancel()
                try:
                    race.set_result(fut.result())
                except BaseException as error:
                    race.set_exception(error)

        future.add_done_callback(on_future)
        return race
