"""Simulated UDP/TCP networking: sockets, source address pools, and the
network fabric connecting scanner routines to simulated servers.

ZDNS's key socket optimisation — one long-lived raw UDP socket per
routine bound to a static source port — is modelled explicitly: each
simulated socket consumes one (source IP, port) pair from a finite
:class:`SourceIPPool` (45K ephemeral ports per IP, as in the paper's
evaluation), so a /32 scanner caps out near 45K threads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from ..dnslib import Message, WireError, max_payload
from .links import LatencyModel, LossModel
from .sim import SimFuture, Simulator

#: Ephemeral ports available per source IP in the paper's setup.
DEFAULT_PORTS_PER_IP = 45_000

#: Extra round trips consumed by a TCP handshake before the query flows.
TCP_HANDSHAKE_RTTS = 1.0


class PortExhaustedError(RuntimeError):
    """No free (IP, port) pairs remain — the /32 socket limit in Figure 1."""


@dataclass(frozen=True)
class ServerReply:
    """A server's answer plus any server-side processing delay."""

    message: Message
    delay: float = 0.0


class SimServer(Protocol):
    """Anything that can answer simulated DNS queries."""

    def handle_query(
        self, query: Message, client_ip: str, now: float, protocol: str
    ) -> ServerReply | None:
        """Return a reply, or ``None`` to drop the query silently."""


class SourceIPPool:
    """A pool of scanning source addresses with per-IP port accounting.

    ``prefix_length`` mirrors the paper's /32, /29 and /28 experiments:
    a /32 contributes one usable IP, a /29 eight, a /28 sixteen.
    """

    def __init__(
        self,
        prefix_length: int = 32,
        ports_per_ip: int = DEFAULT_PORTS_PER_IP,
        base_ip: str = "198.18.0.0",
    ):
        if not 0 <= prefix_length <= 32:
            raise ValueError("prefix_length must be 0..32")
        self.prefix_length = prefix_length
        self.ports_per_ip = ports_per_ip
        base = _ip_to_int(base_ip)
        count = 1 << (32 - prefix_length)
        self._ips = [_int_to_ip(base + i) for i in range(count)]
        self._used_ports = {ip: 0 for ip in self._ips}
        self._released: dict[str, list[int]] = {ip: [] for ip in self._ips}
        self._next_ip = 0  # round-robin cursor: spread load across IPs

    @property
    def ip_count(self) -> int:
        return len(self._ips)

    @property
    def capacity(self) -> int:
        """Total sockets this pool can hand out concurrently."""
        return len(self._ips) * self.ports_per_ip

    @property
    def in_use(self) -> int:
        return sum(self._used_ports.values()) - sum(len(v) for v in self._released.values())

    def acquire(self) -> tuple[str, int]:
        """Bind a socket: returns (ip, port) or raises PortExhaustedError.

        IPs are assigned round-robin so concurrent sockets spread evenly
        across the scanning subnet — this is what lets a /28 sidestep
        Google's per-client-IP rate limit in Figure 1.
        """
        for _ in range(len(self._ips)):
            ip = self._ips[self._next_ip]
            self._next_ip = (self._next_ip + 1) % len(self._ips)
            if self._released[ip]:
                return ip, self._released[ip].pop()
            if self._used_ports[ip] < self.ports_per_ip:
                port = 20_000 + self._used_ports[ip]
                self._used_ports[ip] += 1
                return ip, port
        raise PortExhaustedError(
            f"all {self.capacity} (ip, port) pairs of the /{self.prefix_length} in use"
        )

    def release(self, binding: tuple[str, int]) -> None:
        ip, port = binding
        self._released[ip].append(port)


def _ip_to_int(ip: str) -> int:
    a, b, c, d = (int(x) for x in ip.split("."))
    return a << 24 | b << 16 | c << 8 | d


def _int_to_ip(value: int) -> str:
    return f"{value >> 24 & 255}.{value >> 16 & 255}.{value >> 8 & 255}.{value & 255}"


@dataclass
class NetworkStats:
    """Packet-level counters across the whole fabric."""

    udp_queries: int = 0
    tcp_queries: int = 0
    lost_outbound: int = 0
    lost_inbound: int = 0
    server_drops: int = 0
    truncated_replies: int = 0
    wire_validations: int = 0


@dataclass
class _Destination:
    server: SimServer
    latency: LatencyModel
    loss: LossModel


class SimNetwork:
    """The fabric: routes queries from sockets to registered servers.

    ``wire_mode`` controls codec fidelity:

    * ``"always"``  — every packet is encoded and re-decoded (tests),
    * ``"sampled"`` — every ``wire_sample``-th packet is (big sweeps),
    * ``"never"``   — messages pass as objects (pure scheduling studies).
    """

    def __init__(
        self,
        sim: Simulator,
        seed: int = 0,
        wire_mode: str = "always",
        wire_sample: int = 16,
    ):
        if wire_mode not in ("always", "sampled", "never"):
            raise ValueError(f"unknown wire_mode {wire_mode!r}")
        self.sim = sim
        self.rng = random.Random(seed)
        self.wire_mode = wire_mode
        self.wire_sample = wire_sample
        self.stats = NetworkStats()
        self._servers: dict[str, _Destination] = {}
        self._packet_count = 0
        #: Optional :class:`repro.faults.FaultInjector` (see
        #: ``FaultInjector.attach``).  None costs one attribute read per
        #: exchange; the injector draws from its *own* RNG, so attaching
        #: one with an empty plan leaves results byte-identical.
        self.fault_injector = None

    def register_server(
        self,
        ip: str,
        server: SimServer,
        latency: LatencyModel | None = None,
        loss: LossModel | None = None,
    ) -> None:
        self._servers[ip] = _Destination(
            server=server,
            latency=latency or LatencyModel(median=0.030),
            loss=loss or LossModel(0.0),
        )

    def server_for(self, ip: str) -> SimServer | None:
        destination = self._servers.get(ip)
        return destination.server if destination else None

    def servers(self) -> list[SimServer]:
        """Every registered server object, deduplicated (a server bound
        to several IPs — the 13-address root, dual-homed TLDs — appears
        once), in registration order.  The zone-delta publisher walks
        this to clear response memos after a mutation."""
        seen: set[int] = set()
        out: list[SimServer] = []
        for destination in self._servers.values():
            marker = id(destination.server)
            if marker not in seen:
                seen.add(marker)
                out.append(destination.server)
        return out

    # -- query paths ----------------------------------------------------------

    def query_udp(self, src_ip: str, dst_ip: str, message: Message, timeout: float) -> SimFuture:
        """Send a UDP query; resolves to the response Message or None."""
        self.stats.udp_queries += 1
        return self._query(src_ip, dst_ip, message, timeout, protocol="udp", extra_rtts=0.0)

    def query_tcp(self, src_ip: str, dst_ip: str, message: Message, timeout: float) -> SimFuture:
        """Send a TCP query: an extra handshake RTT, but no truncation."""
        self.stats.tcp_queries += 1
        return self._query(
            src_ip, dst_ip, message, timeout, protocol="tcp", extra_rtts=TCP_HANDSHAKE_RTTS
        )

    def query_stream(
        self, src_ip: str, dst_ip: str, message: Message, timeout: float, extra_rtts: float
    ) -> SimFuture:
        """A reliable stream exchange with a configurable number of
        setup round trips (used by the DoT/DoH transport model)."""
        self.stats.tcp_queries += 1
        return self._query(
            src_ip, dst_ip, message, timeout, protocol="tcp", extra_rtts=extra_rtts
        )

    def _query(
        self,
        src_ip: str,
        dst_ip: str,
        message: Message,
        timeout: float,
        protocol: str,
        extra_rtts: float,
    ) -> SimFuture:
        response_future = SimFuture()
        destination = self._servers.get(dst_ip)
        if destination is None:
            # Unrouted address: silence, then timeout.
            return self.sim.timeout_race(response_future, timeout)

        injector = self.fault_injector
        rtt = destination.latency.sample(self.rng) * (1.0 + extra_rtts)
        if injector is not None:
            verdict = injector.on_send(dst_ip, protocol)
            if verdict is not None:
                if verdict.drop:
                    # injected outage/loss: the injector keeps the
                    # per-directive count; link-level stats stay pure
                    return self.sim.timeout_race(response_future, timeout)
                rtt = rtt * verdict.latency_factor + verdict.extra_delay
        query_wire = self._maybe_wire(message)

        # Link loss is drawn once per *direction* (here: the request leg;
        # below: the response leg), so LossModel(p) yields an exchange
        # failure rate of 1-(1-p)^2 — see LossModel.round_trip_probability
        # and LossModel.for_round_trip for the conversion.
        if protocol == "udp" and destination.loss.dropped(self.rng):
            self.stats.lost_outbound += 1
            return self.sim.timeout_race(response_future, timeout)

        arrival = self.sim.now + rtt / 2

        def at_server() -> None:
            query = self._maybe_unwire(query_wire, message)
            synthetic = (
                injector.at_server(dst_ip, protocol, query)
                if injector is not None
                else None
            )
            if synthetic is not None:
                reply = ServerReply(synthetic)
            else:
                reply = destination.server.handle_query(query, src_ip, self.sim.now, protocol)
            if reply is None:
                self.stats.server_drops += 1
                return
            response = reply.message
            if injector is not None:
                response = injector.on_reply(dst_ip, protocol, query, response)
                if response is None:
                    return  # injected inbound drop (counted per directive)
            reply_wire = self._maybe_wire(response)
            if protocol == "udp" and reply_wire is not None:
                # Size-based truncation against the client's EDNS payload.
                limit = max_payload(query)
                if len(reply_wire) > limit:
                    reply_wire = response.to_wire(max_size=limit)
                    response = Message.from_wire(reply_wire)
            if response.flags.truncated:
                self.stats.truncated_replies += 1
            # the response leg's independent per-direction loss draw
            if protocol == "udp" and destination.loss.dropped(self.rng):
                self.stats.lost_inbound += 1
                return
            deliver_at = self.sim.now + rtt / 2 + reply.delay

            def deliver() -> None:
                if not response_future.done:
                    if response_future.abandoned:
                        # the waiter already timed out: resolve without
                        # decoding a reply nobody will ever read
                        response_future.set_result(response)
                    else:
                        response_future.set_result(self._maybe_unwire(reply_wire, response))

            self.sim._at(deliver_at, deliver)

        self.sim._at(arrival, at_server)
        return self.sim.timeout_race(response_future, timeout)

    # -- wire fidelity --------------------------------------------------------

    def _should_validate(self) -> bool:
        if self.wire_mode == "always":
            return True
        if self.wire_mode == "never":
            return False
        self._packet_count += 1
        return self._packet_count % self.wire_sample == 0

    def _maybe_wire(self, message: Message) -> bytes | None:
        if self._should_validate():
            self.stats.wire_validations += 1
            return message.to_wire()
        return None

    @staticmethod
    def _maybe_unwire(wire: bytes | None, original: Message) -> Message:
        if wire is None:
            return original
        try:
            return Message.from_wire(wire)
        except WireError:
            # A malformed packet a real scanner would have to tolerate.
            return original


class SimUDPSocket:
    """A long-lived simulated socket bound to one (IP, port) pair."""

    def __init__(self, network: SimNetwork, pool: SourceIPPool):
        self.network = network
        self._pool = pool
        self.binding = pool.acquire()
        self._closed = False

    @property
    def source_ip(self) -> str:
        return self.binding[0]

    def query(self, dst_ip: str, message: Message, timeout: float) -> SimFuture:
        if self._closed:
            raise RuntimeError("socket is closed")
        return self.network.query_udp(self.source_ip, dst_ip, message, timeout)

    def query_tcp(self, dst_ip: str, message: Message, timeout: float) -> SimFuture:
        if self._closed:
            raise RuntimeError("socket is closed")
        return self.network.query_tcp(self.source_ip, dst_ip, message, timeout)

    def close(self) -> None:
        if not self._closed:
            self._pool.release(self.binding)
            self._closed = True
