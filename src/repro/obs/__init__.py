"""repro.obs — the telemetry subsystem (observability layer).

What real ZDNS ships to stay operable at 10K-routine scale, unified in
one package:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  log-bucketed histograms with dotted scopes (``engine``, ``cache``,
  ``scheduler``, ``codec``) and near-zero overhead when disabled.
* :mod:`repro.obs.spans` — per-lookup spans: parent/child intervals on
  the virtual clock for every delegation walk, cache probe, query
  attempt, retry, and timeout; exported as JSON lines.
* :mod:`repro.obs.status` — the periodic one-line scan status stream.
* :mod:`repro.obs.metadata` — the ``--metadata-file`` run summary.
* :mod:`repro.obs.server` — the live HTTP control plane (``/metrics``,
  ``/status.json``, and the ``/`` dashboard) behind ``--http-port``.
* ``python -m repro.obs.selfcheck`` — an end-to-end smoke test of the
  whole layer against a tiny simulated scan.
"""

from .metadata import build_run_metadata, write_metadata
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    Scope,
    parse_prometheus,
)
from .server import TelemetryServer
from .spans import Span, SpanTracer
from .status import StatusEmitter, estimate_eta, format_status_line

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullInstrument",
    "Scope",
    "Span",
    "SpanTracer",
    "StatusEmitter",
    "TelemetryServer",
    "build_run_metadata",
    "estimate_eta",
    "format_status_line",
    "parse_prometheus",
    "write_metadata",
]
