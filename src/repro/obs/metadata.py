"""Run metadata: the ``--metadata-file`` JSON summary of one scan.

Real ZDNS writes a metadata file alongside scan output — the exact
invocation, wall-clock duration, and per-status counts — so a result
set stays interpretable months later.  This builder produces the same:
the scan summary at the top level (per-status counts, rates), plus the
``args`` the run was invoked with, wall/virtual ``durations``, the full
telemetry ``metrics`` snapshot, and — when ``REPRO_PROFILE`` was set —
the cProfile report, so the profile and the run summary land together.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["build_run_metadata", "write_metadata"]


def build_run_metadata(
    summary: dict,
    args: dict | None = None,
    wall_seconds: float | None = None,
    virtual_seconds: float | None = None,
    metrics: dict | None = None,
    profile: dict | None = None,
    tool: str = "pyzdns-repro",
) -> dict:
    """Assemble the metadata document for one finished run.

    ``summary`` (typically ``ScanStats.to_json()`` plus cache/CPU
    extras) is merged at the top level so existing consumers keep
    reading ``total`` / ``statuses`` where they always were; the
    observability extras nest under their own keys.
    """
    from .. import __version__

    metadata: dict[str, Any] = dict(summary)
    metadata["tool"] = {"name": tool, "version": __version__}
    if args is not None:
        metadata["args"] = {k: v for k, v in sorted(args.items()) if not k.startswith("_")}
    durations: dict[str, float] = {}
    if wall_seconds is not None:
        durations["wall_s"] = round(wall_seconds, 3)
    if virtual_seconds is not None:
        durations["virtual_s"] = round(virtual_seconds, 6)
    if durations:
        metadata["durations"] = durations
    if metrics:
        metadata["metrics"] = metrics
    if profile is not None:
        metadata["profile"] = profile
    return metadata


def write_metadata(path: str, metadata: dict) -> dict:
    """Serialise ``metadata`` as indented JSON; returns it unchanged.

    The document must round-trip (``json.load`` equals the input), so
    everything in it has to be JSON-native before it gets here.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metadata, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return metadata
