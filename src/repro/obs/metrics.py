"""Metrics registry: counters, gauges, and log-bucketed histograms.

ZDNS is operable at 10K-routine scale because operators can watch it
(periodic status lines, a run-metadata file, per-lookup traces).  This
module is the storage layer for that telemetry: a flat registry of
named instruments, addressed through dotted *scopes* so engine, cache,
codec, and scheduler metrics nest cleanly (``engine.lookups``,
``cache.hit_rate``, ``scheduler.peak_heap_size``).

Design constraints, in order:

1. **Near-zero overhead when disabled.**  A disabled registry hands out
   one shared :class:`NullInstrument` whose mutators are no-ops, so
   instrumented code holds a reference once and pays a single no-op
   method call per update — no dict lookups, no branching on a flag at
   every site.
2. **Determinism.**  Instruments store plain Python numbers; snapshots
   iterate in insertion order.  Nothing here reads wall clocks.
3. **Cheap quantiles.**  Histograms bucket observations at half-octave
   (base-2) boundaries, so p50/p90/p99 estimates cost O(buckets), not
   O(observations) — the simdzone lesson that perf work stalls without
   always-on counters cheap enough to leave enabled.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullInstrument",
    "Scope",
    "parse_prometheus",
]


class Counter:
    """A monotonically increasing count (events, lookups, retries)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that moves both ways (in-flight lookups, heap depth)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


def bucket_index(value: float) -> int:
    """Half-octave bucket index for a positive observation.

    ``frexp`` writes ``value = m * 2**e`` with ``m in [0.5, 1)``; each
    octave ``[2**(e-1), 2**e)`` is split at its 1.5x point, giving
    buckets ``[0.5*2**e, 0.75*2**e)`` and ``[0.75*2**e, 2**e)``.
    Non-positive observations share the sentinel underflow bucket.
    """
    if value <= 0:
        return _UNDERFLOW
    mantissa, exponent = math.frexp(value)
    return 2 * exponent + (1 if mantissa >= 0.75 else 0)


def bucket_bounds(index: int) -> tuple[float, float]:
    """``[low, high)`` boundaries of a bucket index (inverse of
    :func:`bucket_index`)."""
    if index == _UNDERFLOW:
        return (float("-inf"), 0.0)
    exponent, upper_half = divmod(index, 2)
    scale = math.ldexp(1.0, exponent)  # 2**exponent, exact
    if upper_half:
        return (0.75 * scale, scale)
    return (0.5 * scale, 0.75 * scale)


_UNDERFLOW = -(2**30)


class Histogram:
    """Log-bucketed histogram with O(buckets) quantile estimates.

    Buckets are half-octaves (see :func:`bucket_index`), so relative
    quantile error is bounded by the 1.5x bucket width; observed min and
    max clamp the estimates exactly at the distribution's edges.
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                low, high = bucket_bounds(index)
                if index == _UNDERFLOW:
                    return max(self.min, low)
                # geometric midpoint of the bucket, clamped to what was
                # actually observed so single-valued histograms are exact
                estimate = math.sqrt(low * high)
                return min(max(estimate, self.min), self.max)
        return self.max

    def state(self) -> dict:
        """Full internal state — mergeable, unlike :meth:`snapshot`'s
        quantile summary (quantiles of sub-scans cannot be combined;
        buckets can)."""
        return {
            "buckets": dict(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one
        (bucket-wise addition; min/max widen)."""
        for index, count in state["buckets"].items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += state["count"]
        self.total += state["total"]
        if state["min"] < self.min:
            self.min = state["min"]
        if state["max"] > self.max:
            self.max = state["max"]

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "p50": round(self.quantile(0.50), 6),
            "p90": round(self.quantile(0.90), 6),
            "p99": round(self.quantile(0.99), 6),
        }


class NullInstrument:
    """Shared no-op stand-in for every instrument of a disabled registry.

    Mutators do nothing; reads return zeros.  One instance serves every
    metric name, so disabled instrumentation costs one no-op call.
    """

    __slots__ = ()
    kind = "null"
    name = ""
    value = 0
    count = 0

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def snapshot(self):
        return 0


_NULL = NullInstrument()


class Scope:
    """A dotted namespace within a registry (``engine``, ``cache``).

    Scopes are views — all storage lives in the registry — so nested
    scopes (``scope("status")`` under ``engine``) are free to create.
    """

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self._registry = registry
        self.prefix = prefix

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter | NullInstrument:
        return self._registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge | NullInstrument:
        return self._registry.gauge(self._qualify(name))

    def histogram(self, name: str) -> Histogram | NullInstrument:
        return self._registry.histogram(self._qualify(name))

    def scope(self, name: str) -> "Scope":
        return Scope(self._registry, self._qualify(name))


class MetricsRegistry:
    """Flat, insertion-ordered store of named instruments.

    ``enabled=False`` turns every instrument factory into a source of
    the shared :class:`NullInstrument`: call sites keep working, record
    nothing, and cost almost nothing — the tool's hot paths must not
    slow down when nobody is watching.
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _instrument(self, kind: str, name: str):
        if not self.enabled:
            return _NULL
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, not {kind}"
                )
            return existing
        instrument = self._KINDS[kind](name)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter | NullInstrument:
        return self._instrument("counter", name)

    def gauge(self, name: str) -> Gauge | NullInstrument:
        return self._instrument("gauge", name)

    def histogram(self, name: str) -> Histogram | NullInstrument:
        return self._instrument("histogram", name)

    def scope(self, name: str) -> Scope:
        return Scope(self, name)

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Flat ``{dotted-name: value}`` view (histograms become summary
        dicts).  Deterministic: insertion-ordered, virtual-time only."""
        return {name: m.snapshot() for name, m in self._metrics.items()}

    def dump(self) -> list[tuple[str, str, object]]:
        """Mergeable export: ``(name, kind, state)`` per instrument.

        Counters and gauges export their raw value; histograms export
        full bucket state (:meth:`Histogram.state`).  This is the wire
        format the multi-process executor ships from shard workers to
        the parent, where :meth:`merge_dump` folds the fleet together —
        ``snapshot()`` is *not* mergeable because histogram quantiles of
        sub-scans cannot be combined.
        """
        out: list[tuple[str, str, object]] = []
        for name, metric in self._metrics.items():
            state = metric.state() if metric.kind == "histogram" else metric.value
            out.append((name, metric.kind, state))
        return out

    def merge_dump(
        self,
        dump: list[tuple[str, str, object]],
        rename: "Callable[[str], str] | None" = None,
    ) -> None:
        """Fold another registry's :meth:`dump` into this one.

        Counters and gauges add (fleet totals are sums — a merged gauge
        like ``inflight`` reads as the across-shard total); histograms
        merge bucket-wise.  ``rename`` maps each incoming metric name to
        its name here — the executor uses it to keep per-shard scopes
        (``faults.* -> faults.shard3.*``) distinguishable while summing
        everything else.  No-op on a disabled registry.
        """
        if not self.enabled:
            return
        for name, kind, state in dump:
            target = self._instrument(kind, rename(name) if rename else name)
            if kind == "histogram":
                target.merge_state(state)
            else:
                target.inc(state)

    def tree(self) -> dict:
        """Snapshot nested by scope: ``{"engine": {"lookups": ...}}``."""
        root: dict = {}
        for name, metric in self._metrics.items():
            parts = name.split(".")
            node = root
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = metric.snapshot()
        return root

    def render_prometheus(self, namespace: str = "pyzdns") -> str:
        """Prometheus text-exposition dump of every instrument.

        Conforms to the text exposition format a real scraper parses:
        every metric family gets ``# HELP`` and ``# TYPE`` lines (the
        HELP text carries the original dotted registry name), names are
        sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``, and histograms emit
        *cumulative* ``_bucket{le="..."}`` series — each bucket counts
        every observation at or below its upper bound, closing with the
        mandatory ``le="+Inf"`` bucket that equals ``_count`` — plus
        ``_sum`` and ``_count`` samples.  :func:`parse_prometheus` is
        the verifying inverse.
        """
        lines: list[str] = []
        for name, metric in self._metrics.items():
            flat = _sanitize(f"{namespace}_{name}" if namespace else name)
            lines.append(f"# HELP {flat} registry metric {name}")
            if metric.kind == "histogram":
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                for index in sorted(metric.buckets):
                    cumulative += metric.buckets[index]
                    _, high = bucket_bounds(index)
                    lines.append(f'{flat}_bucket{{le="{_fmt(high)}"}} {cumulative}')
                lines.append(f'{flat}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{flat}_sum {_fmt(metric.total)}")
                lines.append(f"{flat}_count {metric.count}")
            else:
                lines.append(f"# TYPE {flat} {metric.kind}")
                lines.append(f"{flat} {_fmt(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    """Prometheus metric names allow ``[a-zA-Z0-9_:]`` only, and may not
    start with a digit."""
    flat = "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


#: ``metric_name`` / ``label_name`` grammar from the exposition format.
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: One sample line: ``name{labels} value`` with optional label block.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_prometheus(text: str) -> dict:
    """Parse (and validate) Prometheus text-exposition output.

    The strict inverse of :meth:`MetricsRegistry.render_prometheus`,
    used by the round-trip tests and the ``--http-smoke`` gate: every
    sample must belong to an announced ``# TYPE`` family, names must
    match the exposition grammar, values must parse as floats, and
    histogram families must form a *cumulative* bucket series —
    monotonically non-decreasing in ``le`` order, closed by ``+Inf``,
    with ``+Inf == _count``.  Violations raise :class:`ValueError`.

    Returns ``{family: {"type": kind, "help": str, "samples":
    [(name, labels, value), ...]}}``.
    """
    families: dict[str, dict] = {}

    def family_of(name: str) -> dict:
        if name in families:
            return families[name]
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = families.get(name[: -len(suffix)])
                if base is not None and base["type"] == "histogram":
                    return base
        raise ValueError(f"sample {name!r} precedes its # TYPE line")

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad HELP metric name {name!r}")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            name, kind = parts[2], parts[3]
            if not _METRIC_NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad TYPE metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            family = families.setdefault(name, {"type": None, "help": None, "samples": []})
            if family["samples"]:
                raise ValueError(f"line {lineno}: TYPE for {name!r} after its samples")
            family["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                label = _LABEL_RE.match(pair.strip())
                if label is None:
                    raise ValueError(f"line {lineno}: bad label pair {pair!r}")
                labels[label.group(1)] = label.group(2)
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {match.group('value')!r}"
            ) from None
        family_of(name)["samples"].append((name, labels, value))

    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has samples but no # TYPE line")
        if family["type"] != "histogram":
            continue
        buckets = [
            (labels["le"], value)
            for sample_name, labels, value in family["samples"]
            if sample_name == f"{name}_bucket"
        ]
        counts = {
            sample_name: value
            for sample_name, _, value in family["samples"]
            if sample_name in (f"{name}_count", f"{name}_sum")
        }
        if f"{name}_count" not in counts or f"{name}_sum" not in counts:
            raise ValueError(f"histogram {name!r} missing _sum/_count")
        if not buckets or buckets[-1][0] != "+Inf":
            raise ValueError(f"histogram {name!r} does not end in le=\"+Inf\"")
        previous = None
        for le, value in buckets:
            bound = math.inf if le == "+Inf" else float(le)
            if previous is not None:
                last_bound, last_value = previous
                if bound <= last_bound:
                    raise ValueError(f"histogram {name!r} buckets out of le order")
                if value < last_value:
                    raise ValueError(f"histogram {name!r} buckets not cumulative")
            previous = (bound, value)
        if buckets[-1][1] != counts[f"{name}_count"]:
            raise ValueError(f"histogram {name!r}: +Inf bucket != _count")
    return families


def _fmt(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


#: Process-wide disabled registry: the default wiring target, so code
#: can instrument unconditionally and pay nothing until a real registry
#: is supplied.
NULL_REGISTRY = MetricsRegistry(enabled=False)
