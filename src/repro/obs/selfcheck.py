"""End-to-end sanity check for the observability stack.

Run as ``python -m repro.obs.selfcheck``.  Exercises every obs layer the
way a real scan does — registry instruments, a small simulated scan with
metrics + status + spans enabled, the Prometheus dump, and the metadata
builder — and exits non-zero if any invariant fails.  Cheap enough
(~200 lookups) to run in the verify loop.
"""

from __future__ import annotations

import sys

from . import (
    MetricsRegistry,
    build_run_metadata,
    estimate_eta,
    format_status_line,
    parse_prometheus,
)
from .metrics import bucket_bounds, bucket_index


def check_registry() -> None:
    registry = MetricsRegistry(enabled=True)
    scope = registry.scope("engine")
    scope.counter("lookups").inc(7)
    scope.gauge("inflight").set(3)
    histogram = scope.histogram("latency")
    for value in (0.001, 0.002, 0.004, 0.008, 0.1):
        histogram.observe(value)
    snapshot = registry.snapshot()
    assert snapshot["engine.lookups"] == 7, snapshot
    assert snapshot["engine.inflight"] == 3, snapshot
    assert snapshot["engine.latency"]["count"] == 5, snapshot
    assert 0.001 <= snapshot["engine.latency"]["p50"] <= 0.008, snapshot
    for value in (0.0013, 1.0, 250.0):
        low, high = bucket_bounds(bucket_index(value))
        assert low <= value < high, (value, low, high)
    text = registry.render_prometheus()
    assert "pyzdns_engine_lookups 7" in text, text
    assert "# TYPE pyzdns_engine_latency histogram" in text, text
    assert 'pyzdns_engine_latency_bucket{le="+Inf"} 5' in text, text
    # the rendering must satisfy a strict exposition-format parser
    families = parse_prometheus(text)
    assert families["pyzdns_engine_lookups"]["type"] == "counter", families
    assert families["pyzdns_engine_latency"]["type"] == "histogram", families

    disabled = MetricsRegistry(enabled=False)
    disabled.scope("x").counter("y").inc()
    assert len(disabled) == 0 and disabled.snapshot() == {}


def check_scan() -> None:
    from ..ecosystem import EcosystemParams, build_internet
    from ..framework import ScanConfig, ScanRunner
    from ..workloads import CorpusConfig, DomainCorpus

    import io

    spans: list[dict] = []
    status = io.StringIO()
    internet = build_internet(params=EcosystemParams(seed=7))
    config = ScanConfig(
        threads=20, seed=7, metrics=True, status_interval=1.0, collect_spans=True
    )
    names = DomainCorpus(CorpusConfig(seed=7)).fqdns(200)
    report = ScanRunner(
        internet,
        config,
        span_sink=spans.append,
        status_stream=status,
    ).run(names)
    assert report.stats.total == 200, report.stats.total
    status_lines = status.getvalue().splitlines()
    assert status_lines, "status emitter produced no lines"
    assert all("/s avg" in line for line in status_lines), status_lines
    metrics = report.metrics
    for key in ("engine.lookups", "scheduler.events_executed", "cache.hit_rate"):
        assert key in metrics, sorted(metrics)
    assert metrics["engine.lookups"] == 200, metrics["engine.lookups"]
    assert metrics["engine.inflight"] == 0, metrics["engine.inflight"]

    assert spans, "span sink received nothing"
    by_id = {row["id"]: row for row in spans}
    roots = [row for row in spans if row["parent"] is None]
    children = [row for row in spans if row["parent"] is not None]
    assert roots and children, (len(roots), len(children))
    for row in children:
        assert row["parent"] in by_id, row
    for row in spans:
        assert row["end"] >= row["start"], row
    lookups = [row for row in spans if row["span"] == "lookup"]
    assert len(lookups) == 200, len(lookups)

    line = format_status_line(
        elapsed=2.0,
        total=100,
        interval_rate=50.0,
        average_rate=50.0,
        success_rate=0.97,
        in_flight=20,
        timeouts=1,
        retries=2,
        cache_hit_rate=0.991,
    )
    assert line.startswith("t=2.0s; 100 done; 50.0/s now"), line
    line = format_status_line(
        elapsed=2.0,
        total=100,
        interval_rate=50.0,
        average_rate=50.0,
        success_rate=0.97,
        in_flight=20,
        timeouts=1,
        retries=2,
        cache_hit_rate=None,
        target=500,
        eta=estimate_eta(100, 500, 50.0),
    )
    assert line.startswith("t=2.0s; 100/500 done; eta 8s"), line

    metadata = build_run_metadata(
        report.stats.to_json(),
        args={"module": "A", "threads": 20},
        wall_seconds=0.5,
        virtual_seconds=report.stats.duration,
        metrics=metrics,
    )
    assert metadata["total"] == 200, metadata
    assert metadata["durations"]["wall_s"] == 0.5, metadata
    assert metadata["args"]["threads"] == 20, metadata


def check_control_plane() -> None:
    """A scan with the HTTP control plane attached: both endpoints must
    serve valid documents and the final snapshot must agree with the
    scan report."""
    import json
    import urllib.request

    from ..ecosystem import EcosystemParams, build_internet
    from ..framework import ScanConfig, ScanRunner, ScanView
    from ..workloads import CorpusConfig, DomainCorpus
    from .server import TelemetryServer

    internet = build_internet(params=EcosystemParams(seed=7))
    config = ScanConfig(threads=20, seed=7, metrics=True)
    names = list(DomainCorpus(CorpusConfig(seed=7)).fqdns(200))
    view = ScanView(run_info={"module": "A", "mode": "iterative"})
    server = TelemetryServer(status=view.status_snapshot, metrics=view.prometheus).start()
    try:
        report = ScanRunner(
            internet, config, view=view, target=len(names)
        ).run(names)
        with urllib.request.urlopen(f"{server.url}/status.json", timeout=5) as response:
            snapshot = json.loads(response.read())
        assert snapshot["fleet"]["done"] == 200, snapshot["fleet"]
        assert snapshot["fleet"]["complete"] is True, snapshot["fleet"]
        assert snapshot["run"]["module"] == "A", snapshot["run"]
        assert len(snapshot["shards"]) == 1, snapshot["shards"]
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as response:
            families = parse_prometheus(response.read().decode("utf-8"))
        assert families["pyzdns_engine_lookups"]["samples"][0][2] == 200.0, (
            families["pyzdns_engine_lookups"]
        )
        assert any(name.startswith("pyzdns_codec_") for name in families), sorted(families)
        with urllib.request.urlopen(f"{server.url}/", timeout=5) as response:
            dashboard = response.read().decode("utf-8")
        assert "status.json" in dashboard and "<svg" in dashboard
        assert report.stats.total == 200
    finally:
        server.stop()


def main() -> int:
    checks = [check_registry, check_scan, check_control_plane]
    for check in checks:
        check()
        print(f"obs selfcheck: {check.__name__} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
