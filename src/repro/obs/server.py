"""The scan control plane: a stdlib-only background HTTP server.

ZDNS stays operable at 10K-routine scale because the operator can watch
it run; this module extends that from a stderr stream to a live HTTP
surface cheap enough to leave enabled:

* ``GET /metrics`` — the metrics registry's Prometheus text rendering
  (:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`), so a
  real scraper can poll a running scan;
* ``GET /status.json`` — the fleet snapshot (run metadata, fleet
  totals with rate/ETA, per-shard progress rows, fault/health scopes);
* ``GET /`` — a self-contained HTML dashboard that polls
  ``status.json``: fleet status bar, per-shard progress rows, and a
  throughput sparkline.

The server is strictly read-only: it calls the two *provider*
callables it was constructed with (``status() -> dict`` and
``metrics() -> str``) and never touches scan state itself — which is
how a scan with the server on stays byte-identical to one with it off.
It runs as a daemon thread off a ``ThreadingHTTPServer``; ``port=0``
binds an ephemeral port (read it back from :attr:`TelemetryServer.port`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["DASHBOARD_HTML", "TelemetryServer"]


class TelemetryServer:
    """Background HTTP server over a status provider and a metrics
    provider.  ``start()`` returns self; ``stop()`` shuts the listener
    down and joins the serving thread."""

    def __init__(
        self,
        status: Callable[[], dict],
        metrics: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._status = status
        self._metrics = metrics
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            # one scan, localhost, short requests: no keep-alive races
            protocol_version = "HTTP/1.0"

            def log_message(self, *_args) -> None:  # stderr belongs to the scan
                pass

            def _send(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/":
                        self._send(200, "text/html; charset=utf-8",
                                   DASHBOARD_HTML.encode("utf-8"))
                    elif path == "/status.json":
                        body = json.dumps(server._status(), sort_keys=True)
                        self._send(200, "application/json", body.encode("utf-8"))
                    elif path == "/metrics":
                        self._send(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            server._metrics().encode("utf-8"),
                        )
                    else:
                        self._send(404, "text/plain; charset=utf-8", b"not found\n")
                except Exception as error:  # provider hiccup, not a crash
                    try:
                        self._send(
                            500,
                            "text/plain; charset=utf-8",
                            f"telemetry provider error: {error}\n".encode("utf-8"),
                        )
                    except OSError:
                        pass  # client already gone

        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="pyzdns-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


#: The `/` dashboard: one self-contained page, no external assets, that
#: polls ``/status.json`` once a second.  Fleet status bar (stat tiles),
#: a throughput sparkline built client-side from successive polls, and
#: one progress row per shard.  Light/dark via CSS custom properties;
#: the single series wears one hue and identity is never color-alone
#: (every mark sits next to its text label).
DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pyzdns scan</title>
<style>
  :root {
    color-scheme: light;
    --surface: #fcfcfb; --surface-2: #f1f0ee; --border: #dddcd8;
    --text: #0b0b0b; --text-2: #52514e;
    --series: #2a78d6;           /* throughput / progress */
    --good: #008300; --bad: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface: #1a1a19; --surface-2: #242422; --border: #3a3936;
      --text: #ffffff; --text-2: #c3c2b7;
      --series: #3987e5;
      --good: #3fa950; --bad: #e66767;
    }
  }
  body { margin: 0; padding: 16px 20px; background: var(--surface);
         color: var(--text);
         font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
  h1 { font-size: 16px; font-weight: 600; margin: 0 0 2px; }
  .sub { color: var(--text-2); font-size: 12px; margin-bottom: 14px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 8px; margin-bottom: 14px; }
  .tile { background: var(--surface-2); border: 1px solid var(--border);
          border-radius: 6px; padding: 8px 14px; min-width: 96px; }
  .tile .v { font-size: 20px; font-weight: 600; font-variant-numeric: tabular-nums; }
  .tile .k { font-size: 11px; color: var(--text-2); text-transform: uppercase;
             letter-spacing: 0.04em; }
  .spark { margin-bottom: 16px; }
  .spark .cap { font-size: 12px; color: var(--text-2); margin-bottom: 2px; }
  .spark svg { display: block; width: 100%; height: 56px; }
  table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
  th { text-align: left; font-size: 11px; color: var(--text-2);
       text-transform: uppercase; letter-spacing: 0.04em; font-weight: 500;
       padding: 4px 10px 4px 0; border-bottom: 1px solid var(--border); }
  td { padding: 5px 10px 5px 0; border-bottom: 1px solid var(--border); }
  td.num, th.num { text-align: right; }
  .bar { background: var(--surface-2); border-radius: 4px; height: 10px;
         width: 180px; overflow: hidden; }
  .bar i { display: block; height: 100%; background: var(--series);
           border-radius: 4px 0 0 4px; }
  .done-flag { color: var(--good); font-weight: 600; }
  .err { color: var(--bad); }
  .muted { color: var(--text-2); }
</style>
</head>
<body>
<h1>pyzdns live scan</h1>
<div class="sub" id="run">connecting&hellip;</div>
<div class="tiles" id="tiles"></div>
<div class="spark">
  <div class="cap">throughput <span style="color:var(--series)">&#9644;</span>
    lookups/s (last 2 minutes) <span id="sparkval" class="muted"></span></div>
  <svg id="spark" viewBox="0 0 600 56" preserveAspectRatio="none"
       role="img" aria-label="lookups per second over time"></svg>
</div>
<table>
  <thead><tr>
    <th>shard</th><th>progress</th><th class="num">done</th>
    <th class="num">ok %</th><th class="num">rate/s</th>
    <th class="num">in-flight</th><th class="num">retries</th>
    <th class="num">virtual t</th><th>owner</th><th>state</th>
  </tr></thead>
  <tbody id="shards"></tbody>
</table>
<script>
"use strict";
const hist = [];           // [wall_elapsed_s, fleet done] poll history
const HIST_MAX = 120;      // ~2 minutes at 1 Hz
const fmt = n => n == null ? "\\u2013" : n.toLocaleString("en-US");

function tiles(f) {
  const pct = f.target ? (100 * f.done / f.target).toFixed(1) + "%" : "\\u2013";
  const eta = f.complete ? "done" :
    (f.eta_s == null ? "\\u2013" : Math.round(f.eta_s) + "s");
  const items = [
    [f.target ? fmt(f.done) + " / " + fmt(f.target) : fmt(f.done), "done"],
    [pct, "progress"], [eta, "eta"],
    [fmt(f.rate_per_s), "lookups/s"],
    [(100 * f.success_rate).toFixed(1) + "%", "success"],
    [fmt(f.in_flight), "in-flight"], [fmt(f.timeouts), "timeouts"],
    [fmt(f.retries), "retries"],
    [f.shards_complete + " / " + f.shards, "shards done"],
  ];
  document.getElementById("tiles").innerHTML = items.map(
    ([v, k]) => `<div class="tile"><div class="v">${v}</div><div class="k">${k}</div></div>`
  ).join("");
}

function spark() {
  const svg = document.getElementById("spark");
  if (hist.length < 2) { svg.innerHTML = ""; return; }
  const rates = [];
  for (let i = 1; i < hist.length; i++) {
    const dt = hist[i][0] - hist[i - 1][0];
    rates.push(dt > 0 ? (hist[i][1] - hist[i - 1][1]) / dt : 0);
  }
  const max = Math.max(1, ...rates);
  const w = 600, h = 56, pad = 3;
  const x = i => pad + i * (w - 2 * pad) / Math.max(1, rates.length - 1);
  const y = r => h - pad - (r / max) * (h - 2 * pad);
  const pts = rates.map((r, i) => `${x(i).toFixed(1)},${y(r).toFixed(1)}`);
  svg.innerHTML =
    `<polyline points="${pts.join(" ")}" fill="none" stroke="var(--series)"
      stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>` +
    `<circle cx="${x(rates.length - 1)}" cy="${y(rates[rates.length - 1])}"
      r="3" fill="var(--series)"/>`;
  document.getElementById("sparkval").textContent =
    "now " + Math.round(rates[rates.length - 1]).toLocaleString("en-US") + "/s";
}

function shardRows(shards) {
  document.getElementById("shards").innerHTML = shards.map(s => {
    const pct = s.target ? Math.min(100, 100 * s.done / s.target) : 0;
    const ok = s.done ? (100 * s.successes / s.done).toFixed(1) : "0.0";
    // ownership: nominal owner, the workers actually running it, and
    // steal/resume provenance
    const workers = (s.workers && s.workers.length) ? s.workers.join(",") : "\\u2013";
    let owner = `w${s.owner ?? "?"} <span class="muted">run w[${workers}]</span>`;
    const marks = [];
    if (s.steals) marks.push(`<span class="err">\\u21af stolen\\u00d7${s.steals}</span>`);
    if (s.resumed) marks.push('<span class="muted">\\u21bb resumed</span>');
    const segs = s.segments > 1
      ? ` <span class="muted">${s.segments_done}/${s.segments} seg</span>` : "";
    const state = (s.complete ? '<span class="done-flag">&#10003; complete</span>'
                              : '<span class="muted">running</span>')
      + segs + (marks.length ? " " + marks.join(" ") : "");
    return `<tr><td>${s.shard}</td>
      <td><div class="bar"><i style="width:${pct.toFixed(1)}%"></i></div></td>
      <td class="num">${fmt(s.done)}${s.target ? '<span class="muted"> / ' + fmt(s.target) + "</span>" : ""}</td>
      <td class="num">${ok}</td><td class="num">${fmt(s.rate_per_s)}</td>
      <td class="num">${fmt(s.in_flight)}</td><td class="num">${fmt(s.retries)}</td>
      <td class="num">${s.virtual_now.toFixed(1)}s</td>
      <td>${owner}</td><td>${state}</td></tr>`;
  }).join("");
}

async function poll() {
  try {
    const r = await fetch("status.json", {cache: "no-store"});
    const s = await r.json();
    const run = s.run || {};
    document.getElementById("run").textContent =
      `module ${run.module ?? "?"} \\u00b7 mode ${run.mode ?? "?"} \\u00b7 ` +
      `seed ${run.seed ?? "?"} \\u00b7 ${run.processes ?? 1} process(es) \\u00b7 ` +
      `${s.fleet.shards} shard(s) \\u00b7 wall ${s.wall_elapsed_s.toFixed(1)}s` +
      (run.resumed_from ? ` \\u00b7 resumed from ${run.resumed_from}` : "") +
      (s.fleet.steals ? ` \\u00b7 ${s.fleet.steals} steal(s)` : "") +
      (s.fleet.complete ? " \\u00b7 complete" : "");
    hist.push([s.wall_elapsed_s, s.fleet.done]);
    if (hist.length > HIST_MAX + 1) hist.shift();
    tiles(s.fleet);
    spark();
    shardRows(s.shards || []);
  } catch (e) {
    document.getElementById("run").innerHTML =
      '<span class="err">scan endpoint unreachable (scan finished?)</span>';
  }
}
poll();
setInterval(poll, 1000);
</script>
</body>
</html>
"""
