"""Per-lookup spans: a lightweight tracer for iterative resolution.

The Appendix C trace (``repro.core.trace``) records *what* each query
asked and answered; spans record *when* — every step of a lookup
(delegation walk, cache probe, query attempt, retry, timeout) becomes a
parent/child interval carrying virtual-clock timestamps.  Exported as
JSON lines whose attribute keys match the existing trace rows
(``name``, ``layer``, ``depth``, ``name_server``, ``try``, ``type``),
so the two streams join on a lookup without translation.

The tracer is explicitly parented: tens of thousands of lookups
interleave on one simulator thread, so an ambient "current span" stack
would cross-wire them.  Instrumented code passes the parent span along
its own call structure instead — which the sans-IO machine already has.
"""

from __future__ import annotations

import json
from typing import Any, Callable, TextIO

__all__ = ["Span", "SpanTracer"]


class Span:
    """One timed interval of a lookup (a node in the span tree)."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "status", "attrs", "_tracer")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attrs: dict,
    ):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.status: str | None = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Virtual seconds between start and finish (0.0 while open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **attrs) -> None:
        """Attach extra attributes to an open span."""
        self.attrs.update(attrs)

    def finish(self, status: str | None = None, **attrs) -> None:
        """Close the span at the tracer's current clock reading.

        Finishing twice is a no-op, so error paths may finish eagerly
        and normal unwinding stays harmless.
        """
        if self.end is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        if status is not None:
            self.status = status
        self.end = self._tracer.clock()
        self._tracer._finished(self)

    def to_json(self) -> dict:
        """JSON-line row: identity, interval, status, then attributes."""
        row = {
            "span": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": round(self.start, 9),
            "end": round(self.end if self.end is not None else self.start, 9),
            "duration": round(self.duration, 9),
            "status": self.status,
        }
        row.update(self.attrs)
        return row


class SpanTracer:
    """Creates, times, and exports spans for one run.

    ``clock`` supplies timestamps (pass ``lambda: sim.now`` for virtual
    time, ``time.monotonic`` for live scans).  Finished spans stream to
    ``sink`` (a callable taking the JSON row) when one is given;
    otherwise they are retained on :attr:`spans` for later export —
    fine for tests and bounded runs, streaming for big scans.
    """

    __slots__ = ("clock", "sink", "spans", "started", "finished")

    def __init__(
        self,
        clock: Callable[[], float],
        sink: Callable[[dict], None] | None = None,
    ):
        self.clock = clock
        self.sink = sink
        self.spans: list[Span] = []
        self.started = 0
        self.finished = 0

    def start(self, span: str, parent: Span | None = None, **attrs: Any) -> Span:
        """Open a span named ``span``; ``parent`` links it into that
        span's tree.  (The parameter is *not* called ``name`` so that
        instrumented code can pass a ``name=`` attribute — the query
        name — without colliding.)"""
        self.started += 1
        return Span(
            self,
            span,
            span_id=self.started,
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock(),
            attrs=attrs,
        )

    def _finished(self, span: Span) -> None:
        self.finished += 1
        if self.sink is not None:
            self.sink(span.to_json())
        else:
            self.spans.append(span)

    def export_jsonl(self, handle: TextIO) -> int:
        """Write retained spans as JSON lines; returns the row count."""
        for span in self.spans:
            handle.write(json.dumps(span.to_json(), sort_keys=True))
            handle.write("\n")
        return len(self.spans)
