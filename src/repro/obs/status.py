"""Live scan status: one progress line per interval, like real ZDNS.

ZDNS prints a short status line to stderr while a scan runs, which is
what makes a 10K-thread scan operable — the operator sees throughput,
success rate, and backpressure without waiting for the summary.  The
emitter here does the same on the *virtual* clock: it schedules itself
on the simulator with a cancellable timer, emits a line per interval,
and is cancelled when the last lookup routine finishes (a pending
repeating timer would otherwise keep the event loop alive forever).
"""

from __future__ import annotations

import math
import sys
from typing import Callable, TextIO

__all__ = ["StatusEmitter", "estimate_eta", "format_status_line"]

#: Statuses counted as timeouts on the status line.
_TIMEOUT_STATUSES = ("TIMEOUT", "ITERATIVE_TIMEOUT")


def estimate_eta(total: int, target: int | None, average_rate: float) -> float | None:
    """Seconds until ``target`` completions at ``average_rate``.

    ``None`` when there is no target or no rate to extrapolate from;
    0.0 once the target is reached (the scan is draining, not behind).

    Defensive about degenerate rate math: a zero, negative, NaN, or
    infinite ``average_rate`` — an empty window, a stalled fleet, a
    poisoned upstream division — yields None rather than a negative,
    ``inf``, or NaN ETA.  NaN in particular fails every ``<=``
    comparison, so without the explicit finiteness guard it would sail
    through into ``/status.json``, where ``json.dumps`` emits a bare
    ``NaN`` token that breaks strict JSON consumers.
    """
    if target is None or target <= 0:
        return None
    remaining = target - total
    if remaining <= 0:
        return 0.0
    if not math.isfinite(average_rate) or average_rate <= 0:
        return None
    eta = remaining / average_rate
    if not math.isfinite(eta) or eta < 0:
        return None
    return eta


def format_status_line(
    elapsed: float,
    total: int,
    interval_rate: float,
    average_rate: float,
    success_rate: float,
    in_flight: int,
    timeouts: int,
    retries: int,
    cache_hit_rate: float | None,
    target: int | None = None,
    eta: float | None = None,
) -> str:
    """The one-line scan status, ZDNS-style semicolon-separated.

    ``target`` turns the progress segment into ``12000/50000 done`` and
    ``eta`` (seconds) appends ``eta 41s`` right after it, so an operator
    reads *how far along* and *how much longer* in one glance.
    """
    done = f"{total}/{target} done" if target is not None else f"{total} done"
    parts = [f"t={elapsed:.1f}s", done]
    if eta is not None and math.isfinite(eta) and eta >= 0:
        # a non-finite ETA must never render ("eta infs"/"eta nans");
        # omitting the segment is the honest display for "unknown"
        parts.append(f"eta {eta:.0f}s")
    parts += [
        f"{interval_rate:.1f}/s now",
        f"{average_rate:.1f}/s avg",
        f"{success_rate * 100:.1f}% ok",
        f"{in_flight} in-flight",
        f"{timeouts} timeouts",
        f"{retries} retries",
    ]
    if cache_hit_rate is not None:
        parts.append(f"cache {cache_hit_rate * 100:.1f}%")
    return "; ".join(parts)


class StatusEmitter:
    """Emits a status line every ``interval`` virtual seconds.

    Reads everything through live references — the scan's
    :class:`~repro.framework.stats.ScanStats`, the ``engine.inflight``
    gauge, and the delegation cache's stats — so each tick is a handful
    of attribute reads plus one write to ``stream``.
    """

    def __init__(
        self,
        sim,
        interval: float,
        stats,
        inflight=None,
        cache=None,
        stream: TextIO | None = None,
        write: Callable[[str], None] | None = None,
        target: int | None = None,
    ):
        if interval <= 0:
            raise ValueError("status interval must be positive")
        self.sim = sim
        self.interval = interval
        self.stats = stats
        self.inflight = inflight
        self.cache = cache
        #: Total lookups the scan will perform, when known — adds the
        #: ``done/target`` and ``eta`` segments to every line.
        self.target = target
        if write is None:
            stream = stream if stream is not None else sys.stderr
            write = lambda line: print(line, file=stream)  # noqa: E731
        self.write = write
        self.lines_emitted = 0
        self._timer = None
        self._started_at = 0.0
        self._last_total = 0
        self._stopped = False

    def start(self) -> "StatusEmitter":
        """Begin ticking at ``now + interval`` on the simulator."""
        self._started_at = self.sim.now
        self._last_total = self.stats.total
        self._timer = self.sim.call_later(self.interval, self._tick)
        return self

    def stop(self, final_line: bool = True) -> None:
        """Cancel the pending tick (lets the event loop drain) and emit
        one last line so the stream always ends at 100% of the scan."""
        if self._stopped:
            return
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if final_line and self.stats.total != self._last_total:
            self.emit()

    def _tick(self) -> None:
        if self._stopped:
            return
        self.emit()
        self._timer = self.sim.call_later(self.interval, self._tick)

    def emit(self) -> None:
        """Format and write one status line from current state."""
        stats = self.stats
        now = self.sim.now
        elapsed = now - self._started_at
        done_since = stats.total - self._last_total
        self._last_total = stats.total
        timeouts = sum(stats.by_status.get(s, 0) for s in _TIMEOUT_STATUSES)
        cache_hit = None
        if self.cache is not None:
            cache_hit = self.cache.stats.hit_rate
        average_rate = stats.total / elapsed if elapsed > 0 else 0.0
        self.write(
            format_status_line(
                elapsed=elapsed,
                total=stats.total,
                interval_rate=done_since / self.interval,
                average_rate=average_rate,
                success_rate=stats.success_rate,
                in_flight=int(self.inflight.value) if self.inflight is not None else 0,
                timeouts=timeouts,
                retries=stats.retries_used,
                cache_hit_rate=cache_hit,
                target=self.target,
                eta=estimate_eta(stats.total, self.target, average_rate),
            )
        )
        self.lines_emitted += 1
