"""Differential resolution oracle (the correctness backstop).

The production resolver is fast because of caching, memoisation and
fast-path codecs — each a place correctness can quietly rot.  This
package holds the independent ground truth and the machinery that
compares the two:

* :class:`ReferenceResolver` — a deliberately naive recursive-descent
  resolver over its own private copy of the simulated Internet (zone
  content is a pure function of the seed): no cache, no memos, no
  fast-path codec, no randomness.
* :func:`compare_views` / :class:`DifferentialOracle` — the agreement
  relation on (status, final CNAME target, sorted terminal rdata set),
  with production failures on the lossy fabric classified as
  inconclusive rather than divergent, and per-nameserver-inconsistent
  domains matched against a *set* of acceptable answers.
* :func:`run_differential` — the sweep harness: every name resolved
  cold *and* warm under each cache policy × eviction × fault-plan
  combination, all checked against the oracle plus the cold-vs-warm
  self-agreement invariant.
* :func:`shrink_divergence` / :func:`check_one` — reduce any divergence
  to a minimal (name, seed, plan) triple that reproduces in isolation.

Scan integration: ``pyzdns <module> --oracle-check K`` shadows every
Kth lookup of a simulated iterative scan (divergences become structured
output rows; counters land in the ``oracle.*`` metric scope), and
``scripts/bench_compare.py --oracle-smoke`` is the CI gate.

Run ``python -m repro.oracle.selfcheck`` for a quick standalone sweep.
"""

from .harness import (
    ComboReport,
    DifferentialConfig,
    DifferentialOracle,
    DifferentialReport,
    Divergence,
    ProductionView,
    compare_views,
    production_view,
    run_differential,
)
from .reference import (
    SEMANTIC_STATUSES,
    OracleResult,
    ReferenceResolver,
)
from .shrink import MinimalCase, check_one, shrink_divergence

__all__ = [
    "SEMANTIC_STATUSES",
    "OracleResult",
    "ReferenceResolver",
    "ProductionView",
    "production_view",
    "compare_views",
    "Divergence",
    "DifferentialOracle",
    "DifferentialConfig",
    "ComboReport",
    "DifferentialReport",
    "run_differential",
    "MinimalCase",
    "check_one",
    "shrink_divergence",
]
