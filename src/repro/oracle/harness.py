"""Differential conformance harness: production resolver vs oracle.

Agreement is asserted on the triple **(status, final CNAME target,
sorted terminal rdata set)**, with two refinements:

* The simulated fabric drops packets everywhere (that is the point of
  the substrate), so a production *failure* status (TIMEOUT, SERVFAIL,
  …) against a semantic oracle answer is **inconclusive**, not a
  divergence — the packets may simply have died.  A production
  *semantic* answer, however, must match the oracle exactly; and a
  production semantic answer for a name the oracle proves unresolvable
  is always a divergence (the resolver invented an answer).
* Domains with deliberately inconsistent nameservers legitimately
  return different rdata per server, so the production answer set must
  be a member of the oracle's *acceptable* set family, not equal to a
  single canonical set.

The sweep harness (:func:`run_differential`) resolves every name
**twice** through the production machine — cold then warm — under each
cache policy × eviction × fault-plan combination, checks both against
the oracle, and additionally pins the cold-vs-warm invariant: two
semantic resolutions of the same name must agree with each other
(whenever the oracle says there is only one acceptable answer set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core import Resolver, ResolverConfig, SelectiveCache
from ..dnslib import Name, RRType
from ..ecosystem import EcosystemParams, build_internet
from ..workloads import CorpusConfig, DomainCorpus
from .reference import SEMANTIC_STATUSES, OracleResult, ReferenceResolver

_CNAME = int(RRType.CNAME)
_ANY = int(RRType.ANY)


@dataclass(frozen=True)
class ProductionView:
    """The comparison-relevant projection of a production LookupResult."""

    status: str
    final_key: str
    final_name: str
    terminal: tuple[str, ...]
    #: The validator's verdict, when the lookup ran with DNSSEC on.
    security: str | None = None

    @property
    def is_semantic(self) -> bool:
        return self.status in SEMANTIC_STATUSES

    def to_json(self) -> dict:
        out = {
            "status": self.status,
            "final_name": self.final_name,
            "answers": list(self.terminal),
        }
        if self.security is not None:
            out["security"] = self.security
        return out


def production_view(result, qname: Name, qtype) -> ProductionView:
    """Project a :class:`repro.core.LookupResult` for comparison: chase
    the CNAME chain within its answer section to the final owner, then
    collect that owner's final-type rdata, sorted."""
    qt = int(qtype)
    answers = result.answers or []
    cnames: dict[str, Name] = {}
    final_typed: set[str] = set()
    for record in answers:
        rt = int(record.rrtype)
        key = record.name.canonical_key()
        if rt == qt or qt == _ANY:
            final_typed.add(key)
        if rt == _CNAME and key not in cnames:
            cnames[key] = record.rdata.target
    current = qname
    if qt not in (_CNAME, _ANY):
        seen: set[str] = set()
        while True:
            key = current.canonical_key()
            if key in seen or key in final_typed:
                break
            seen.add(key)
            target = cnames.get(key)
            if target is None:
                break
            current = target
    terminal = tuple(
        sorted(
            record.rdata.to_text()
            for record in answers
            if record.name == current and (int(record.rrtype) == qt or qt == _ANY)
        )
    )
    return ProductionView(
        status=str(result.status),
        final_key=current.canonical_key(),
        final_name=current.to_text(omit_final_dot=True),
        terminal=terminal,
        security=getattr(result, "security", None),
    )


@dataclass(frozen=True)
class Divergence:
    """One disagreement, with everything needed to reproduce it."""

    name: str
    qtype: int
    seed: int
    reason: str
    production: dict
    oracle: dict
    #: Where it happened: policy/eviction/plan/phase, when known.
    combo: dict = field(default_factory=dict)

    def to_row(self) -> dict:
        row = {
            "oracle_divergence": True,
            "name": self.name,
            "qtype": self.qtype,
            "seed": self.seed,
            "reason": self.reason,
            "production": dict(self.production),
            "oracle": dict(self.oracle),
        }
        if self.combo:
            row["combo"] = dict(self.combo)
        return row


def compare_views(view: ProductionView, oracle: OracleResult) -> tuple[str, str | None]:
    """``("agree" | "inconclusive" | "diverge", reason)``."""
    if not view.is_semantic:
        # Production failed.  If the oracle also calls the name
        # unresolvable the two agree; otherwise the packets may have
        # died on the lossy fabric — no verdict either way.
        return ("agree", None) if not oracle.is_semantic else ("inconclusive", None)
    if not oracle.is_semantic:
        return (
            "diverge",
            f"production answered {view.status} but the oracle finds the "
            f"name unresolvable ({oracle.status})",
        )
    if view.status != oracle.status:
        return ("diverge", f"status {view.status} != oracle {oracle.status}")
    if (
        view.security is not None
        and view.security != "indeterminate"  # chain fetches may have died
        and oracle.security is not None
        and view.security != oracle.security
    ):
        return (
            "diverge",
            f"validation {view.security} != expected {oracle.security}",
        )
    if view.status == "NXDOMAIN":
        return ("agree", None)
    if view.final_key != oracle.final_key:
        return (
            "diverge",
            f"final CNAME target {view.final_name!r} != oracle {oracle.final_name!r}",
        )
    if view.terminal not in oracle.acceptable:
        return (
            "diverge",
            f"answer set {list(view.terminal)} not among "
            f"{[list(s) for s in oracle.acceptable]}",
        )
    return ("agree", None)


class DifferentialOracle:
    """Stateful checker for shadowing production lookups (the
    ``--oracle-check`` scan mode): owns a reference resolver, memoises
    its verdicts per (name, qtype), and keeps running counters."""

    def __init__(self, seed: int = 2022, memo_limit: int = 65_536, dnssec: bool = False):
        self.seed = seed
        self.dnssec = dnssec
        self.reference = ReferenceResolver(seed=seed, dnssec=dnssec)
        self.checked = 0
        self.agreed = 0
        self.inconclusive = 0
        self.divergences = 0
        self._memo: dict[tuple, OracleResult] = {}
        self._memo_limit = memo_limit

    def oracle_result(self, qname: Name, qtype) -> OracleResult:
        key = (qname.canonical_key(), int(qtype))
        cached = self._memo.get(key)
        if cached is None:
            if len(self._memo) >= self._memo_limit:
                self._memo.clear()
            cached = self._memo[key] = self.reference.resolve(qname, qtype)
        return cached

    def note_zone_change(self, base: Name | str) -> int:
        """Mirror a zone delta into the reference universe.

        The service publishes deltas into the *production* universe; the
        oracle's private universe must see the identical mutation or
        every post-delta shadow check under the mutated zone would
        read as a divergence.  Both universes are built from the same
        seed, so bumping the same base's generation keeps them in
        lockstep.  Memoised verdicts at or below ``base`` are evicted
        (suffix match on the canonical label tuple — label-boundary
        exact, so ``oo.example`` does not match a delta to
        ``o.example``); verdicts for unrelated names stay cached.
        Returns the reference universe's new generation for ``base``.
        """
        from ..ecosystem import publish_zone_delta

        if isinstance(base, str):
            base = Name.from_text(base)
        generation = publish_zone_delta(self.reference.internet, base)
        # Evict below the *registrable* domain — the unit that actually
        # mutated — even when handed a deeper name inside the zone.
        registrable = self.reference.internet.synth.base_domain_of(base)
        suffix = (registrable or base).canonical_key()
        n = len(suffix)
        if n:
            stale = [key for key in self._memo if key[0][-n:] == suffix]
            for key in stale:
                del self._memo[key]
        else:
            self._memo.clear()
        return generation

    def check(self, qname: Name, qtype, result, combo: dict | None = None) -> Divergence | None:
        """Compare one finished production lookup against the oracle.
        Returns the :class:`Divergence` (and counts it), or None."""
        oracle = self.oracle_result(qname, qtype)
        view = production_view(result, qname, qtype)
        verdict, reason = compare_views(view, oracle)
        self.checked += 1
        if verdict == "agree":
            self.agreed += 1
            return None
        if verdict == "inconclusive":
            self.inconclusive += 1
            return None
        self.divergences += 1
        return Divergence(
            name=qname.to_text(omit_final_dot=True),
            qtype=int(qtype),
            seed=self.seed,
            reason=reason or "disagreement",
            production=view.to_json(),
            oracle=oracle.to_json(),
            combo=dict(combo or {}),
        )

    def stats(self) -> dict:
        return {
            "checked": self.checked,
            "agreed": self.agreed,
            "inconclusive": self.inconclusive,
            "divergences": self.divergences,
        }

    def publish_metrics(self, scope) -> None:
        """Mirror the counters into a registry scope (``oracle.*``)."""
        scope.counter("checked").inc(self.checked)
        scope.counter("agreed").inc(self.agreed)
        scope.counter("inconclusive").inc(self.inconclusive)
        scope.counter("divergence").inc(self.divergences)


# -- sweep harness ---------------------------------------------------------


@dataclass
class DifferentialConfig:
    """One differential sweep: names × (policy × eviction × plan)."""

    seed: int = 2022
    #: Names resolved per combination.
    names: int = 100
    #: Corpus offset of the first name; each combination uses its own
    #: disjoint slice so a sweep covers ``combos * names`` distinct
    #: generated names.
    start: int = 0
    qtype: int = int(RRType.A)
    policies: tuple = ("selective", "all", "none")
    evictions: tuple = ("random", "lru")
    #: Fault-plan specs: None (no faults), a bundled plan name, or a
    #: :class:`repro.faults.FaultPlan` instance.
    fault_plans: tuple = (None, "moderate")
    #: Small on purpose: a sweep should exercise eviction, not avoid it.
    cache_capacity: int = 512
    retries: int = 2
    #: Validate every production lookup and assert its verdict against
    #: the oracle's white-box expectation.
    dnssec: bool = False


@dataclass
class ComboReport:
    policy: str
    eviction: str
    plan: str
    checks: int = 0
    agreed: int = 0
    inconclusive: int = 0
    divergences: list = field(default_factory=list)

    def label(self) -> str:
        return f"{self.policy}/{self.eviction}/{self.plan}"


@dataclass
class DifferentialReport:
    seed: int
    combos: list = field(default_factory=list)
    names_checked: int = 0

    @property
    def checks(self) -> int:
        return sum(c.checks for c in self.combos)

    @property
    def agreed(self) -> int:
        return sum(c.agreed for c in self.combos)

    @property
    def inconclusive(self) -> int:
        return sum(c.inconclusive for c in self.combos)

    @property
    def divergences(self) -> list:
        return [d for c in self.combos for d in c.divergences]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "names_checked": self.names_checked,
            "checks": self.checks,
            "agreed": self.agreed,
            "inconclusive": self.inconclusive,
            "divergences": [d.to_row() for d in self.divergences],
            "combos": [
                {
                    "combo": c.label(),
                    "checks": c.checks,
                    "agreed": c.agreed,
                    "inconclusive": c.inconclusive,
                    "divergences": len(c.divergences),
                }
                for c in self.combos
            ],
        }


def _plan_label(spec) -> str:
    if spec is None:
        return "none"
    if isinstance(spec, str):
        return spec
    return getattr(spec, "name", "") or "custom"


def _resolve_spec(spec):
    if spec is None or not isinstance(spec, str):
        return spec
    from ..faults import resolve_plan

    return resolve_plan(spec)


def run_differential(
    config: DifferentialConfig | None = None,
    cache_factory: Callable[..., SelectiveCache] | None = None,
    names: Iterable[str] | None = None,
    log: Callable[[str], None] | None = None,
) -> DifferentialReport:
    """The full sweep.  ``cache_factory(policy, eviction, capacity,
    internet)`` overrides cache construction (used to plant deliberate
    bugs in tests); ``names`` overrides the generated corpus slice (the
    same names are then used for every combination)."""
    config = config or DifferentialConfig()
    reference = ReferenceResolver(seed=config.seed, dnssec=config.dnssec)
    oracle_memo: dict[tuple, OracleResult] = {}

    def oracle_for(qname: Name) -> OracleResult:
        key = (qname.canonical_key(), config.qtype)
        cached = oracle_memo.get(key)
        if cached is None:
            cached = oracle_memo[key] = reference.resolve(qname, config.qtype)
        return cached

    report = DifferentialReport(seed=config.seed)
    fixed_names = list(names) if names is not None else None
    offset = config.start
    for policy in config.policies:
        for eviction in config.evictions:
            for plan_spec in config.fault_plans:
                combo = ComboReport(policy, eviction, _plan_label(plan_spec))
                if fixed_names is not None:
                    combo_names = fixed_names
                else:
                    corpus = DomainCorpus(CorpusConfig(seed=config.seed))
                    combo_names = list(corpus.fqdns(config.names, offset))
                    offset += config.names
                _run_combo(
                    combo,
                    combo_names,
                    config,
                    oracle_for,
                    cache_factory=cache_factory,
                    plan_spec=plan_spec,
                )
                report.combos.append(combo)
                report.names_checked += len(combo_names)
                if log is not None:
                    log(
                        f"oracle: {combo.label()}: {combo.checks} checks, "
                        f"{combo.agreed} agreed, {combo.inconclusive} "
                        f"inconclusive, {len(combo.divergences)} divergences"
                    )
    return report


def _run_combo(combo, combo_names, config, oracle_for, cache_factory, plan_spec):
    internet = build_internet(params=EcosystemParams(seed=config.seed))
    plan = _resolve_spec(plan_spec)
    if plan is not None and len(plan):
        from ..faults import FaultInjector

        FaultInjector(plan, sim=internet.sim, seed=config.seed).attach(internet.network)
    if cache_factory is not None:
        cache = cache_factory(
            combo.policy, combo.eviction, config.cache_capacity, internet
        )
    else:
        epoch_base = None
        if config.dnssec:
            from ..ecosystem import EPOCH_BASE

            epoch_base = EPOCH_BASE
        cache = SelectiveCache(
            capacity=config.cache_capacity,
            policy=combo.policy,
            eviction=combo.eviction,
            seed=config.seed,
            clock=lambda: internet.sim.now,
            epoch_base=epoch_base,
        )
    resolver = Resolver(
        internet, cache=cache, config=ResolverConfig(dnssec=config.dnssec)
    )
    resolver.config.retries = config.retries
    combo_info = {
        "policy": combo.policy,
        "eviction": combo.eviction,
        "plan": _plan_label(plan_spec),
        "capacity": config.cache_capacity,
    }
    for text in combo_names:
        qname = Name.from_text(text)
        oracle = oracle_for(qname)
        views = {}
        for phase in ("cold", "warm"):
            result = resolver.lookup(qname, RRType(config.qtype))
            view = production_view(result, qname, config.qtype)
            views[phase] = view
            verdict, reason = compare_views(view, oracle)
            combo.checks += 1
            if verdict == "agree":
                combo.agreed += 1
            elif verdict == "inconclusive":
                combo.inconclusive += 1
            else:
                combo.divergences.append(
                    Divergence(
                        name=text,
                        qtype=config.qtype,
                        seed=config.seed,
                        reason=reason or "disagreement",
                        production=view.to_json(),
                        oracle=oracle.to_json(),
                        combo=dict(combo_info, phase=phase),
                    )
                )
        cold, warm = views["cold"], views["warm"]
        if cold.is_semantic and warm.is_semantic:
            # cold-vs-warm invariant: a cached (or re-walked) second
            # resolution must tell the same story as the first.
            mismatch = None
            if cold.status != warm.status or cold.final_key != warm.final_key:
                mismatch = (
                    f"cold ({cold.status}, {cold.final_name!r}) vs "
                    f"warm ({warm.status}, {warm.final_name!r})"
                )
            elif len(oracle.acceptable) <= 1 and cold.terminal != warm.terminal:
                # with several acceptable per-NS answer sets, cold and
                # warm may legitimately land on different nameservers
                mismatch = (
                    f"cold answers {list(cold.terminal)} vs "
                    f"warm {list(warm.terminal)}"
                )
            combo.checks += 1
            if mismatch is None:
                combo.agreed += 1
            else:
                combo.divergences.append(
                    Divergence(
                        name=text,
                        qtype=config.qtype,
                        seed=config.seed,
                        reason=f"cold-vs-warm disagreement: {mismatch}",
                        production={"cold": cold.to_json(), "warm": warm.to_json()},
                        oracle=oracle.to_json(),
                        combo=dict(combo_info, phase="cold-vs-warm"),
                    )
                )
