"""A deliberately naive reference resolver: the differential oracle.

The production :class:`repro.core.IterativeMachine` is festooned with
performance machinery — selective caching, memoised wire codecs,
sliced-ancestor delegation walks, retry budgets, health tracking.  This
module is its ground truth: a few hundred lines of obviously-correct
recursive descent over *its own private copy* of the simulated Internet
(zone content is a pure function of the ecosystem seed, so an
independently built universe carries identical data).  No cache, no
memos, no fast-path codec (``wire_mode="never"``), no retries.

Two deliberate deviations make the oracle *semantic* rather than a
packet-level twin:

* **No randomness.**  Every provider nameserver's probabilistic-drop
  RNG is replaced with a stub whose draws never fire, so flaky servers
  answer deterministically.  The oracle reports what a name *means*;
  whether the production resolver's packets survived the lossy fabric
  is a separate (and legitimate) failure mode the harness classifies as
  inconclusive rather than divergent.
* **TCP only.**  Responses are taken over the TCP path, which never
  truncates, so the oracle always sees complete answers.

Because some domains intentionally serve *different* A records from
each of their nameservers (the paper's nameserver-consistency case
study), a resolution's result is a *set of acceptable answer sets* —
one per responding nameserver — and the production answer must match
one of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dnslib import Message, Name, RRType
from ..dnslib.types import Rcode
from ..ecosystem import EcosystemParams, build_internet

#: Statuses with resolution *meaning*; everything else is a failure to
#: resolve (timeouts, lame zones, unreachable servers, chase limits).
SEMANTIC_STATUSES = frozenset({"NOERROR", "NXDOMAIN"})

_CLIENT_IP = "192.0.2.200"

_NS = int(RRType.NS)
_A = int(RRType.A)
_CNAME = int(RRType.CNAME)
_ANY = int(RRType.ANY)


class _NeverFires:
    """Replaces a provider server's RNG: ``random()`` returns 1.0, which
    loses every ``rng.random() < p`` drop draw (all drop probabilities
    are < 1), so the oracle's universe answers deterministically."""

    def random(self) -> float:
        return 1.0


@dataclass(frozen=True)
class OracleResult:
    """What a name means, according to the reference resolver."""

    name: str
    qtype: int
    #: "NOERROR"/"NXDOMAIN" (semantic), or a failure class:
    #: "UNREACHABLE", "LAME", "SERVER_FAILURE", "CHAIN_TOO_LONG",
    #: "ITER_LIMIT".
    status: str
    #: End of the CNAME chain (canonical key + presentation text).
    final_key: str
    final_name: str
    #: Owner names walked, in order (length 1 when no CNAME).
    chain: tuple[str, ...]
    #: Acceptable terminal rdata sets: one sorted tuple per responding
    #: nameserver (deduplicated).  A NODATA answer is the empty tuple.
    acceptable: tuple[tuple[str, ...], ...] = field(default_factory=tuple)
    #: Expected DNSSEC validation outcome (dnssec oracles only), derived
    #: *white-box* from the reference universe's zone profiles rather
    #: than by running a second validator.  None = not computed / the
    #: name is outside the signed-universe scope (infra, reverse zones).
    security: str | None = None

    @property
    def is_semantic(self) -> bool:
        return self.status in SEMANTIC_STATUSES

    def to_json(self) -> dict:
        out = {
            "name": self.name,
            "qtype": self.qtype,
            "status": self.status,
            "final_name": self.final_name,
            "chain": list(self.chain),
            "acceptable": [list(s) for s in self.acceptable],
        }
        if self.security is not None:
            out["security"] = self.security
        return out


@dataclass(frozen=True)
class _OwnerOutcome:
    """One owner name resolved to its authoritative data."""

    status: str
    records: tuple = ()  # canonical server's matching records
    variants: tuple = ()  # every responding server's matching records


class ReferenceResolver:
    """Naive recursive descent over a private simulated Internet.

    Every lookup starts at the roots and follows referrals downward; no
    state survives between lookups, so two calls with the same inputs
    are trivially identical.
    """

    def __init__(
        self,
        seed: int = 2022,
        max_referrals: int = 30,
        max_cname_chase: int = 10,
        max_glueless_depth: int = 6,
        dnssec: bool = False,
    ):
        self.seed = seed
        self.max_referrals = max_referrals
        self.max_cname_chase = max_cname_chase
        self.max_glueless_depth = max_glueless_depth
        #: When on, semantic results carry the *expected* validation
        #: outcome read straight off the zone profiles (white-box: the
        #: oracle must not share the production validator's bugs).
        self.dnssec = dnssec
        #: A private universe: content is a pure function of the seed,
        #: so this carries the same zones as the scan's universe while
        #: sharing no objects (querying the scan's servers would advance
        #: their RNG streams and break byte-identical replays).
        self.internet = build_internet(
            params=EcosystemParams(seed=seed), wire_mode="never"
        )
        for server in self.internet.provider_servers:
            server.rng = _NeverFires()
        self._network = self.internet.network
        self._root_ips = list(self.internet.root_ips)
        self._tld_names = {t for t, _ in self.internet.synth.tlds()}

    # -- white-box DNSSEC expectation --------------------------------------

    def expected_security(self, name: Name) -> str | None:
        """The validation outcome a correct validator must reach for a
        semantic answer at ``name``, read off the zone profiles.

        This is deliberately *not* a second validator: it mirrors the
        universe's ground truth (which zones are signed, which anomalies
        were planted) so a validator bug cannot hide by being shared.
        None means the name is outside the signed universe's scope
        (infra/reverse namespaces) and no expectation is asserted.
        """
        synth = self.internet.synth
        labels = name.labels
        if not labels:
            return "secure"  # the root is always signed and clean
        tld = labels[-1].decode("ascii", "replace").lower()
        if tld in ("arpa", "example"):
            return None  # infra namespaces: never signed, not studied
        if tld not in self._tld_names:
            # Unknown TLD: the NXDOMAIN comes from the signed root, so
            # the denial is authenticated.
            return "secure"
        if not synth.dnssec_profile(Name.intern(labels[-1:])).signed:
            # Everything at or below an unsigned TLD cut — answers and
            # denials alike — is provably insecure, never bogus.
            return "insecure"
        if len(labels) == 1:
            return "secure"  # the signed TLD apex itself
        base = Name.intern(labels[-2:])
        if not synth.profile(base).exists:
            # Nonexistent base under a signed TLD: authenticated denial.
            return "secure"
        dp = synth.dnssec_profile(base)
        if not dp.signed or dp.island:
            return "insecure"
        if dp.broken_ds or dp.expired:
            return "bogus"
        return "secure"

    # -- wire-less querying ------------------------------------------------

    def _ask(self, server_ip: str, name: Name, qtype: int) -> Message | None:
        """One question to one server, over the (never-truncating) TCP
        path, outside the simulator: no latency, no loss, no codec."""
        server = self._network.server_for(server_ip)
        if server is None:
            return None  # dark/unregistered address
        query = Message.make_query(name, RRType(qtype), txid=0, recursion_desired=False)
        reply = server.handle_query(query, _CLIENT_IP, 0.0, "tcp")
        return reply.message if reply is not None else None

    # -- recursive descent -------------------------------------------------

    def resolve(self, name: Name | str, qtype: RRType | int = RRType.A) -> OracleResult:
        """Resolve ``name`` from the roots, chasing CNAMEs."""
        if isinstance(name, str):
            name = Name.from_text(name)
        qt = int(qtype)
        chain = [name]
        current = name

        def done(status: str, acceptable: tuple = ()) -> OracleResult:
            security = None
            if self.dnssec and status in SEMANTIC_STATUSES:
                security = self.expected_security(current)
            return OracleResult(
                name=name.to_text(omit_final_dot=True),
                qtype=qt,
                status=status,
                final_key=current.canonical_key(),
                final_name=current.to_text(omit_final_dot=True),
                chain=tuple(n.to_text(omit_final_dot=True) for n in chain),
                acceptable=acceptable,
                security=security,
            )

        for _hop in range(self.max_cname_chase + 1):
            outcome = self._resolve_owner(current, qt, depth=0)
            if outcome.status != "NOERROR":
                return done(outcome.status)
            target = _chase_target(outcome.records, qt)
            if target is None:
                return done("NOERROR", _acceptable_sets(outcome.variants, current, qt))
            chain.append(target)
            current = target
        return done("CHAIN_TOO_LONG")

    def _resolve_owner(self, name: Name, qt: int, depth: int) -> _OwnerOutcome:
        """Walk root → leaf for one owner name.  Returns the matching
        records (qtype or CNAME, owned by ``name``) per server."""
        if depth > self.max_glueless_depth:
            return _OwnerOutcome("UNREACHABLE")
        zone = Name.root()
        servers = list(self._root_ips)
        for _layer in range(self.max_referrals):
            good, bad = self._consult(servers, name, qt)
            if not good:
                return _OwnerOutcome("LAME" if bad else "UNREACHABLE")
            response = good[0]
            rcode = int(response.rcode)
            if rcode == int(Rcode.NXDOMAIN):
                return _OwnerOutcome("NXDOMAIN")
            matched = _matching_records(response, name, qt)
            if matched:
                variants = tuple(
                    tuple(_matching_records(r, name, qt)) for r in good
                )
                return _OwnerOutcome("NOERROR", tuple(matched), variants)
            if response.answers:
                # answers for someone else: no data for us
                return _OwnerOutcome("NOERROR", (), ((),))

            referral = _referral_zone(response)
            if referral is not None and not response.flags.authoritative:
                if (
                    not referral.is_subdomain_of(zone)
                    or referral == zone
                    or not name.is_subdomain_of(referral)
                ):
                    return _OwnerOutcome("LAME")  # upward/sideways referral
                next_servers = self._delegation_addresses(response, referral, depth)
                if not next_servers:
                    return _OwnerOutcome("UNREACHABLE")
                zone = referral
                servers = next_servers
                continue

            # authoritative NOERROR with no answers: NODATA
            return _OwnerOutcome("NOERROR", (), ((),))
        return _OwnerOutcome("ITER_LIMIT")

    def _consult(self, servers: list[str], name: Name, qt: int):
        """Ask *every* server of the zone.  Responses split into
        semantic (NOERROR/NXDOMAIN — content) and failures (REFUSED
        from lame hosts, SERVFAIL): a single healthy nameserver is
        enough to resolve, exactly as a patient stub would find."""
        good, bad = [], []
        for ip in servers:
            response = self._ask(ip, name, qt)
            if response is None:
                continue
            rcode = int(response.rcode)
            if rcode in (int(Rcode.NOERROR), int(Rcode.NXDOMAIN)):
                good.append(response)
            else:
                bad.append(response)
        return good, bad

    def _delegation_addresses(self, response: Message, referral: Name, depth: int) -> list[str]:
        """Glue addresses of a referral, resolving gluelessly if the
        referral came bare."""
        ns_names = [
            record.rdata.target
            for record in response.authorities
            if int(record.rrtype) == _NS and record.name == referral
        ]
        glue = [
            record.rdata.address
            for record in response.additionals
            if int(record.rrtype) == _A and record.name in ns_names
        ]
        if glue:
            return glue
        addresses: list[str] = []
        for ns_name in ns_names:
            outcome = self._resolve_owner(ns_name, _A, depth + 1)
            if outcome.status != "NOERROR":
                continue
            addresses.extend(
                record.rdata.address
                for record in outcome.records
                if int(record.rrtype) == _A
            )
            if addresses:
                break
        return addresses


# -- pure helpers ----------------------------------------------------------


def _matching_records(response: Message, name: Name, qt: int) -> list:
    """Answer records owned by ``name`` of the queried (or CNAME) type —
    the classic "what is an answer to this question" rule."""
    out = []
    for record in response.answers:
        if record.name != name:
            continue
        rt = int(record.rrtype)
        if rt == qt or qt == _ANY or rt == _CNAME:
            out.append(record)
    return out


def _referral_zone(response: Message) -> Name | None:
    for record in response.authorities:
        if int(record.rrtype) == _NS:
            return record.name
    return None


def _chase_target(records, qt: int) -> Name | None:
    """The CNAME target to follow — only when the owner has no record
    of the final type (mirrors RFC 1034 §4.3.2 step 3a)."""
    if qt in (_CNAME, _ANY):
        return None
    for record in records:
        if int(record.rrtype) == qt:
            return None
    for record in records:
        if int(record.rrtype) == _CNAME:
            return record.rdata.target
    return None


def _acceptable_sets(variants, owner: Name, qt: int) -> tuple[tuple[str, ...], ...]:
    """Deduplicated per-nameserver terminal rdata sets at ``owner``."""
    seen = []
    for records in variants:
        rdatas = tuple(
            sorted(
                record.rdata.to_text()
                for record in records
                if record.name == owner and (int(record.rrtype) == qt or qt == _ANY)
            )
        )
        if rdatas not in seen:
            seen.append(rdatas)
    return tuple(seen) if seen else ((),)
