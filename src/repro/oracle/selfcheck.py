"""Standalone oracle self-check: ``python -m repro.oracle.selfcheck``.

Two halves, mirroring what a correctness gate must prove:

1. **Agreement** — a differential sweep over generated names and a
   policy × eviction × fault-plan matrix must report zero divergences.
2. **Teeth** — a cache with a deliberately planted bug (the answer
   table serves a fabricated address) must be *caught* as a divergence,
   and the shrinker must reduce it to a minimal (name, seed, plan)
   triple whose fault plan is empty (the bug needs no faults).

A sweep that cannot catch a planted bug proves nothing by passing.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core import SelectiveCache
from ..dnslib import RRType
from ..dnslib.message import ResourceRecord
from ..dnslib.rdata.address import A
from .harness import DifferentialConfig, Divergence, run_differential
from .shrink import MinimalCase, check_one, shrink_divergence

#: The fabricated address the planted bug serves (TEST-NET-3 space, so
#: it can never collide with a synthesized zone's real data).
BOGUS_IP = "203.0.113.99"


class StaleAnswerCache(SelectiveCache):
    """Deliberately buggy cache for canary tests: every answer-table hit
    is rewritten to a fabricated A record, as a stale/corrupt entry
    would be served.  Only meaningful with ``policy="all"``."""

    def get_answer(self, qname, qtype):
        value = super().get_answer(qname, qtype)
        if not value:
            return value
        return [
            ResourceRecord(record.name, RRType.A, record.rrclass, record.ttl, A(BOGUS_IP))
            for record in value
        ]


def stale_cache_factory(policy, eviction, capacity, internet) -> StaleAnswerCache:
    """``cache_factory`` hook planting :class:`StaleAnswerCache`."""
    return StaleAnswerCache(
        capacity=capacity,
        policy=policy,
        eviction=eviction,
        clock=lambda: internet.sim.now,
    )


def planted_bug_canary(
    seed: int = 2022, name: str | None = None, plan="moderate"
) -> tuple[Divergence | None, MinimalCase | None]:
    """Run one name through a production resolver whose answer cache
    lies, under a fault plan.  Returns (divergence, shrunk case) — the
    divergence must exist for the oracle to have teeth, and the shrunk
    plan must be empty because the bug reproduces without faults."""
    if name is None:
        from ..workloads import CorpusConfig, DomainCorpus

        # the first corpus name that diverges under the lying cache
        # (most do: any warm NOERROR answer is rewritten)
        for candidate in DomainCorpus(CorpusConfig(seed=seed)).fqdns(25):
            divergence = check_one(
                candidate,
                seed=seed,
                policy="all",
                plan=plan,
                cache_factory=stale_cache_factory,
            )
            if divergence is not None:
                name = candidate
                break
        else:
            return None, None
    else:
        divergence = check_one(
            name, seed=seed, policy="all", plan=plan, cache_factory=stale_cache_factory
        )
        if divergence is None:
            return None, None
    minimal = shrink_divergence(divergence, cache_factory=stale_cache_factory)
    return divergence, minimal


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="oracle self-check")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--names", type=int, default=30, help="names per combination")
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    args = parser.parse_args(argv)

    config = DifferentialConfig(
        seed=args.seed,
        names=args.names,
        policies=("selective", "all"),
        evictions=("random", "lru"),
        fault_plans=(None, "moderate"),
    )
    report = run_differential(config, log=None if args.json else print)
    divergence, minimal = planted_bug_canary(seed=args.seed)
    teeth_ok = (
        divergence is not None
        and minimal is not None
        and minimal.reproduced
        and (minimal.plan is None or len(minimal.plan) == 0)
    )
    ok = report.ok and teeth_ok
    if args.json:
        print(
            json.dumps(
                {
                    "sweep": report.to_json(),
                    "canary": {
                        "caught": divergence is not None,
                        "minimal": minimal.to_json() if minimal is not None else None,
                        "ok": teeth_ok,
                    },
                    "ok": ok,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"sweep: {report.checks} checks over {report.names_checked} names, "
            f"{report.agreed} agreed, {report.inconclusive} inconclusive, "
            f"{len(report.divergences)} divergences"
        )
        for d in report.divergences[:5]:
            print(f"  DIVERGENCE {d.name}: {d.reason}", file=sys.stderr)
        if divergence is None:
            print("canary: planted bug NOT caught — the oracle has no teeth", file=sys.stderr)
        else:
            print(
                f"canary: planted bug caught ({divergence.reason}); "
                f"shrunk to name={minimal.name!r} seed={minimal.seed} "
                f"plan={'-' if minimal.plan is None else minimal.plan.name}"
            )
        print("oracle selfcheck:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
