"""Shrink a divergence to a minimal ``(name, seed, plan)`` triple.

A sweep divergence arrives buried in context: thousands of names, a
cache warmed by every earlier lookup, a fault plan with many
directives.  Debugging wants the opposite — the single name, the seed,
and the *smallest* fault plan that still reproduce the disagreement in
isolation.  :func:`shrink_divergence` re-verifies the divergence with
just that one name (cold + warm), then greedily drops fault-plan
directives (ddmin-style single passes to a fixpoint), preferring the
empty plan when the faults turn out to be irrelevant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import Resolver, SelectiveCache
from ..dnslib import Name, RRType
from ..ecosystem import EcosystemParams, build_internet
from .harness import Divergence, compare_views, production_view
from .reference import ReferenceResolver


@dataclass(frozen=True)
class MinimalCase:
    """The shrunk reproducer."""

    name: str
    seed: int
    #: None (faults irrelevant) or a minimal :class:`FaultPlan`.
    plan: object | None
    policy: str
    eviction: str
    capacity: int
    reason: str
    #: False when the original divergence would not reproduce from a
    #: single-name cold start (it needed the sweep's cache pressure) —
    #: the un-shrunk inputs are then the best available reproducer.
    reproduced: bool = True

    def to_json(self) -> dict:
        plan = self.plan
        return {
            "name": self.name,
            "seed": self.seed,
            "plan": getattr(plan, "name", None) if plan is not None else None,
            "plan_directives": len(plan) if plan is not None else 0,
            "policy": self.policy,
            "eviction": self.eviction,
            "capacity": self.capacity,
            "reason": self.reason,
            "reproduced": self.reproduced,
        }


def check_one(
    name: str,
    seed: int = 2022,
    qtype: int = int(RRType.A),
    policy: str = "selective",
    eviction: str = "random",
    plan=None,
    capacity: int = 512,
    cache_factory=None,
    reference: ReferenceResolver | None = None,
) -> Divergence | None:
    """One name through a fresh production universe, cold then warm,
    against the oracle.  The single-name analogue of the sweep."""
    from .harness import _resolve_spec  # plan spec -> FaultPlan

    if reference is None:
        reference = ReferenceResolver(seed=seed)
    internet = build_internet(params=EcosystemParams(seed=seed))
    resolved_plan = _resolve_spec(plan)
    if resolved_plan is not None and len(resolved_plan):
        from ..faults import FaultInjector

        FaultInjector(resolved_plan, sim=internet.sim, seed=seed).attach(internet.network)
    if cache_factory is not None:
        cache = cache_factory(policy, eviction, capacity, internet)
    else:
        cache = SelectiveCache(
            capacity=capacity,
            policy=policy,
            eviction=eviction,
            seed=seed,
            clock=lambda: internet.sim.now,
        )
    resolver = Resolver(internet, cache=cache)
    qname = Name.from_text(name)
    oracle = reference.resolve(qname, qtype)
    combo = {"policy": policy, "eviction": eviction, "capacity": capacity}
    for phase in ("cold", "warm"):
        result = resolver.lookup(qname, RRType(qtype))
        view = production_view(result, qname, qtype)
        verdict, reason = compare_views(view, oracle)
        if verdict == "diverge":
            return Divergence(
                name=name,
                qtype=int(qtype),
                seed=seed,
                reason=reason or "disagreement",
                production=view.to_json(),
                oracle=oracle.to_json(),
                combo=dict(combo, phase=phase),
            )
    return None


def shrink_divergence(
    divergence: Divergence,
    cache_factory=None,
    reference: ReferenceResolver | None = None,
    max_probes: int = 64,
    plan="__from_combo__",
) -> MinimalCase:
    """Reduce ``divergence`` to a minimal reproducer.

    ``cache_factory`` must match whatever produced the divergence (the
    planted-bug tests pass their deliberately broken cache through
    here, so the shrunk case still exhibits the bug).  ``plan``
    overrides the fault plan recorded in the divergence's combo (pass
    the actual :class:`FaultPlan` when the sweep used a custom one whose
    name is not a bundled spec).
    """
    from ..faults import FaultPlan
    from .harness import _resolve_spec

    combo = divergence.combo or {}
    policy = combo.get("policy", "selective")
    eviction = combo.get("eviction", "random")
    capacity = int(combo.get("capacity", 512))
    if plan == "__from_combo__":
        label = combo.get("plan")
        try:
            plan = _resolve_spec(label if label != "none" else None)
        except KeyError:
            plan = None  # a custom plan we cannot reconstruct by name
    seed = divergence.seed
    if reference is None:
        reference = ReferenceResolver(seed=seed)

    def probe(candidate_plan) -> Divergence | None:
        return check_one(
            divergence.name,
            seed=seed,
            qtype=divergence.qtype,
            policy=policy,
            eviction=eviction,
            plan=candidate_plan,
            capacity=capacity,
            cache_factory=cache_factory,
            reference=reference,
        )

    probes = 0
    repro = probe(plan)
    if repro is None:
        return MinimalCase(
            name=divergence.name,
            seed=seed,
            plan=plan,
            policy=policy,
            eviction=eviction,
            capacity=capacity,
            reason=divergence.reason,
            reproduced=False,
        )

    # First try the biggest cut: no faults at all.
    if plan is not None and len(plan):
        candidate = probe(None)
        probes += 1
        if candidate is not None:
            plan, repro = None, candidate
    # Then drop directives one at a time until no single removal
    # preserves the divergence (a fixpoint of single-step ddmin).
    while plan is not None and len(plan) > 0 and probes < max_probes:
        for index in range(len(plan.directives)):
            reduced = FaultPlan(
                directives=[
                    d for i, d in enumerate(plan.directives) if i != index
                ],
                name=f"{plan.name or 'plan'}-min",
            )
            candidate = probe(reduced if len(reduced) else None)
            probes += 1
            if candidate is not None:
                plan = reduced if len(reduced) else None
                repro = candidate
                break
            if probes >= max_probes:
                break
        else:
            break
    return MinimalCase(
        name=divergence.name,
        seed=seed,
        plan=plan,
        policy=policy,
        eviction=eviction,
        capacity=capacity,
        reason=repro.reason,
        reproduced=True,
    )
