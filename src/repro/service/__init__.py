"""repro.service — the long-lived resolver daemon on the simulated
substrate.

Batch scanning (``repro.framework``) resolves a list and exits; this
package runs a *service*: a pool of caching resolver workers serving a
procedurally generated stub-client population with a Zipf query mix and
a diurnal load curve, entirely in virtual time and byte-deterministic
per seed.  It exists to measure the cache-lifetime behaviours a batch
scan never exercises — RFC 8767 serve-stale under upstream blackouts,
prefetch of hot about-to-expire entries, and incremental (Janus-style)
vs full-flush revalidation when the universe publishes zone deltas.
"""

from .config import ServiceConfig
from .daemon import ResolverService, ServiceReport, run_service

__all__ = ["ResolverService", "ServiceConfig", "ServiceReport", "run_service"]
